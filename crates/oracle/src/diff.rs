//! Numeric comparison helpers: ulp distances and max-delta slice diffs.
//!
//! "Bit-identical" claims are asserted as `max_ulp == 0`; tolerance-based
//! claims (Eq. 4 importances ≤ 1e-5) as `max_abs <= tol`. The ulp metric
//! maps float bit patterns onto a monotone integer line so that adjacent
//! representable floats are distance 1 apart regardless of magnitude.

/// Distance in units-in-the-last-place between two f32 values.
///
/// `0` iff the bit patterns are identical (so `-0.0` vs `0.0` is 1, and
/// two NaNs with the same payload are 0). Returns `u64::MAX` when exactly
/// one side is NaN — the values are not on the same number line.
pub fn ulp_distance_f32(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return if a.to_bits() == b.to_bits() {
            0
        } else {
            u64::MAX
        };
    }
    let key = |x: f32| -> u64 {
        let bits = x.to_bits();
        // Negative floats sort descending by raw bits; flip them below
        // the positives so the whole line is monotone.
        if bits & 0x8000_0000 != 0 {
            (!bits) as u64
        } else {
            (bits | 0x8000_0000) as u64
        }
    };
    key(a).abs_diff(key(b))
}

/// f64 analogue of [`ulp_distance_f32`].
pub fn ulp_distance_f64(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return if a.to_bits() == b.to_bits() {
            0
        } else {
            u64::MAX
        };
    }
    let key = |x: f64| -> u64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000_0000_0000 != 0 {
            !bits
        } else {
            bits | 0x8000_0000_0000_0000
        }
    };
    key(a).abs_diff(key(b))
}

/// Worst-case deltas between two equal-length f32 slices.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SliceDelta {
    /// Largest `|a[i] - b[i]|` (`f64::INFINITY` on length mismatch).
    pub max_abs: f64,
    /// Largest elementwise ulp distance (`u64::MAX` on length mismatch).
    pub max_ulp: u64,
    /// Index where the worst absolute delta occurred.
    pub worst_index: usize,
}

impl SliceDelta {
    /// True when the slices were bitwise identical.
    pub fn identical(&self) -> bool {
        self.max_ulp == 0
    }
}

/// Compare two f32 slices elementwise.
pub fn compare_f32_slices(a: &[f32], b: &[f32]) -> SliceDelta {
    if a.len() != b.len() {
        return SliceDelta {
            max_abs: f64::INFINITY,
            max_ulp: u64::MAX,
            worst_index: 0,
        };
    }
    let mut out = SliceDelta::default();
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let abs = ((x as f64) - (y as f64)).abs();
        let ulp = ulp_distance_f32(x, y);
        if abs > out.max_abs || (abs == out.max_abs && ulp > out.max_ulp) {
            out.worst_index = i;
        }
        out.max_abs = out.max_abs.max(abs);
        out.max_ulp = out.max_ulp.max(ulp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_zero_iff_same_bits() {
        assert_eq!(ulp_distance_f32(1.5, 1.5), 0);
        assert_eq!(ulp_distance_f32(0.0, -0.0), 1);
        assert_eq!(ulp_distance_f64(2.25, 2.25), 0);
    }

    #[test]
    fn ulp_counts_adjacent_floats() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_distance_f32(a, b), 1);
        // Symmetric across zero.
        assert_eq!(ulp_distance_f32(-a, -b), 1);
        // Straddling zero: distance via both denormal ranges.
        let tiny = f32::from_bits(1);
        assert_eq!(ulp_distance_f32(tiny, -tiny), 3);
    }

    #[test]
    fn nan_is_incomparable_unless_same_payload() {
        assert_eq!(ulp_distance_f32(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance_f32(f32::NAN, f32::NAN), 0);
        assert_eq!(ulp_distance_f64(f64::NAN, 0.0), u64::MAX);
    }

    #[test]
    fn slice_compare_finds_worst_index() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.5, 3.0];
        let d = compare_f32_slices(&a, &b);
        assert_eq!(d.worst_index, 1);
        assert!((d.max_abs - 0.5).abs() < 1e-12);
        assert!(!d.identical());
        assert!(compare_f32_slices(&a, &a).identical());
    }

    #[test]
    fn slice_compare_rejects_length_mismatch() {
        let d = compare_f32_slices(&[1.0], &[1.0, 2.0]);
        assert_eq!(d.max_ulp, u64::MAX);
        assert!(d.max_abs.is_infinite());
    }
}
