//! Batched, multi-threaded session profiling.
//!
//! The paper's deployment profiles every reporting extension on a
//! 10-minute cadence (Section 5.4) — at any tick the back-end holds a
//! *batch* of sessions, not one. [`BatchProfiler`] exploits that shape
//! twice over:
//!
//! * **within a worker**, all of its sessions' kNN queries run through one
//!   tiled scan of the vocabulary
//!   ([`EmbeddingSet::nearest_to_vectors_with`][nv]), so each cache-sized
//!   block of the unit-norm matrix is loaded once and scored against many
//!   session vectors;
//! * **across workers**, sessions fan out over scoped threads
//!   (`crossbeam::thread::scope`), each worker owning one reusable
//!   [`ProfileScratch`] — no locks, no shared mutable state, results
//!   written straight into disjoint output slices.
//!
//! Results are **exactly** those of calling [`Profiler::profile`] per
//! session, in order: both paths run the same aggregation, the same kNN
//! kernel, and the same Eq. 3/4 accumulation with the same float-operation
//! order, so equality is bit-for-bit, independent of the thread count.
//! The property tests in `tests/batch_equivalence.rs` pin this down.
//!
//! [nv]: hostprof_embed::EmbeddingSet::nearest_to_vectors_with

use crate::profiler::{ProfileScratch, Profiler, SessionProfile};
use crate::session::Session;

/// Fans batches of sessions across worker threads, each running the
/// single-session profiling code against a private scratch.
pub struct BatchProfiler<'a> {
    profiler: Profiler<'a>,
    threads: usize,
}

impl<'a> BatchProfiler<'a> {
    /// Wrap a profiler; `threads` is clamped to at least 1.
    pub fn new(profiler: Profiler<'a>, threads: usize) -> Self {
        Self {
            profiler,
            threads: threads.max(1),
        }
    }

    /// The wrapped single-session profiler.
    pub fn profiler(&self) -> &Profiler<'a> {
        &self.profiler
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Profile a batch. `out[i]` is exactly what
    /// `self.profiler().profile(&sessions[i])` returns, for every `i`.
    pub fn profile_sessions(&self, sessions: &[Session]) -> Vec<Option<SessionProfile>> {
        let mut out: Vec<Option<SessionProfile>> = Vec::new();
        out.resize_with(sessions.len(), || None);
        if sessions.is_empty() {
            return out;
        }
        let workers = self.threads.min(sessions.len());
        if workers <= 1 {
            profile_chunk(
                &self.profiler,
                sessions,
                &mut out,
                &mut ProfileScratch::new(),
            );
            return out;
        }
        let chunk = sessions.len().div_ceil(workers);
        if let Err(payload) = crossbeam::thread::scope(|scope| {
            for (sess, slots) in sessions.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| {
                    profile_chunk(&self.profiler, sess, slots, &mut ProfileScratch::new());
                });
            }
        }) {
            // Re-raise the worker's own panic payload rather than masking
            // it behind a generic message.
            std::panic::resume_unwind(payload);
        }
        out
    }
}

/// One worker's share: stage every session's aggregation, resolve all kNN
/// queries in a single tiled scan, then assemble the profiles.
fn profile_chunk(
    profiler: &Profiler<'_>,
    sessions: &[Session],
    out: &mut [Option<SessionProfile>],
    scratch: &mut ProfileScratch,
) {
    debug_assert_eq!(sessions.len(), out.len());
    // (labels, query slot) per non-empty session; `None` marks an empty
    // session, which profiles to `None` without touching the kernel. The
    // slot indexes straight into `queries`/`results`, so sessions without
    // a vector can never desynchronize the answer stream.
    let mut staged = Vec::with_capacity(sessions.len());
    let mut queries: Vec<Vec<f32>> = Vec::new();
    for session in sessions {
        if session.is_empty() {
            staged.push(None);
            continue;
        }
        let labels = profiler.session_labels(session);
        let slot = profiler.aggregate(session).map(|v| {
            queries.push(v);
            queries.len() - 1
        });
        staged.push(Some((labels, slot)));
    }
    let mut results = profiler.embeddings().nearest_to_vectors_with_index(
        &queries,
        profiler.config().n_neighbors,
        profiler.index(),
        &mut scratch.knn,
    );
    debug_assert_eq!(results.len(), queries.len(), "one kNN result per query");
    for (slot, entry) in out.iter_mut().zip(staged) {
        let Some((labels, qslot)) = entry else {
            continue;
        };
        let (sv, neighbors) = match qslot {
            Some(qi) => (
                Some(std::mem::take(&mut queries[qi])),
                std::mem::take(&mut results[qi]),
            ),
            None => (None, Vec::new()),
        };
        *slot = profiler.assemble(&labels, sv, &neighbors, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerConfig;
    use hostprof_embed::{EmbeddingSet, Vocab};
    use hostprof_ontology::{CategoryId, CategoryVector, Ontology};

    fn setup() -> (EmbeddingSet, Ontology) {
        let seqs = vec![vec![
            "travel.com",
            "travel-api.net",
            "sport.com",
            "sport-cdn.net",
            "neutral.org",
        ]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("travel.com", [1.0, 0.0]);
        set("travel-api.net", [0.95, 0.05]);
        set("sport.com", [0.0, 1.0]);
        set("sport-cdn.net", [0.05, 0.95]);
        set("neutral.org", [0.5, 0.5]);
        let embeddings = EmbeddingSet::new(2, vocab, vectors);

        let mut ontology = Ontology::new();
        ontology.insert("travel.com", CategoryVector::singleton(CategoryId(10)));
        ontology.insert("sport.com", CategoryVector::singleton(CategoryId(20)));
        ontology.insert(
            "off-vocab.example",
            CategoryVector::singleton(CategoryId(7)),
        );
        (embeddings, ontology)
    }

    fn mixed_sessions() -> Vec<Session> {
        vec![
            Session::from_window(["travel.com"], None),
            Session::default(), // empty
            Session::from_window(["travel-api.net", "neutral.org"], None),
            Session::from_window(["never-seen.example"], None), // no signal
            Session::from_window(["off-vocab.example"], None),  // label, no vector
            Session::from_window(["sport.com", "sport-cdn.net"], None),
            Session::from_window(["travel.com", "sport.com"], None),
        ]
    }

    #[test]
    fn batch_matches_single_for_every_thread_count() {
        let (e, o) = setup();
        let sessions = mixed_sessions();
        let config = ProfilerConfig {
            n_neighbors: 5,
            ..Default::default()
        };
        let reference: Vec<Option<SessionProfile>> = {
            let p = Profiler::new(&e, &o, config.clone());
            sessions.iter().map(|s| p.profile(s)).collect()
        };
        for threads in [1, 2, 3, 8, 64] {
            let batch = BatchProfiler::new(Profiler::new(&e, &o, config.clone()), threads);
            assert_eq!(
                batch.profile_sessions(&sessions),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn interleaved_no_vector_sessions_keep_slots_aligned() {
        // Regression: the batch path used to pair queries with kNN
        // results through a shared iterator; a session with labels but no
        // session vector could desynchronize the stream. Alternate
        // no-vector, empty, and vector sessions aggressively.
        let (e, o) = setup();
        let mut sessions = Vec::new();
        for i in 0..12 {
            sessions.push(match i % 4 {
                0 => Session::from_window(["off-vocab.example"], None), // label, no vector
                1 => Session::from_window(["travel.com"], None),
                2 => Session::default(),
                _ => Session::from_window(["sport.com", "neutral.org"], None),
            });
        }
        let config = ProfilerConfig {
            n_neighbors: 5,
            ..Default::default()
        };
        let reference: Vec<Option<SessionProfile>> = {
            let p = Profiler::new(&e, &o, config.clone());
            sessions.iter().map(|s| p.profile(s)).collect()
        };
        for threads in [1, 2, 5] {
            let batch = BatchProfiler::new(Profiler::new(&e, &o, config.clone()), threads);
            assert_eq!(
                batch.profile_sessions(&sessions),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (e, o) = setup();
        let batch = BatchProfiler::new(Profiler::new(&e, &o, ProfilerConfig::default()), 4);
        assert!(batch.profile_sessions(&[]).is_empty());
    }

    #[test]
    fn thread_count_is_clamped() {
        let (e, o) = setup();
        let batch = BatchProfiler::new(Profiler::new(&e, &o, ProfilerConfig::default()), 0);
        assert_eq!(batch.threads(), 1);
    }
}
