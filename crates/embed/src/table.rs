//! The negative-sampling table.
//!
//! Negative hosts are drawn from the empirical unigram distribution raised
//! to the 3/4 power (Mikolov et al., as cited by the paper's Eq. 2). Like
//! the reference word2vec implementation we precompute a dense table so a
//! draw is a single array lookup — O(1) per negative, which keeps the inner
//! SGD loop tight.

use crate::vocab::Vocab;

/// Exponent applied to unigram counts.
pub const UNIGRAM_POWER: f64 = 0.75;

/// Precomputed sampling table: entry `i` holds a token index with frequency
/// proportional to `count^0.75`.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    table: Vec<u32>,
}

impl NegativeTable {
    /// Default table size (word2vec uses 1e8; our vocabularies are far
    /// smaller, so 1M gives the same resolution at 1 % of the memory).
    pub const DEFAULT_SIZE: usize = 1 << 20;

    /// Build from a vocabulary with the default size.
    pub fn from_vocab(vocab: &Vocab) -> Self {
        Self::with_size(vocab, Self::DEFAULT_SIZE)
    }

    /// Build with an explicit table size (≥ vocabulary size recommended).
    pub fn with_size(vocab: &Vocab, size: usize) -> Self {
        let counts = vocab.counts();
        if counts.is_empty() {
            return Self { table: Vec::new() };
        }
        let total: f64 = counts.iter().map(|&c| (c as f64).powf(UNIGRAM_POWER)).sum();
        let size = size.max(counts.len());
        let mut table = Vec::with_capacity(size);
        let mut cum = (counts[0] as f64).powf(UNIGRAM_POWER) / total;
        let mut idx = 0u32;
        for i in 0..size {
            table.push(idx);
            if (i + 1) as f64 / size as f64 > cum && (idx as usize) < counts.len() - 1 {
                idx += 1;
                cum += (counts[idx as usize] as f64).powf(UNIGRAM_POWER) / total;
            }
        }
        Self { table }
    }

    /// Number of table slots.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (empty vocabulary).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draw a token index using a caller-supplied random value.
    ///
    /// # Panics
    /// Panics on an empty table; callers must not train on an empty
    /// vocabulary.
    #[inline]
    pub fn sample(&self, random: u64) -> u32 {
        self.table[(random % self.table.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_with_counts() -> Vocab {
        // a: 8, b: 4, c: 1 → powered 4.76, 2.83, 1.0
        let seqs: Vec<Vec<&str>> = vec![vec!["a"; 8], vec!["b"; 4], vec!["c"]];
        Vocab::build(seqs, 1, 0.0)
    }

    #[test]
    fn table_mass_tracks_powered_counts() {
        let v = vocab_with_counts();
        let t = NegativeTable::with_size(&v, 100_000);
        let mut hist = [0usize; 3];
        for i in 0..t.len() {
            hist[t.sample(i as u64) as usize] += 1;
        }
        let total: f64 = (8f64).powf(0.75) + (4f64).powf(0.75) + 1.0;
        let expect_a = (8f64).powf(0.75) / total;
        let got_a = hist[0] as f64 / t.len() as f64;
        assert!((got_a - expect_a).abs() < 0.01, "a: {got_a} vs {expect_a}");
        assert!(hist[2] > 0, "rarest token still sampled");
    }

    #[test]
    fn every_token_appears() {
        let v = vocab_with_counts();
        let t = NegativeTable::with_size(&v, 1000);
        let seen: std::collections::HashSet<u32> =
            (0..t.len()).map(|i| t.sample(i as u64)).collect();
        assert_eq!(seen.len(), v.len());
    }

    #[test]
    fn empty_vocab_builds_empty_table() {
        let v = Vocab::build(Vec::<Vec<&str>>::new(), 1, 0.0);
        let t = NegativeTable::from_vocab(&v);
        assert!(t.is_empty());
    }

    #[test]
    fn sample_wraps_random_values() {
        let v = vocab_with_counts();
        let t = NegativeTable::with_size(&v, 64);
        // Any u64 is a valid input.
        let _ = t.sample(u64::MAX);
        let _ = t.sample(0);
    }
}
