//! SNI extraction throughput — the paper's "traffic analysis at line rate"
//! claim (§4.1) rests on the observer's per-packet cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hostprof_net::dns::DnsQuery;
use hostprof_net::quic::InitialPacket;
use hostprof_net::tls::{extract_sni, ClientHello};

fn bench_tls(c: &mut Criterion) {
    let record = ClientHello::for_hostname("api.bkng.azureish.com").encode();
    let mut g = c.benchmark_group("tls");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.bench_function("extract_sni_zero_copy", |b| {
        b.iter(|| extract_sni(black_box(&record)).unwrap())
    });
    g.bench_function("full_client_hello_parse", |b| {
        b.iter(|| ClientHello::parse(black_box(&record)).unwrap())
    });
    g.finish();
}

fn bench_quic(c: &mut Criterion) {
    let pkt = InitialPacket::for_hostname("api.bkng.azureish.com").encode();
    let mut g = c.benchmark_group("quic");
    g.throughput(Throughput::Bytes(pkt.len() as u64));
    g.bench_function("initial_parse_and_sni", |b| {
        b.iter(|| {
            let p = InitialPacket::parse(black_box(&pkt)).unwrap();
            p.client_hello().unwrap().sni().map(str::len)
        })
    });
    g.finish();
}

fn bench_dns(c: &mut Criterion) {
    let q = DnsQuery::for_hostname("mail.google.com").encode();
    let mut g = c.benchmark_group("dns");
    g.throughput(Throughput::Bytes(q.len() as u64));
    g.bench_function("query_parse", |b| {
        b.iter(|| DnsQuery::parse(black_box(&q)).unwrap())
    });
    g.finish();
}

fn bench_observer_stream(c: &mut Criterion) {
    use hostprof_net::{RequestEvent, SniObserver, TrafficSynthesizer};
    // A realistic mixed stream of 1000 connections.
    let synth = TrafficSynthesizer::default();
    let events: Vec<RequestEvent> = (0..1000)
        .map(|i| RequestEvent {
            t_ms: i * 7,
            client: (i % 50) as u32,
            hostname: format!("host{}.example{}.com", i % 97, i % 13),
        })
        .collect();
    let packets = synth.synthesize(&events);
    let bytes: u64 = packets.iter().map(|p| p.payload.len() as u64).sum();
    let mut g = c.benchmark_group("observer");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("process_1000_connections", |b| {
        b.iter(|| {
            let mut obs = SniObserver::new();
            obs.process_stream(black_box(&packets));
            obs.observations().len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tls,
    bench_quic,
    bench_dns,
    bench_observer_stream
);
criterion_main!(benches);
