//! Packets and endpoints.
//!
//! The observer sees traffic as a time-ordered stream of [`Packet`]s, each a
//! transport 5-tuple plus an opaque payload. Payloads use [`bytes::Bytes`]
//! so the synthesizer, the flow table and the observer can share buffers
//! without copying.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// TCP segment payload (we only model the first client payload, i.e.
    /// the TLS ClientHello record).
    Tcp,
    /// UDP datagram (QUIC Initial or DNS query).
    Udp,
}

/// An IPv4 endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Endpoint {
    /// IPv4 address as a big-endian integer.
    pub ip: u32,
    /// Transport port.
    pub port: u16,
}

impl Endpoint {
    /// Construct from address parts.
    pub fn new(ip: u32, port: u16) -> Self {
        Self { ip, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.ip.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}:{}", self.port)
    }
}

/// One observed packet (client → server direction; the observer's SNI logic
/// only needs that direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp, milliseconds.
    pub t_ms: u64,
    /// Sender.
    pub src: Endpoint,
    /// Receiver.
    pub dst: Endpoint,
    /// Transport protocol.
    pub transport: Transport,
    /// Transport payload.
    pub payload: Bytes,
}

impl Packet {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the packet carries no payload.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_displays_dotted_quad() {
        let e = Endpoint::new(0xC0A8_0101, 443);
        assert_eq!(e.to_string(), "192.168.1.1:443");
    }

    #[test]
    fn packet_len_tracks_payload() {
        let p = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 1000),
            dst: Endpoint::new(2, 443),
            transport: Transport::Tcp,
            payload: Bytes::from_static(b"abc"),
        };
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
