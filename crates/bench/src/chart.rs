//! Terminal chart rendering.
//!
//! The experiment binaries reproduce *figures*; these helpers let them
//! draw the figures too, as ASCII plots: an XY line/scatter chart for the
//! Figure 2/3 CCDFs and a stacked horizontal share bar for the Figure 6
//! topic timelines. Pure string construction — trivially testable.

/// Render an XY curve as an ASCII chart of `width × height` characters
/// (plus axes). Points are `(x, y)`; both axes are scaled linearly unless
/// `log_x` is set (log₁₀, requires positive x values).
pub fn line_chart(points: &[(f64, f64)], width: usize, height: usize, log_x: bool) -> String {
    if points.is_empty() || width < 2 || height < 2 {
        return String::from("(no data)\n");
    }
    let tx = |x: f64| if log_x { x.max(1e-12).log10() } else { x };
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        let x = tx(x);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    if (max_x - min_x).abs() < 1e-12 {
        max_x = min_x + 1.0;
    }
    if (max_y - min_y).abs() < 1e-12 {
        max_y = min_y + 1.0;
    }

    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in points {
        let cx = (((tx(x) - min_x) / (max_x - min_x)) * (width - 1) as f64).round() as usize;
        let cy = (((y - min_y) / (max_y - min_y)) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy.min(height - 1);
        grid[row][cx.min(width - 1)] = b'*';
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max_y:>8.2} ")
        } else if r == height - 1 {
            format!("{min_y:>8.2} ")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ascii grid"));
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let x_lo = if log_x {
        format!("10^{min_x:.1}")
    } else {
        format!("{min_x:.0}")
    };
    let x_hi = if log_x {
        format!("10^{max_x:.1}")
    } else {
        format!("{max_x:.0}")
    };
    out.push_str(&format!(
        "{}{}{}\n",
        " ".repeat(10),
        x_lo,
        format_args!("{x_hi:>width$}", width = width.saturating_sub(x_lo.len()))
    ));
    out
}

/// Render shares (values summing to ~any total) as one stacked horizontal
/// bar of `width` cells, each segment drawn with its label's first letter.
/// Segments under half a cell are dropped.
pub fn stacked_bar(shares: &[(String, f64)], width: usize) -> String {
    let total: f64 = shares.iter().map(|(_, v)| v.max(0.0)).sum();
    if total <= 0.0 || width == 0 {
        return String::from("(empty)");
    }
    let mut out = String::with_capacity(width);
    let mut used = 0usize;
    for (label, v) in shares {
        let cells = ((v.max(0.0) / total) * width as f64).round() as usize;
        let cells = cells.min(width - used);
        if cells == 0 {
            continue;
        }
        let ch = label.chars().next().unwrap_or('?');
        out.extend(std::iter::repeat_n(ch, cells));
        used += cells;
        if used >= width {
            break;
        }
    }
    out.extend(std::iter::repeat_n('.', width - used));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_has_expected_geometry() {
        let pts: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0 / i as f64)).collect();
        let chart = line_chart(&pts, 40, 10, true);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 12, "10 rows + axis + x labels");
        assert!(
            lines[0].contains('*') || lines[1].contains('*'),
            "max is plotted near the top"
        );
        assert!(chart.contains("1.00"), "y max label");
        assert!(chart.contains("10^"), "log x labels");
    }

    #[test]
    fn monotone_curve_descends_left_to_right() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 50.0 - i as f64)).collect();
        let chart = line_chart(&pts, 50, 8, false);
        // First star in the top row must be left of the first star in the
        // bottom row.
        let lines: Vec<&str> = chart.lines().collect();
        let top = lines[0].find('*').expect("top row has the max");
        let bottom = lines[7].find('*').expect("bottom row has the min");
        assert!(top < bottom);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(line_chart(&[], 40, 10, false), "(no data)\n");
        let _ = line_chart(&[(1.0, 1.0)], 40, 10, true);
        let _ = line_chart(&[(0.0, 0.0), (0.0, 0.0)], 2, 2, false);
    }

    #[test]
    fn stacked_bar_is_proportional_and_fixed_width() {
        let shares = vec![
            ("Online".to_string(), 50.0),
            ("Travel".to_string(), 25.0),
            ("Games".to_string(), 25.0),
        ];
        let bar = stacked_bar(&shares, 40);
        assert_eq!(bar.chars().count(), 40);
        let o = bar.chars().filter(|&c| c == 'O').count();
        let t = bar.chars().filter(|&c| c == 'T').count();
        assert!((o as i64 - 20).abs() <= 1, "O cells {o}");
        assert!((t as i64 - 10).abs() <= 1, "T cells {t}");
    }

    #[test]
    fn stacked_bar_handles_empty() {
        assert_eq!(stacked_bar(&[], 10), "(empty)");
        assert_eq!(stacked_bar(&[("x".to_string(), 0.0)], 10), "(empty)");
    }
}
