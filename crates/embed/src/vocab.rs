//! Token vocabulary with counts, min-count filtering and subsampling.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A frozen vocabulary: token ↔ dense index, plus corpus counts and the
/// per-token *keep probability* used for frequent-token subsampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    counts: Vec<u64>,
    index: HashMap<String, u32>,
    keep_prob: Vec<f64>,
    total_count: u64,
}

impl Vocab {
    /// Build from token sequences, dropping tokens seen fewer than
    /// `min_count` times and computing subsampling keep-probabilities with
    /// threshold `subsample` (0 disables subsampling: keep everything).
    ///
    /// Tokens are ordered by descending count (ties broken
    /// lexicographically) so index 0 is the most frequent token, as in
    /// word2vec.
    pub fn build<'a, I, S>(sequences: I, min_count: u64, subsample: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = &'a str>,
    {
        let mut raw: HashMap<&str, u64> = HashMap::new();
        for seq in sequences {
            for tok in seq {
                *raw.entry(tok).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(&str, u64)> = raw
            .into_iter()
            .filter(|(_, c)| *c >= min_count.max(1))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let total_count: u64 = pairs.iter().map(|(_, c)| c).sum();
        let mut tokens = Vec::with_capacity(pairs.len());
        let mut counts = Vec::with_capacity(pairs.len());
        let mut index = HashMap::with_capacity(pairs.len());
        let mut keep_prob = Vec::with_capacity(pairs.len());
        for (i, (tok, c)) in pairs.into_iter().enumerate() {
            index.insert(tok.to_string(), i as u32);
            tokens.push(tok.to_string());
            counts.push(c);
            keep_prob.push(keep_probability(c, total_count, subsample));
        }
        Self {
            tokens,
            counts,
            index,
            keep_prob,
            total_count,
        }
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Dense index of a token.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token at a dense index.
    ///
    /// # Panics
    /// Panics when the index is out of range.
    pub fn token(&self, idx: u32) -> &str {
        &self.tokens[idx as usize]
    }

    /// Corpus count of a token index.
    pub fn count(&self, idx: u32) -> u64 {
        self.counts[idx as usize]
    }

    /// Total corpus tokens (post min-count).
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Probability of *keeping* an occurrence of token `idx` during
    /// training (1.0 when subsampling is off or the token is rare).
    pub fn keep_prob(&self, idx: u32) -> f64 {
        self.keep_prob[idx as usize]
    }

    /// All counts, index-aligned (used to build the negative table).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterate `(index, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.as_str()))
    }

    /// Map a raw sequence into dense indices, dropping unknown tokens.
    pub fn encode<'a, I: IntoIterator<Item = &'a str>>(&self, seq: I) -> Vec<u32> {
        seq.into_iter().filter_map(|t| self.get(t)).collect()
    }

    /// Fold a new batch of token sequences into the vocabulary **without
    /// moving any existing index** (DESIGN.md §14). Occurrences of known
    /// tokens bump their counts in place; unknown tokens seen at least
    /// `min_count` times in this batch are appended after the current end,
    /// ordered by descending batch count with lexicographic tie-break —
    /// the same deterministic order [`Vocab::build`] uses, restricted to
    /// the newcomers. Keep-probabilities are recomputed for *every* token
    /// (the totals shifted), but the token → index map only ever grows:
    /// an id handed out once is valid forever.
    ///
    /// Returns the number of appended tokens.
    pub fn grow<'a, I, S>(&mut self, sequences: I, min_count: u64, subsample: f64) -> usize
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = &'a str>,
    {
        let mut fresh: HashMap<&str, u64> = HashMap::new();
        for seq in sequences {
            for tok in seq {
                if let Some(&i) = self.index.get(tok) {
                    self.counts[i as usize] += 1;
                    self.total_count += 1;
                } else {
                    *fresh.entry(tok).or_insert(0) += 1;
                }
            }
        }
        let mut pairs: Vec<(&str, u64)> = fresh
            .into_iter()
            .filter(|(_, c)| *c >= min_count.max(1))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let appended = pairs.len();
        for (tok, c) in pairs {
            let i = self.tokens.len() as u32;
            self.index.insert(tok.to_string(), i);
            self.tokens.push(tok.to_string());
            self.counts.push(c);
            self.keep_prob.push(1.0);
            self.total_count += c;
        }
        for (p, &c) in self.keep_prob.iter_mut().zip(&self.counts) {
            *p = keep_probability(c, self.total_count, subsample);
        }
        appended
    }

    /// All keep probabilities, index-aligned (for persistence).
    pub(crate) fn keep_probs(&self) -> &[f64] {
        &self.keep_prob
    }

    /// Reassemble a vocabulary from persisted parts — the flat-container
    /// counterpart of the serde `Deserialize` path. Token order defines
    /// the dense indices, exactly as stored.
    pub(crate) fn from_parts(
        tokens: Vec<String>,
        counts: Vec<u64>,
        keep_prob: Vec<f64>,
        total_count: u64,
    ) -> Self {
        assert_eq!(tokens.len(), counts.len());
        assert_eq!(tokens.len(), keep_prob.len());
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Self {
            tokens,
            counts,
            index,
            keep_prob,
            total_count,
        }
    }
}

/// word2vec subsampling keep probability:
/// `p = sqrt(t/f) + t/f` where `f` is the token's corpus frequency and `t`
/// the subsample threshold; clamped to `[0, 1]`.
fn keep_probability(count: u64, total: u64, subsample: f64) -> f64 {
    if subsample <= 0.0 || total == 0 {
        return 1.0;
    }
    let f = count as f64 / total as f64;
    if f <= subsample {
        return 1.0;
    }
    ((subsample / f).sqrt() + subsample / f).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<&'static str>> {
        vec![
            vec!["a", "b", "a", "c"],
            vec!["a", "b", "d"],
            vec!["a", "e"],
        ]
    }

    #[test]
    fn build_orders_by_descending_count() {
        let v = Vocab::build(corpus(), 1, 0.0);
        assert_eq!(v.len(), 5);
        assert_eq!(v.token(0), "a");
        assert_eq!(v.count(0), 4);
        assert_eq!(v.token(1), "b");
        assert_eq!(v.get("e"), Some(4));
        assert_eq!(v.get("zzz"), None);
        assert_eq!(v.total_count(), 9);
    }

    #[test]
    fn min_count_drops_rare_tokens() {
        let v = Vocab::build(corpus(), 2, 0.0);
        assert_eq!(v.len(), 2); // only a (4) and b (2)
        assert!(v.get("c").is_none());
        assert_eq!(v.total_count(), 6);
    }

    #[test]
    fn subsampling_discounts_frequent_tokens_only() {
        // "a" is 4/9 of the corpus; with a small threshold it must be
        // kept with probability < 1 while singletons stay at 1.
        let v = Vocab::build(corpus(), 1, 0.05);
        let a = v.get("a").unwrap();
        let e = v.get("e").unwrap();
        assert!(v.keep_prob(a) < 1.0, "frequent token subsampled");
        assert_eq!(v.keep_prob(e), 1.0, "rare token always kept");
    }

    #[test]
    fn zero_subsample_keeps_everything() {
        let v = Vocab::build(corpus(), 1, 0.0);
        for (i, _) in v.iter() {
            assert_eq!(v.keep_prob(i), 1.0);
        }
    }

    #[test]
    fn encode_drops_unknown_tokens() {
        let v = Vocab::build(corpus(), 2, 0.0);
        let enc = v.encode(["a", "c", "b", "nope"]);
        assert_eq!(enc, vec![v.get("a").unwrap(), v.get("b").unwrap()]);
    }

    #[test]
    fn empty_corpus_builds_empty_vocab() {
        let v = Vocab::build(Vec::<Vec<&str>>::new(), 1, 1e-3);
        assert!(v.is_empty());
        assert_eq!(v.total_count(), 0);
    }

    #[test]
    fn tie_break_is_lexicographic_for_determinism() {
        let v = Vocab::build(vec![vec!["z", "y", "z", "y"]], 1, 0.0);
        assert_eq!(v.token(0), "y");
        assert_eq!(v.token(1), "z");
    }

    #[test]
    fn grow_appends_without_moving_existing_ids() {
        let mut v = Vocab::build(corpus(), 1, 0.0);
        let before: Vec<(String, u32)> = v.iter().map(|(i, t)| (t.to_string(), i)).collect();
        let appended = v.grow(vec![vec!["f", "a", "g", "f", "f"]], 1, 0.0);
        assert_eq!(appended, 2);
        for (tok, idx) in &before {
            assert_eq!(v.get(tok), Some(*idx), "{tok} moved");
        }
        // Newcomers append in batch-count-desc, lexicographic-tie order.
        assert_eq!(v.get("f"), Some(5));
        assert_eq!(v.get("g"), Some(6));
        assert_eq!(v.count(5), 3);
        assert_eq!(v.count(6), 1);
        // Known-token occurrences bump counts in place.
        assert_eq!(v.count(v.get("a").unwrap()), 5);
        assert_eq!(v.total_count(), 9 + 5);
    }

    #[test]
    fn grow_respects_min_count_for_new_tokens_only() {
        let mut v = Vocab::build(corpus(), 2, 0.0); // a, b
        let appended = v.grow(vec![vec!["x", "x", "y", "b"]], 2, 0.0);
        assert_eq!(appended, 1);
        assert_eq!(v.get("x"), Some(2));
        assert!(v.get("y").is_none(), "below min_count, dropped");
        // Existing token counted even though it appeared only once.
        assert_eq!(v.count(v.get("b").unwrap()), 3);
        assert_eq!(v.total_count(), 6 + 2 + 1);
    }

    #[test]
    fn grow_recomputes_keep_probs_against_the_new_total() {
        let mut v = Vocab::build(corpus(), 1, 0.05);
        let a = v.get("a").unwrap();
        let before = v.keep_prob(a);
        assert!(before < 1.0);
        // Flood with a new token: "a"'s relative frequency drops, so its
        // keep probability must rise.
        v.grow(vec![vec!["flood"; 40]], 1, 0.05);
        assert!(v.keep_prob(a) > before);
        assert!(v.keep_prob(v.get("flood").unwrap()) < 1.0);
    }

    #[test]
    fn repeated_grows_keep_every_id_stable() {
        let mut v = Vocab::build(corpus(), 1, 0.0);
        let mut pinned: Vec<(String, u32)> = v.iter().map(|(i, t)| (t.to_string(), i)).collect();
        for round in 0..4 {
            let name = format!("new{round}");
            v.grow(vec![vec![name.as_str(), "a"]], 1, 0.0);
            for (tok, idx) in &pinned {
                assert_eq!(v.get(tok), Some(*idx));
            }
            pinned.push((name.clone(), v.get(&name).unwrap()));
        }
        assert_eq!(v.len(), 9);
    }
}
