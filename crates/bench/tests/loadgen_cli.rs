//! CLI contract of the `loadgen` serving load generator: flag parsing
//! fails loudly with exit 2, `--help` exits clean, and a smoke run
//! drives the full ingest → window → profile loop and writes a results
//! JSON the schema test can pin.

use serde::Deserialize;
use std::process::{Command, Output};

/// The handful of fields the smoke assertions need; the full schema is
/// pinned by the root crate's `tests/bench_schema.rs`.
#[derive(Deserialize)]
struct SmokeResults {
    scale: String,
    packets: u64,
    ticks: u64,
    profiles_emitted: u64,
    taxonomy_invariant_ok: bool,
    report_latency_ms: SmokeLatency,
}

#[derive(Deserialize)]
struct SmokeLatency {
    p50_ms: f64,
}

fn loadgen(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = loadgen(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: loadgen"));
}

#[test]
fn flag_errors_exit_two() {
    for bad in [
        vec!["--bogus"],
        vec!["--users"],             // missing value
        vec!["--users", "many"],     // unparsable value
        vec!["--pps", "-3"],         // non-positive rate
        vec!["--scale", "galactic"], // unknown scale
    ] {
        let out = loadgen(&bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bad:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: loadgen"),
            "{bad:?} error must include usage"
        );
    }
}

#[test]
fn smoke_run_writes_results_json() {
    let path = std::env::temp_dir().join(format!(
        "hostprof-loadgen-smoke-{}.json",
        std::process::id()
    ));
    let out = loadgen(&["--smoke", "--out", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("serving load generator"), "{text}");
    assert!(text.contains("taxonomy invariant"), "{text}");

    let json: SmokeResults =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("results written"))
            .expect("valid JSON");
    assert_eq!(json.scale, "tiny");
    assert!(json.packets > 0);
    assert!(json.ticks > 0);
    assert!(json.profiles_emitted > 0);
    assert!(json.taxonomy_invariant_ok);
    assert!(json.report_latency_ms.p50_ms > 0.0);
    let _ = std::fs::remove_file(path);
}
