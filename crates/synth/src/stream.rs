//! Streaming trace emission.
//!
//! [`Trace::generate`] materializes a whole world's request history before
//! anything can consume it — fine for replay, wrong for a serving loop
//! that should run forever against millions of users. [`TraceStream`] is
//! the lazy counterpart: an infinite, time-ordered iterator of [`Request`]s
//! driven by per-user generators and a priority queue, holding only
//! O(users + in-flight dependencies) state no matter how long it runs.
//!
//! The emitted stream has the same statistical shape the profiler exploits
//! in the batch trace — topic-persistent page visits, core-host background
//! noise, CDN/API/tracker dependencies firing within ~1.5 s of each page —
//! but it is *not* request-identical to [`Trace::generate`] (different
//! sampling order by construction). Load generation and the `hostprof
//! serve` live mode use this; golden replay keeps using the materialized
//! trace.
//!
//! [`Trace::generate`]: crate::trace::Trace::generate

use crate::ids::{HostId, UserId};
use crate::trace::Request;
use crate::user::Population;
use crate::world::World;
use hostprof_ontology::TopCategoryId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Knobs of the streaming emitter. Page-structure probabilities default to
/// the batch [`TraceConfig`](crate::config::TraceConfig) values; the pace
/// is set directly by `mean_gap_ms` (think time between page visits)
/// instead of diurnal session sampling, so a load generator can dial a
/// target request rate.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// RNG seed; each user derives an independent stream from it.
    pub seed: u64,
    /// Mean think time between one user's consecutive page visits,
    /// exponentially distributed.
    pub mean_gap_ms: u64,
    /// Probability of staying on the current interest topic.
    pub topic_persistence: f64,
    /// Probability that a page visit goes to a core host.
    pub core_visit_prob: f64,
    /// Probability that each dependency of a visited site fires.
    pub dependency_fire_prob: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_0005,
            mean_gap_ms: 60_000,
            topic_persistence: 0.62,
            core_visit_prob: 0.22,
            dependency_fire_prob: 0.8,
        }
    }
}

/// What a scheduled heap entry does when its time comes. `Page` drives the
/// user's generator forward; `Visit` is an already-chosen dependency hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    Page,
    Visit(HostId),
}

struct UserState {
    rng: ChaCha8Rng,
    topic: TopCategoryId,
}

/// Infinite, time-ordered request stream over a world + population.
///
/// Deterministic per `(world, population, config)`: each user's generator
/// is seeded by `splitmix64(seed, user)` and the heap breaks timestamp
/// ties by a global insertion sequence, so two identically-configured
/// streams emit identical requests forever.
pub struct TraceStream<'a> {
    world: &'a World,
    population: &'a Population,
    users: Vec<UserState>,
    /// Min-heap of `(t_ms, tie-break seq, user, action)`.
    heap: BinaryHeap<Reverse<(u64, u64, u32, Action)>>,
    seq: u64,
    config: StreamConfig,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<'a> TraceStream<'a> {
    /// Start a stream. Every user's first page visit lands within one mean
    /// gap of t = 0, so load ramps immediately instead of idling.
    pub fn new(world: &'a World, population: &'a Population, config: StreamConfig) -> Self {
        let mut users = Vec::with_capacity(population.len());
        let mut heap = BinaryHeap::with_capacity(population.len());
        let mut seq = 0u64;
        for user in population.users() {
            let mut rng =
                ChaCha8Rng::seed_from_u64(splitmix64(config.seed ^ (user.id.0 as u64) << 17));
            let topic = user.sample_topic(&mut rng);
            let first = rng.gen_range(0..config.mean_gap_ms.max(1));
            heap.push(Reverse((first, seq, user.id.0, Action::Page)));
            seq += 1;
            users.push(UserState { rng, topic });
        }
        Self {
            world,
            population,
            users,
            heap,
            seq,
            config,
        }
    }

    /// Events currently scheduled (users + in-flight dependencies) — the
    /// whole memory footprint of the generator.
    pub fn scheduled(&self) -> usize {
        self.heap.len()
    }

    /// Exponential think time with mean `mean_gap_ms`, at least 1 ms.
    fn gap(rng: &mut ChaCha8Rng, mean_gap_ms: u64) -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln() * mean_gap_ms as f64) as u64).max(1)
    }
}

impl Iterator for TraceStream<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let Reverse((t, _, user_raw, action)) = self.heap.pop()?;
        let user = UserId(user_raw);
        let host = match action {
            Action::Visit(host) => host,
            Action::Page => {
                // Sample topics/hosts and reschedule *before* returning, so
                // the stream never stalls.
                let state = &mut self.users[user.index()];
                if !state.rng.gen_bool(self.config.topic_persistence) {
                    state.topic = self.population.user(user).sample_topic(&mut state.rng);
                }
                let host = if state.rng.gen_bool(self.config.core_visit_prob) {
                    self.world.sample_core(&mut state.rng)
                } else {
                    self.world.sample_site(&mut state.rng, state.topic)
                };
                // Dependencies fire within ~1.5 s of the page load.
                let deps: Vec<HostId> = self.world.host(host).deps.clone();
                for dep in deps {
                    if state.rng.gen_bool(self.config.dependency_fire_prob) {
                        let dt = state.rng.gen_range(50..1500u64);
                        self.heap
                            .push(Reverse((t + dt, self.seq, user_raw, Action::Visit(dep))));
                        self.seq += 1;
                    }
                }
                let gap = Self::gap(&mut state.rng, self.config.mean_gap_ms);
                self.heap
                    .push(Reverse((t + gap, self.seq, user_raw, Action::Page)));
                self.seq += 1;
                host
            }
        };
        Some(Request {
            t_ms: t,
            user,
            host,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PopulationConfig, WorldConfig};
    use crate::world::HostKind;

    fn setup() -> (World, Population) {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        (world, pop)
    }

    #[test]
    fn stream_is_time_ordered_and_deterministic() {
        let (world, pop) = setup();
        let take = 2_000usize;
        let a: Vec<Request> = TraceStream::new(&world, &pop, StreamConfig::default())
            .take(take)
            .collect();
        let b: Vec<Request> = TraceStream::new(&world, &pop, StreamConfig::default())
            .take(take)
            .collect();
        assert_eq!(a, b, "same config ⇒ identical stream");
        for w in a.windows(2) {
            assert!(w[0].t_ms <= w[1].t_ms, "time-ordered");
        }
        let c: Vec<Request> = TraceStream::new(
            &world,
            &pop,
            StreamConfig {
                seed: 99,
                ..StreamConfig::default()
            },
        )
        .take(take)
        .collect();
        assert_ne!(a, c, "different seed ⇒ different stream");
    }

    #[test]
    fn all_users_participate_and_dependencies_fire() {
        let (world, pop) = setup();
        let reqs: Vec<Request> = TraceStream::new(&world, &pop, StreamConfig::default())
            .take(5_000)
            .collect();
        let active: std::collections::HashSet<UserId> = reqs.iter().map(|r| r.user).collect();
        assert_eq!(active.len(), pop.len(), "every user browses");
        let infra = reqs
            .iter()
            .filter(|r| {
                matches!(
                    world.host(r.host).kind,
                    HostKind::Cdn | HostKind::Api | HostKind::Tracker
                )
            })
            .count();
        let frac = infra as f64 / reqs.len() as f64;
        assert!(frac > 0.3, "co-request structure present: {frac}");
    }

    #[test]
    fn memory_stays_bounded_no_matter_how_long_it_runs() {
        let (world, pop) = setup();
        let mut stream = TraceStream::new(&world, &pop, StreamConfig::default());
        let mut peak = 0usize;
        for _ in 0..20_000 {
            stream.next();
            peak = peak.max(stream.scheduled());
        }
        // One page event per user plus in-flight dependencies.
        assert!(
            peak <= pop.len() * 16,
            "scheduled events bounded: {peak} for {} users",
            pop.len()
        );
    }

    #[test]
    fn mean_gap_controls_the_request_rate() {
        let (world, pop) = setup();
        let span = |gap: u64| {
            let reqs: Vec<Request> = TraceStream::new(
                &world,
                &pop,
                StreamConfig {
                    mean_gap_ms: gap,
                    ..StreamConfig::default()
                },
            )
            .take(3_000)
            .collect();
            reqs.last().unwrap().t_ms
        };
        let fast = span(1_000);
        let slow = span(100_000);
        assert!(
            slow > fast * 10,
            "10× the think time stretches the stream: fast={fast} slow={slow}"
        );
    }
}
