//! Differential conformance tests for the chaos fault-injection subsystem,
//! run as part of the `cargo test -p hostprof-net` CI chaos job.
//!
//! The root-package suite (`tests/chaos_observer.rs`) runs the four
//! acceptance properties at 1000+ cases each; this crate-level suite keeps
//! a smaller default seed matrix (fast in debug builds) plus the exhaustive
//! boundary re-split test, and honors two environment knobs the CI matrix
//! sets:
//!
//! * `CHAOS_SEED_BASE` — offset added to every seed (each CI matrix entry
//!   explores a disjoint seed range);
//! * `CHAOS_CASES` — number of seeds per property (CI release jobs raise
//!   it).

use hostprof_net::observer::ObserverConfig;
use hostprof_net::packet::Transport;
use hostprof_net::{
    chaos, ChaosConfig, FlowKey, Packet, RequestEvent, SniObserver, TrafficSynthesizer,
};

/// Seed offset from the CI matrix (0 when unset).
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Cases per property (256 when unset; the root suite runs 1000+).
fn cases() -> u64 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Minimal splitmix64, for varying the *shape* of each case's traffic —
/// distinct from the chaos module's own RNG so the test stream and the
/// mutations are independent draws.
struct ShapeRng(u64);

impl ShapeRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A small deterministic traffic stream whose shape (event count, client
/// count, hostname pool, protocol mix) varies with the seed.
fn stream_for(seed: u64) -> Vec<Packet> {
    let mut rng = ShapeRng(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0xdead_beef);
    let events = 4 + rng.below(28);
    let clients = 1 + rng.below(6) as u32;
    let hosts = 1 + rng.below(9);
    let synth = TrafficSynthesizer {
        quic_fraction: rng.below(5) as f64 * 0.25,
        dns_fraction: rng.below(3) as f64 * 0.2,
        ech_fraction: rng.below(3) as f64 * 0.15,
        tcp_fragment_fraction: rng.below(5) as f64 * 0.25,
        ..TrafficSynthesizer::default()
    };
    let events: Vec<RequestEvent> = (0..events)
        .map(|i| RequestEvent {
            t_ms: 1_000 + i * (50 + rng.below(400)),
            client: (i as u32) % clients,
            hostname: format!("host{}.seed{}.example.com", rng.below(hosts), seed % 97),
        })
        .collect();
    synth.synthesize(&events)
}

/// Tight caps so cap-enforcement paths actually fire at test scale.
fn tight_caps() -> ObserverConfig {
    ObserverConfig {
        max_pending_bytes: 2_048,
        max_pending_segments: 8,
        max_pending_flows: 8,
        max_total_pending_bytes: 8_192,
    }
}

/// ISSUE property (a): no mutated stream may panic the observer, and the
/// error taxonomy must balance exactly on every one.
#[test]
fn aggressive_chaos_never_panics_and_taxonomy_balances() {
    let base = seed_base();
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let out = chaos::apply(&ChaosConfig::aggressive(seed), &stream);
        let mut obs = SniObserver::new().with_dns_harvesting();
        obs.process_stream(&out.packets);
        let stats = obs.stats();
        assert_eq!(
            stats.parse_errors,
            obs.stats().taxonomy_total(),
            "taxonomy must balance at seed {seed}: {stats:?}"
        );
        assert_eq!(
            stats.reassembly_invariant, 0,
            "impossible-state counter fired at seed {seed}"
        );
    }
}

/// ISSUE property (b): flows the chaos pass certifies clean must yield
/// bit-identical observations with and without chaos. Checked per flow by
/// solo replay, since `Observation` carries no flow attribution.
#[test]
fn clean_flow_observations_are_bit_identical_under_chaos() {
    let base = seed_base();
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let out = chaos::apply(&ChaosConfig::with_seed(seed), &stream);
        let mut chaotic = SniObserver::new();
        chaotic.process_stream(&out.packets);
        for key in &out.clean_flows {
            let flow_pkts: Vec<Packet> = stream
                .iter()
                .filter(|p| FlowKey::of(p) == *key)
                .cloned()
                .collect();
            let mut solo = SniObserver::new();
            solo.process_stream(&flow_pkts);
            for want in solo.observations() {
                assert!(
                    chaotic.observations().contains(want),
                    "seed {seed}: clean flow {key:?} lost observation {want:?}"
                );
            }
        }
    }
}

/// ISSUE property (c): `pending` reassembly memory stays under the
/// configured caps after every single packet, even under aggressive chaos
/// with tiny caps.
#[test]
fn pending_memory_stays_under_caps_per_packet() {
    let base = seed_base();
    let cfg = tight_caps();
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let out = chaos::apply(&ChaosConfig::aggressive(seed), &stream);
        let mut obs = SniObserver::with_config(cfg);
        for pkt in &out.packets {
            obs.process(pkt);
            assert!(
                obs.pending_bytes() <= cfg.max_total_pending_bytes,
                "seed {seed}: pending bytes {} over cap {}",
                obs.pending_bytes(),
                cfg.max_total_pending_bytes
            );
            assert!(
                obs.pending_flows() <= cfg.max_pending_flows,
                "seed {seed}: pending flows {} over cap {}",
                obs.pending_flows(),
                cfg.max_pending_flows
            );
        }
    }
}

/// ISSUE property (d): chaos is replayable — the same seed over the same
/// input yields identical mutated bytes, chaos stats and observer stats.
#[test]
fn same_seed_yields_identical_stats_and_stream() {
    let base = seed_base();
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let cfg = ChaosConfig::with_seed(seed);
        let (a, b) = (chaos::apply(&cfg, &stream), chaos::apply(&cfg, &stream));
        assert_eq!(a.packets, b.packets, "seed {seed}: mutated streams differ");
        assert_eq!(a.stats, b.stats, "seed {seed}: chaos stats differ");
        let mut oa = SniObserver::new();
        oa.process_stream(&a.packets);
        let mut ob = SniObserver::new();
        ob.process_stream(&b.packets);
        assert_eq!(oa.stats(), ob.stats(), "seed {seed}: observer stats differ");
        assert_eq!(oa.observations(), ob.observations());
    }
}

/// Exhaustive re-split: a ClientHello delivered as `[..i]` + `[i..]` for
/// *every* interior boundary `i` must reassemble to the same hostname. This
/// is the deterministic backbone behind the randomized re-split mutation.
#[test]
fn tcp_resplit_at_every_boundary_recovers_the_hostname() {
    use bytes::Bytes;
    use hostprof_net::packet::Endpoint;

    let record = hostprof_net::tls::ClientHello::for_hostname("boundary.example.com").encode();
    for cut in 1..record.len() {
        let mk = |t: u64, chunk: &[u8]| Packet {
            t_ms: t,
            src: Endpoint::new(0x0a00_0001, 40_000 + (cut % 20_000) as u16),
            dst: Endpoint::new(0x0a00_0002, 443),
            transport: Transport::Tcp,
            payload: Bytes::from(chunk.to_vec()),
        };
        let mut obs = SniObserver::new();
        obs.process(&mk(0, &record[..cut]));
        obs.process(&mk(1, &record[cut..]));
        let hosts: Vec<&str> = obs
            .observations()
            .iter()
            .map(|o| o.hostname.as_str())
            .collect();
        assert_eq!(
            hosts,
            vec!["boundary.example.com"],
            "boundary {cut} of {} failed to reassemble",
            record.len()
        );
        assert_eq!(
            obs.pending_bytes(),
            0,
            "boundary {cut} leaked pending bytes"
        );
    }
}

/// Garbage-only input: every flavor of injected garbage must be absorbed
/// as a typed error or skip with balanced taxonomy, and the observer must
/// never *fabricate* a hostname. (Truncated-ClientHello garbage segments
/// can legitimately concatenate into a complete record — in that case the
/// only hostname recoverable is the `.invalid` one actually on the wire.)
#[test]
fn pure_garbage_floods_never_fabricate_hostnames() {
    let base = seed_base();
    for seed in base..base + cases().min(64) {
        let cfg = ChaosConfig {
            garbage_flows: 48,
            ..ChaosConfig::quiescent(seed)
        };
        let out = chaos::apply(&cfg, &[]);
        let mut obs = SniObserver::new().with_dns_harvesting();
        obs.process_stream(&out.packets);
        for o in obs.observations() {
            assert!(
                o.hostname.ends_with(".invalid"),
                "seed {seed}: fabricated hostname {:?}",
                o.hostname
            );
        }
        assert_eq!(
            obs.stats().parse_errors,
            obs.stats().taxonomy_total(),
            "seed {seed}"
        );
    }
}
