//! DNS query codec.
//!
//! §7.2 of the paper: "A DNS provider may actually act as a profiler since
//! it learns the hostnames requested by a user via DNS requests." To model
//! that observer position, the traffic synthesizer can emit a plaintext DNS
//! query ahead of each connection, and [`extract_qname`] recovers the
//! hostname exactly as a resolver (or an on-path eavesdropper, absent
//! DoH/DoT) would.

use crate::error::ParseError;
use crate::wire::{Reader, Writer};

/// Query type codes.
pub mod qtype {
    /// IPv4 address record.
    pub const A: u16 = 1;
    /// IPv6 address record.
    pub const AAAA: u16 = 28;
    /// HTTPS service binding (increasingly sent alongside A/AAAA).
    pub const HTTPS: u16 = 65;
}

/// A DNS question-only message (standard query, one question).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuery {
    /// Transaction id.
    pub id: u16,
    /// Queried name, dotted form, no trailing dot.
    pub qname: String,
    /// Query type (see [`qtype`]).
    pub qtype: u16,
}

impl DnsQuery {
    /// An A query with a transaction id derived from the name (keeps
    /// synthesis deterministic).
    pub fn for_hostname(hostname: &str) -> Self {
        let mut id = 0x5a5au16;
        for b in hostname.bytes() {
            id = id.rotate_left(3) ^ b as u16;
        }
        Self {
            id,
            qname: hostname.to_ascii_lowercase(),
            qtype: qtype::A,
        }
    }

    /// Serialize to wire bytes (RFC 1035 §4).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u16(self.id);
        w.put_u16(0x0100); // flags: standard query, RD
        w.put_u16(1); // QDCOUNT
        w.put_u16(0); // ANCOUNT
        w.put_u16(0); // NSCOUNT
        w.put_u16(0); // ARCOUNT
        for label in self.qname.split('.') {
            debug_assert!(!label.is_empty() && label.len() < 64);
            w.put_u8(label.len() as u8);
            w.put_bytes(label.as_bytes());
        }
        w.put_u8(0); // root label
        w.put_u16(self.qtype);
        w.put_u16(1); // QCLASS = IN
        w.into_bytes()
    }

    /// Parse a query message.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        let mut r = Reader::new(bytes);
        let id = r.u16()?;
        let flags = r.u16()?;
        if flags & 0x8000 != 0 {
            return Err(ParseError::NotAQuery); // QR bit set → response
        }
        if (flags >> 11) & 0xf != 0 {
            return Err(ParseError::NotAQuery); // opcode != QUERY
        }
        let qdcount = r.u16()?;
        if qdcount != 1 {
            return Err(ParseError::NotAQuery);
        }
        r.u16()?; // ANCOUNT
        r.u16()?; // NSCOUNT
        r.u16()?; // ARCOUNT
        let mut labels: Vec<String> = Vec::new();
        loop {
            let len = r.u8()? as usize;
            if len == 0 {
                break;
            }
            if len >= 64 {
                // Compression pointers never appear in the question section
                // of a freshly built query.
                return Err(ParseError::BadLength);
            }
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw).map_err(|_| ParseError::InvalidHostname)?;
            if !s.bytes().all(|b| b.is_ascii_graphic()) {
                return Err(ParseError::InvalidHostname);
            }
            labels.push(s.to_string());
        }
        if labels.is_empty() {
            return Err(ParseError::InvalidHostname);
        }
        let qtype = r.u16()?;
        let qclass = r.u16()?;
        if qclass != 1 {
            return Err(ParseError::NotAQuery);
        }
        Ok(Self {
            id,
            qname: labels.join("."),
            qtype,
        })
    }
}

/// Observer fast path: the queried hostname of a DNS query datagram.
pub fn extract_qname(bytes: &[u8]) -> Result<String, ParseError> {
    Ok(DnsQuery::parse(bytes)?.qname)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_query() {
        let q = DnsQuery::for_hostname("Mail.Google.COM");
        assert_eq!(q.qname, "mail.google.com");
        let bytes = q.encode();
        let back = DnsQuery::parse(&bytes).unwrap();
        assert_eq!(back, q);
        assert_eq!(extract_qname(&bytes).unwrap(), "mail.google.com");
    }

    #[test]
    fn responses_are_rejected() {
        let mut bytes = DnsQuery::for_hostname("a.com").encode();
        bytes[2] |= 0x80; // QR bit
        assert_eq!(DnsQuery::parse(&bytes), Err(ParseError::NotAQuery));
    }

    #[test]
    fn multi_question_messages_are_rejected() {
        let mut bytes = DnsQuery::for_hostname("a.com").encode();
        bytes[5] = 2; // QDCOUNT = 2
        assert_eq!(DnsQuery::parse(&bytes), Err(ParseError::NotAQuery));
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = DnsQuery::for_hostname("deep.sub.domain.example.org").encode();
        for cut in 0..bytes.len() {
            assert!(DnsQuery::parse(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn compression_pointer_in_question_is_rejected() {
        let mut bytes = DnsQuery::for_hostname("a.com").encode();
        bytes[12] = 0xc0; // pointer marker where a label length belongs
        assert_eq!(DnsQuery::parse(&bytes), Err(ParseError::BadLength));
    }

    #[test]
    fn transaction_ids_differ_across_names() {
        assert_ne!(
            DnsQuery::for_hostname("a.com").id,
            DnsQuery::for_hostname("b.com").id
        );
    }
}
