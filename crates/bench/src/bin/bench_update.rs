//! Online-update benchmark (DESIGN.md §14): what the incremental path
//! buys over the paper's full daily retrain, and what a hot swap costs
//! the serving side.
//!
//! Three measurements over a multi-day schedule of growing corpora:
//!
//! * **Incremental vs from-scratch** — per round, `SkipGram::update` on
//!   the fresh batch vs a from-scratch `SkipGram::train` on everything
//!   seen so far: tokens/second of each and the wall-clock speedup.
//! * **Version publish latency** — building the serving bundle
//!   (`ModelVersion::build`: labeled tables + unit-norm kNN copy) and
//!   publishing it through [`VersionedModel::publish`], per round.
//! * **Reader-visible stall** — a reader thread spins on
//!   `VersionedModel::load` while every version is published; the
//!   longest single load is the worst pause a serve tick could ever see.
//!   The contract is wait-free reads: the maximum must stay microscopic
//!   (no lock, one `Acquire` load), and is asserted `< 1 ms` here.
//!
//! Writes `results/bench_update.json` (override with `--out`).
//!
//! ```text
//! bench_update [--rounds N] [--base-sessions N] [--batch-sessions N]
//!              [--scale tiny|small|default|large] [--seed N] [--out PATH]
//!              [--smoke]
//! ```

use hostprof_bench::{header, row, write_results_stamped, write_stamped_at, Scale};
use hostprof_core::{ModelVersion, ProfilerConfig, VersionedModel};
use hostprof_embed::{EmbeddingSet, SkipGram, SkipGramConfig};
use hostprof_ontology::{CategoryId, CategoryVector, Ontology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct UpdateRound {
    round: usize,
    batch_sessions: usize,
    appended_tokens: usize,
    table_rebuilt: bool,
    update_seconds: f64,
    update_tokens_per_sec: f64,
    from_scratch_seconds: f64,
    from_scratch_tokens_per_sec: f64,
    /// Wall-clock advantage of updating over retraining at this round.
    speedup: f64,
}

#[derive(Serialize)]
struct PublishLatency {
    p50_ms: f64,
    p95_ms: f64,
    max_ms: f64,
}

#[derive(Serialize)]
struct ReaderStall {
    loads: u64,
    max_load_us: f64,
    mean_load_us: f64,
}

#[derive(Serialize)]
struct UpdateBenchResults {
    scale: String,
    rounds: usize,
    base_sessions: usize,
    dim: usize,
    base_vocab: usize,
    final_vocab: usize,
    appended_tokens_total: usize,
    per_round: Vec<UpdateRound>,
    /// Mean over rounds; the per-round table has the distribution.
    mean_incremental_speedup: f64,
    publish_latency_ms: PublishLatency,
    reader_stall: ReaderStall,
}

struct Args {
    rounds: usize,
    base_sessions: usize,
    batch_sessions: usize,
    scale: Scale,
    seed: u64,
    out: Option<String>,
}

const USAGE: &str = "usage: bench_update [--rounds N] [--base-sessions N] \
[--batch-sessions N] [--scale tiny|small|default|large] [--seed N] [--out PATH] [--smoke]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rounds: 5,
        base_sessions: 4_000,
        batch_sessions: 600,
        scale: Scale::from_env(),
        seed: 0x00bd_a7e5,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rounds" => {
                args.rounds = value(&mut i, "--rounds")?
                    .parse()
                    .map_err(bad("--rounds"))?
            }
            "--base-sessions" => {
                args.base_sessions = value(&mut i, "--base-sessions")?
                    .parse()
                    .map_err(bad("--base-sessions"))?
            }
            "--batch-sessions" => {
                args.batch_sessions = value(&mut i, "--batch-sessions")?
                    .parse()
                    .map_err(bad("--batch-sessions"))?
            }
            "--seed" => args.seed = value(&mut i, "--seed")?.parse().map_err(bad("--seed"))?,
            "--scale" => {
                args.scale = match value(&mut i, "--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "default" | "full" => Scale::Default,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale {other:?}\n{USAGE}")),
                }
            }
            "--out" => args.out = Some(value(&mut i, "--out")?),
            "--smoke" => {
                args.scale = Scale::Tiny;
                args.rounds = 3;
                args.base_sessions = 400;
                args.batch_sessions = 120;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    if args.rounds == 0 || args.base_sessions == 0 || args.batch_sessions == 0 {
        return Err(format!(
            "--rounds/--base-sessions/--batch-sessions must be positive\n{USAGE}"
        ));
    }
    Ok(args)
}

fn bad<E: std::fmt::Display>(flag: &'static str) -> impl Fn(E) -> String {
    move |e| format!("{flag}: {e}\n{USAGE}")
}

/// Day `day`'s sessions: topical, with the topic universe widening every
/// day so each round appends genuinely new hostnames (the growth path),
/// while earlier topics keep recurring (the count-bump path).
fn day_corpus(day: usize, sessions: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (day as u64) << 32);
    let topics = 20 + 4 * day;
    (0..sessions)
        .map(|_| {
            let topic = rng.gen_range(0..topics);
            let len = rng.gen_range(5..20);
            (0..len)
                .map(|_| format!("t{topic}-host{}.com", rng.gen_range(0..50)))
                .collect()
        })
        .collect()
}

/// A small synthetic ontology over the day-0 topic universe, so the
/// version bundle build exercises the labeled-table path.
fn ontology() -> Ontology {
    let mut ont = Ontology::new();
    for topic in 0..20u16 {
        for host in 0..10 {
            ont.insert(
                &format!("t{topic}-host{host}.com"),
                CategoryVector::from_pairs(vec![(CategoryId(topic % 12), 1.0)]),
            );
        }
    }
    ont
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_update: {e}");
            std::process::exit(2);
        }
    };

    let train_cfg = SkipGramConfig {
        dim: 32,
        epochs: 3,
        min_count: 1,
        seed: args.seed,
        ..SkipGramConfig::default()
    };

    header("online update benchmark");
    row("scale", args.scale.label());
    row("rounds", args.rounds);
    row("base sessions", args.base_sessions);
    row("batch sessions / round", args.batch_sessions);
    row("dim", train_cfg.dim);

    // Day 0: the base model both paths start from.
    let base = day_corpus(0, args.base_sessions, args.seed);
    let mut model = SkipGram::train(&base, &train_cfg).expect("base corpus trains");
    let base_vocab = model.vocab().len();
    row("base vocabulary", base_vocab);

    let mut all_sessions = base;
    let mut per_round = Vec::new();
    let mut snapshots: Vec<EmbeddingSet> = vec![model.embeddings()];
    let mut appended_total = 0usize;
    for round in 1..=args.rounds {
        let batch = day_corpus(round, args.batch_sessions, args.seed);

        let t = Instant::now();
        let report = model.update(&batch);
        let update_seconds = t.elapsed().as_secs_f64();
        snapshots.push(model.embeddings());
        appended_total += report.appended_tokens;

        all_sessions.extend(batch.iter().cloned());
        let t = Instant::now();
        let scratch = SkipGram::train(&all_sessions, &train_cfg).expect("retrain");
        let from_scratch_seconds = t.elapsed().as_secs_f64();

        let r = UpdateRound {
            round,
            batch_sessions: batch.len(),
            appended_tokens: report.appended_tokens,
            table_rebuilt: report.table_rebuilt,
            update_seconds,
            update_tokens_per_sec: report.stats.tokens_per_sec(),
            from_scratch_seconds,
            from_scratch_tokens_per_sec: scratch.train_stats().tokens_per_sec(),
            speedup: from_scratch_seconds / update_seconds.max(1e-9),
        };
        row(
            &format!("round {round}"),
            format!(
                "+{} tokens, update {:.3}s vs retrain {:.3}s ({:.1}x)",
                r.appended_tokens, r.update_seconds, r.from_scratch_seconds, r.speedup
            ),
        );
        per_round.push(r);
    }
    let final_vocab = model.vocab().len();
    row("final vocabulary", final_vocab);

    // Publish every round's version while a reader thread spins on
    // `load`, timing each call: the longest load is the worst tick-side
    // pause a swap can cause.
    let ont = Arc::new(ontology());
    let mut versions = snapshots
        .into_iter()
        .enumerate()
        .map(|(i, emb)| (i as u64 + 1, emb));
    let (first_seq, first_emb) = versions.next().expect("base snapshot");
    let t = Instant::now();
    let versioned = VersionedModel::new(ModelVersion::build(
        first_seq,
        first_emb,
        Arc::clone(&ont),
        ProfilerConfig::default(),
    ));
    let mut publish_ms = vec![t.elapsed().as_secs_f64() * 1000.0];
    let stop = AtomicBool::new(false);
    let ready = AtomicBool::new(false);
    // Floor on reader samples so a fast publish schedule (smoke) still
    // produces a measurement instead of an empty distribution.
    const MIN_LOADS: u64 = 100_000;
    let (reader_loads, reader_max_us, reader_sum_us) = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut loads = 0u64;
            let mut max_us = 0f64;
            let mut sum_us = 0f64;
            ready.store(true, Ordering::Release);
            while !stop.load(Ordering::Acquire) || loads < MIN_LOADS {
                let t = Instant::now();
                let version = versioned.load();
                let us = t.elapsed().as_secs_f64() * 1e6;
                assert!(version.seq() >= 1);
                loads += 1;
                max_us = max_us.max(us);
                sum_us += us;
            }
            (loads, max_us, sum_us)
        });
        // Don't publish into an empty room: every swap below lands while
        // the reader is actively loading, so the stall numbers cover the
        // racy window and not just a quiesced pointer.
        while !ready.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        for (seq, emb) in versions {
            let t = Instant::now();
            versioned.publish(ModelVersion::build(
                seq,
                emb,
                Arc::clone(&ont),
                ProfilerConfig::default(),
            ));
            publish_ms.push(t.elapsed().as_secs_f64() * 1000.0);
        }
        stop.store(true, Ordering::Release);
        reader.join().expect("reader panicked")
    });
    publish_ms.sort_by(|a, b| a.total_cmp(b));
    let publish = PublishLatency {
        p50_ms: percentile(&publish_ms, 0.50),
        p95_ms: percentile(&publish_ms, 0.95),
        max_ms: publish_ms.last().copied().unwrap_or(0.0),
    };
    let reader_stall = ReaderStall {
        loads: reader_loads,
        max_load_us: reader_max_us,
        mean_load_us: reader_sum_us / reader_loads.max(1) as f64,
    };
    row(
        "publish latency",
        format!(
            "p50 {:.2} ms, p95 {:.2} ms, max {:.2} ms",
            publish.p50_ms, publish.p95_ms, publish.max_ms
        ),
    );
    row(
        "reader stall",
        format!(
            "{} loads, max {:.2} us, mean {:.3} us",
            reader_stall.loads, reader_stall.max_load_us, reader_stall.mean_load_us
        ),
    );
    // The wait-free contract: a reader load is one atomic read, so even
    // with every version publishing at full tilt no load may take a
    // millisecond. A mutex on the read path would trip this instantly.
    assert!(
        reader_stall.max_load_us < 1_000.0,
        "reader-visible stall {} us — the read path is not wait-free",
        reader_stall.max_load_us
    );

    let mean_speedup =
        per_round.iter().map(|r| r.speedup).sum::<f64>() / per_round.len().max(1) as f64;
    let results = UpdateBenchResults {
        scale: args.scale.label().to_string(),
        rounds: args.rounds,
        base_sessions: args.base_sessions,
        dim: train_cfg.dim,
        base_vocab,
        final_vocab,
        appended_tokens_total: appended_total,
        per_round,
        mean_incremental_speedup: mean_speedup,
        publish_latency_ms: publish,
        reader_stall,
    };
    let headline = format!(
        "vocab {base_vocab} → {final_vocab}, {mean_speedup:.1}x vs retrain, \
         reader max pause {:.1} us",
        results.reader_stall.max_load_us
    );
    match &args.out {
        Some(path) => {
            write_stamped_at(std::path::Path::new(path), &results, &headline).unwrap_or_else(|e| {
                eprintln!("bench_update: could not write {path}: {e}");
                std::process::exit(1);
            });
            println!("\n[results written to {path}]");
        }
        None => write_results_stamped("bench_update", &results, &headline),
    }
}
