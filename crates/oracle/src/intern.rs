//! Naive hostname interning (DESIGN.md §13).
//!
//! The production [`HostInterner`] packs names into one string arena and
//! resolves hash collisions through an FNV-indexed bucket map. The oracle
//! is the obviously correct version: a `Vec<String>` searched by linear
//! scan. First-seen order defines the dense ids in both, so on any input
//! stream the two must assign identical ids and resolve identical names —
//! including adversarial inputs (duplicates, empty strings, hash-colliding
//! names) the arena path's bucket logic exists for.
//!
//! [`HostInterner`]: hostprof_store::HostInterner

/// First-seen dense interning by linear scan. O(n) per insert and proud
/// of it.
#[derive(Debug, Default)]
pub struct NaiveInterner {
    names: Vec<String>,
}

impl NaiveInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id of `name`, assigning the next dense id on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    /// Id of `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// Name of an id.
    ///
    /// # Panics
    /// Panics when `id` was never assigned.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct names seen.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name was interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_store::HostInterner;

    /// Drive both interners with one stream and assert lockstep equality
    /// after every single operation.
    fn differential(stream: &[&str]) {
        let mut oracle = NaiveInterner::new();
        let mut prod = HostInterner::new();
        for (step, name) in stream.iter().enumerate() {
            assert_eq!(
                oracle.get(name),
                prod.get(name),
                "step {step}: pre-insert lookup of {name:?} diverged"
            );
            assert_eq!(
                oracle.intern(name),
                prod.intern(name),
                "step {step}: id assignment for {name:?} diverged"
            );
            assert_eq!(oracle.len(), prod.len(), "step {step}: table size diverged");
        }
        for id in 0..oracle.len() as u32 {
            assert_eq!(oracle.name(id), prod.name(id), "name of id {id} diverged");
        }
    }

    #[test]
    fn duplicates_and_empty_strings_agree() {
        differential(&[
            "a.example",
            "b.example",
            "a.example",
            "",
            "b.example",
            "",
            "c.example",
            "a.example",
        ]);
    }

    #[test]
    fn prefix_and_arena_adjacency_confusions_agree() {
        // Names that are prefixes/suffixes of each other and names equal
        // to the concatenation of two earlier names — the cases where an
        // arena + offsets representation could mis-compare.
        differential(&[
            "ab", "a", "b", "abab", "ba", "aba", "bab", "ab", "a", "abab",
        ]);
    }

    #[test]
    fn generated_stream_with_many_collision_buckets_agrees() {
        // 64-bit FNV over short strings won't collide honestly, so force
        // heavy bucket reuse the statistical way: thousands of names from
        // a tiny alphabet, every one re-queried later.
        let names: Vec<String> = (0..4000)
            .map(|i| {
                let i = (i * 2_654_435_761u64 as usize) % 700;
                format!("h{}.{}", i % 97, ["com", "net", "org"][i % 3])
            })
            .collect();
        let stream: Vec<&str> = names.iter().map(String::as_str).collect();
        differential(&stream);
    }

    #[test]
    fn unicode_names_agree() {
        differential(&[
            "bücher.example",
            "bucher.example",
            "日本語.example",
            "bücher.example",
        ]);
    }
}
