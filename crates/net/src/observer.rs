//! The passive SNI observer.
//!
//! [`SniObserver`] is the paper's eavesdropper: it consumes a packet stream,
//! inspects exactly one payload per flow (via [`FlowTable`]), extracts
//! hostnames from TLS ClientHellos, QUIC Initials and DNS queries, and
//! assembles per-client hostname sequences — the input format of the
//! profiling algorithm (Section 4.1: "hostname request sequences across
//! users in the network").

use crate::dns;
use crate::error::ParseError;
use crate::flow::{FlowDecision, FlowKey, FlowTable};
use crate::packet::{Packet, Transport};
use crate::quic;
use crate::tls;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a hostname was recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostnameSource {
    /// TLS ClientHello `server_name` over TCP.
    TlsSni,
    /// ClientHello inside a QUIC Initial.
    QuicSni,
    /// Plaintext DNS query name.
    DnsQuery,
}

/// One recovered `(time, client, hostname)` fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Packet timestamp, milliseconds.
    pub t_ms: u64,
    /// Client IPv4 address — the observer's only notion of "user".
    pub client_ip: u32,
    /// Recovered hostname (lowercase).
    pub hostname: String,
    /// Extraction path.
    pub source: HostnameSource,
}

/// Observer counters, reported by the E6-style experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverStats {
    /// Packets consumed.
    pub packets: u64,
    /// Hostnames recovered from TCP TLS.
    pub tls_sni: u64,
    /// Hostnames recovered from QUIC Initials.
    pub quic_sni: u64,
    /// Hostnames recovered from DNS queries.
    pub dns_names: u64,
    /// Well-formed handshakes with no readable name (ECH).
    pub hidden: u64,
    /// Payloads that failed to parse as anything the observer knows.
    pub parse_errors: u64,
    /// ClientHellos recovered only after reassembling 2+ TCP segments.
    pub reassembled: u64,
    /// QUIC long/short-header packets that are legitimately not Initials
    /// (Handshake, 0-RTT, Retry, Version Negotiation, 1-RTT).
    pub skipped_non_initial: u64,
}

/// Hard caps on the per-flow reassembly buffer: a ClientHello that hasn't
/// completed within this budget is abandoned as unparseable.
const MAX_PENDING_BYTES: usize = 8 * 1024;
const MAX_PENDING_SEGMENTS: u32 = 8;
/// Cap on concurrently-reassembling flows; beyond it the oldest pending
/// flow is abandoned (counted as a parse error) so a flood of never-
/// completing handshakes cannot grow memory without bound.
const MAX_PENDING_FLOWS: usize = 4096;

/// A passive network eavesdropper.
#[derive(Debug)]
pub struct SniObserver {
    flows: FlowTable,
    observations: Vec<Observation>,
    stats: ObserverStats,
    /// Partial ClientHello bytes per TCP flow, while a handshake spans
    /// several segments.
    pending: HashMap<FlowKey, (Vec<u8>, u32)>,
    /// Insertion order of `pending` keys, for FIFO eviction at the cap.
    pending_order: std::collections::VecDeque<FlowKey>,
    /// Whether DNS queries are harvested too (off when modeling a pure
    /// TLS-only vantage point, on when modeling a DNS provider, §7.2).
    harvest_dns: bool,
}

/// Outcome of feeding one TCP segment to the TLS reassembler.
enum TlsOutcome {
    /// A hostname was recovered.
    Hostname(String),
    /// More segments are needed; the flow stays pending.
    Incomplete,
    /// Well-formed ClientHello with no readable name (ECH).
    Hidden,
    /// Not a parseable ClientHello (or budget exceeded).
    Garbage,
}

impl SniObserver {
    /// An observer with the default flow table, ignoring DNS.
    pub fn new() -> Self {
        Self {
            flows: FlowTable::default(),
            observations: Vec::new(),
            stats: ObserverStats::default(),
            pending: HashMap::new(),
            pending_order: std::collections::VecDeque::new(),
            harvest_dns: false,
        }
    }

    /// Also record hostnames from plaintext DNS queries.
    pub fn with_dns_harvesting(mut self) -> Self {
        self.harvest_dns = true;
        self
    }

    /// Consume one packet; records an observation when a hostname leaks.
    pub fn process(&mut self, pkt: &Packet) {
        self.stats.packets += 1;
        let decision = self.flows.observe(pkt);
        if decision == FlowDecision::Skip {
            return;
        }
        let key = FlowKey::of(pkt);
        if decision == FlowDecision::InspectNew {
            // A fresh flow on this 5-tuple: discard any reassembly state a
            // previous (evicted) occupant left behind, or its stale bytes
            // would corrupt this connection's ClientHello.
            self.pending.remove(&key);
        }
        let recovered: Option<(String, HostnameSource)> = match pkt.transport {
            // TCP: the ClientHello may span several segments — reassemble
            // per flow until it parses, it is provably hidden/garbage, or
            // the buffer budget runs out.
            Transport::Tcp => match self.try_tls(&key, pkt) {
                TlsOutcome::Hostname(name) => Some((name, HostnameSource::TlsSni)),
                TlsOutcome::Incomplete => return, // flow stays pending
                TlsOutcome::Hidden => {
                    self.stats.hidden += 1;
                    self.flows.finish(&key);
                    None
                }
                TlsOutcome::Garbage => {
                    self.stats.parse_errors += 1;
                    self.flows.finish(&key);
                    None
                }
            },
            // UDP is datagram-oriented: one shot, no reassembly.
            Transport::Udp if pkt.dst.port == 53 => {
                self.flows.finish(&key);
                if !self.harvest_dns {
                    return;
                }
                match dns::extract_qname(&pkt.payload) {
                    Ok(name) => Some((name.to_ascii_lowercase(), HostnameSource::DnsQuery)),
                    Err(_) => {
                        self.stats.parse_errors += 1;
                        None
                    }
                }
            }
            Transport::Udp => {
                self.flows.finish(&key);
                match quic::classify(&pkt.payload) {
                    Ok(quic::QuicPacketKind::Initial) => {
                        match quic::extract_sni_from_quic(&pkt.payload) {
                            Ok(Some(name)) => {
                                Some((name.to_ascii_lowercase(), HostnameSource::QuicSni))
                            }
                            Ok(None) => {
                                self.stats.hidden += 1;
                                None
                            }
                            Err(_) => {
                                self.stats.parse_errors += 1;
                                None
                            }
                        }
                    }
                    // Mid-connection capture: Handshake/0-RTT/1-RTT/Retry
                    // packets carry no SNI by design — not an error.
                    Ok(_) => {
                        self.stats.skipped_non_initial += 1;
                        None
                    }
                    Err(_) => {
                        self.stats.parse_errors += 1;
                        None
                    }
                }
            }
        };
        if let Some((hostname, source)) = recovered {
            match source {
                HostnameSource::TlsSni => self.stats.tls_sni += 1,
                HostnameSource::QuicSni => self.stats.quic_sni += 1,
                HostnameSource::DnsQuery => self.stats.dns_names += 1,
            }
            self.observations.push(Observation {
                t_ms: pkt.t_ms,
                client_ip: pkt.src.ip,
                hostname,
                source,
            });
        }
    }

    /// Feed one TCP segment into the per-flow reassembly state.
    fn try_tls(&mut self, key: &FlowKey, pkt: &Packet) -> TlsOutcome {
        enum Parsed {
            Name(String),
            Hidden,
            Truncated,
            Garbage,
        }
        let buffered = self.pending.contains_key(key);
        // Parse against either the lone segment (fast path) or the
        // accumulated flow buffer; the borrow ends before we mutate state.
        let parsed = {
            let attempt: &[u8] = if buffered {
                let (buf, segments) = self.pending.get_mut(key).expect("checked above");
                buf.extend_from_slice(&pkt.payload);
                *segments += 1;
                buf
            } else {
                &pkt.payload
            };
            match tls::extract_sni(attempt) {
                Ok(Some(name)) => Parsed::Name(name.to_ascii_lowercase()),
                Ok(None) => Parsed::Hidden,
                Err(ParseError::Truncated) => Parsed::Truncated,
                Err(_) => Parsed::Garbage,
            }
        };
        match parsed {
            Parsed::Name(name) => {
                if buffered {
                    self.stats.reassembled += 1;
                    self.pending.remove(key);
                }
                self.flows.finish(key);
                TlsOutcome::Hostname(name)
            }
            Parsed::Hidden => {
                self.pending.remove(key);
                TlsOutcome::Hidden
            }
            Parsed::Truncated => {
                if buffered {
                    let (buf, segments) = self.pending.get(key).expect("checked above");
                    if buf.len() > MAX_PENDING_BYTES || *segments >= MAX_PENDING_SEGMENTS {
                        self.pending.remove(key);
                        return TlsOutcome::Garbage;
                    }
                } else {
                    if pkt.payload.len() > MAX_PENDING_BYTES {
                        return TlsOutcome::Garbage;
                    }
                    // Bound concurrent reassemblies: abandon the oldest.
                    while self.pending.len() >= MAX_PENDING_FLOWS {
                        match self.pending_order.pop_front() {
                            Some(old) => {
                                if self.pending.remove(&old).is_some() {
                                    self.stats.parse_errors += 1;
                                    self.flows.finish(&old);
                                }
                            }
                            None => break,
                        }
                    }
                    self.pending.insert(*key, (pkt.payload.to_vec(), 1));
                    self.pending_order.push_back(*key);
                }
                TlsOutcome::Incomplete
            }
            Parsed::Garbage => {
                self.pending.remove(key);
                TlsOutcome::Garbage
            }
        }
    }

    /// Consume a whole stream.
    pub fn process_stream<'a, I: IntoIterator<Item = &'a Packet>>(&mut self, packets: I) {
        for p in packets {
            self.process(p);
        }
    }

    /// Everything observed so far, in processing order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Drain the observations, leaving the observer running.
    pub fn take_observations(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.observations)
    }

    /// Group observations into per-client `(time, hostname)` sequences —
    /// the profiling algorithm's input. Clients are keyed by IP: behind a
    /// NAT, several users collapse into one sequence, exactly the §7.2
    /// confusion this substrate lets us quantify.
    pub fn per_client_sequences(&self) -> HashMap<u32, Vec<(u64, String)>> {
        let mut map: HashMap<u32, Vec<(u64, String)>> = HashMap::new();
        for o in &self.observations {
            map.entry(o.client_ip)
                .or_default()
                .push((o.t_ms, o.hostname.clone()));
        }
        for seq in map.values_mut() {
            seq.sort_by_key(|(t, _)| *t);
        }
        map
    }

    /// Counters.
    pub fn stats(&self) -> ObserverStats {
        self.stats
    }

    /// Flow-table counters.
    pub fn flow_stats(&self) -> crate::flow::FlowStats {
        self.flows.stats()
    }
}

impl Default for SniObserver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Endpoint;
    use crate::tls::ClientHello;
    use bytes::Bytes;

    fn tls_packet(t: u64, client_ip: u32, sport: u16, host: &str) -> Packet {
        Packet {
            t_ms: t,
            src: Endpoint::new(client_ip, sport),
            dst: Endpoint::new(0x0808_0808, 443),
            transport: Transport::Tcp,
            payload: Bytes::from(ClientHello::for_hostname(host).encode()),
        }
    }

    #[test]
    fn tls_sni_is_observed_once_per_flow() {
        let mut obs = SniObserver::new();
        obs.process(&tls_packet(0, 1, 5000, "espn.com"));
        // Subsequent data on the same flow must not re-count.
        let mut follow = tls_packet(5, 1, 5000, "espn.com");
        follow.payload = Bytes::from_static(&[23, 3, 3, 0, 1, 0]);
        obs.process(&follow);
        assert_eq!(obs.observations().len(), 1);
        assert_eq!(obs.observations()[0].hostname, "espn.com");
        assert_eq!(obs.stats().tls_sni, 1);
    }

    #[test]
    fn quic_and_dns_paths_work() {
        let mut obs = SniObserver::new().with_dns_harvesting();
        let quic_pkt = Packet {
            t_ms: 1,
            src: Endpoint::new(7, 40000),
            dst: Endpoint::new(9, 443),
            transport: Transport::Udp,
            payload: Bytes::from(crate::quic::InitialPacket::for_hostname("quic.example").encode()),
        };
        obs.process(&quic_pkt);
        let dns_pkt = Packet {
            t_ms: 2,
            src: Endpoint::new(7, 40001),
            dst: Endpoint::new(9, 53),
            transport: Transport::Udp,
            payload: Bytes::from(crate::dns::DnsQuery::for_hostname("dns.example").encode()),
        };
        obs.process(&dns_pkt);
        assert_eq!(obs.stats().quic_sni, 1);
        assert_eq!(obs.stats().dns_names, 1);
        let seqs = obs.per_client_sequences();
        assert_eq!(seqs[&7].len(), 2);
        assert_eq!(seqs[&7][0].1, "quic.example");
    }

    #[test]
    fn dns_is_ignored_without_harvesting() {
        let mut obs = SniObserver::new();
        let dns_pkt = Packet {
            t_ms: 2,
            src: Endpoint::new(7, 40001),
            dst: Endpoint::new(9, 53),
            transport: Transport::Udp,
            payload: Bytes::from(crate::dns::DnsQuery::for_hostname("dns.example").encode()),
        };
        obs.process(&dns_pkt);
        assert!(obs.observations().is_empty());
    }

    #[test]
    fn ech_counts_as_hidden_not_error() {
        let mut obs = SniObserver::new();
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 5000),
            dst: Endpoint::new(2, 443),
            transport: Transport::Tcp,
            payload: Bytes::from(ClientHello::with_ech(64).encode()),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().hidden, 1);
        assert_eq!(obs.stats().parse_errors, 0);
        assert!(obs.observations().is_empty());
    }

    #[test]
    fn garbage_counts_as_parse_error() {
        let mut obs = SniObserver::new();
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 5001),
            dst: Endpoint::new(2, 443),
            transport: Transport::Tcp,
            payload: Bytes::from_static(b"GET / HTTP/1.1\r\n"),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().parse_errors, 1);
    }

    #[test]
    fn sequences_are_time_sorted_per_client() {
        let mut obs = SniObserver::new();
        obs.process(&tls_packet(100, 1, 5000, "b.com"));
        obs.process(&tls_packet(50, 1, 5001, "a.com"));
        obs.process(&tls_packet(70, 2, 5002, "c.com"));
        let seqs = obs.per_client_sequences();
        let names: Vec<&str> = seqs[&1].iter().map(|(_, h)| h.as_str()).collect();
        assert_eq!(names, vec!["a.com", "b.com"]);
        assert_eq!(seqs[&2].len(), 1);
    }

    #[test]
    fn segmented_client_hello_is_reassembled() {
        let mut obs = SniObserver::new();
        let record = ClientHello::for_hostname("segmented.example").encode();
        let cuts = [record.len() / 3, 2 * record.len() / 3, record.len()];
        let mut prev = 0usize;
        for (i, &cut) in cuts.iter().enumerate() {
            let mut pkt = tls_packet(i as u64, 9, 7000, "ignored");
            pkt.payload = Bytes::from(record[prev..cut].to_vec());
            obs.process(&pkt);
            prev = cut;
        }
        assert_eq!(obs.observations().len(), 1);
        assert_eq!(obs.observations()[0].hostname, "segmented.example");
        assert_eq!(obs.stats().reassembled, 1);
        assert_eq!(obs.stats().parse_errors, 0);
        // A later data segment on the same flow is skipped.
        let mut follow = tls_packet(10, 9, 7000, "ignored");
        follow.payload = Bytes::from_static(&[23, 3, 3, 0, 1, 0]);
        obs.process(&follow);
        assert_eq!(obs.observations().len(), 1);
    }

    #[test]
    fn reassembly_budget_is_bounded() {
        let mut obs = SniObserver::new();
        // An endless stream of truncated-looking bytes on one flow: a
        // record header promising far more data than ever arrives.
        let mut header = vec![22u8, 3, 1, 0xff, 0xff];
        header.extend_from_slice(&[1, 0xff, 0xff, 0xff]);
        for i in 0..40u64 {
            let mut pkt = tls_packet(i, 3, 7100, "ignored");
            pkt.payload = if i == 0 {
                Bytes::from(header.clone())
            } else {
                Bytes::from(vec![0u8; 1024])
            };
            obs.process(&pkt);
        }
        assert_eq!(obs.stats().parse_errors, 1, "abandoned exactly once");
        assert!(obs.observations().is_empty());
    }

    #[test]
    fn interleaved_flows_reassemble_independently() {
        let mut obs = SniObserver::new();
        let rec_a = ClientHello::for_hostname("alpha.example").encode();
        let rec_b = ClientHello::for_hostname("beta.example").encode();
        let mid_a = rec_a.len() / 2;
        let mid_b = rec_b.len() / 2;
        let mut send = |t: u64, sport: u16, bytes: Vec<u8>| {
            let mut pkt = tls_packet(t, 4, sport, "ignored");
            pkt.payload = Bytes::from(bytes);
            obs.process(&pkt);
        };
        send(0, 8000, rec_a[..mid_a].to_vec());
        send(1, 8001, rec_b[..mid_b].to_vec());
        send(2, 8000, rec_a[mid_a..].to_vec());
        send(3, 8001, rec_b[mid_b..].to_vec());
        let names: Vec<&str> = obs
            .observations()
            .iter()
            .map(|o| o.hostname.as_str())
            .collect();
        assert_eq!(names, vec!["alpha.example", "beta.example"]);
        assert_eq!(obs.stats().reassembled, 2);
    }

    #[test]
    fn non_initial_quic_packets_are_skipped_not_errors() {
        let mut obs = SniObserver::new();
        // A 1-RTT short-header datagram as the first packet of a flow
        // (mid-connection capture).
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 6000),
            dst: Endpoint::new(2, 443),
            transport: Transport::Udp,
            payload: Bytes::from_static(&[0x41, 9, 9, 9, 9, 9]),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().skipped_non_initial, 1);
        assert_eq!(obs.stats().parse_errors, 0);
        // A Handshake long-header packet on another flow.
        let pkt2 = Packet {
            t_ms: 1,
            src: Endpoint::new(1, 6001),
            dst: Endpoint::new(2, 443),
            transport: Transport::Udp,
            payload: Bytes::from_static(&[0b1110_0000, 0, 0, 0, 1, 0, 0]),
        };
        obs.process(&pkt2);
        assert_eq!(obs.stats().skipped_non_initial, 2);
    }

    #[test]
    fn port_reuse_does_not_inherit_stale_reassembly_bytes() {
        let mut obs = SniObserver::new();
        // First occupant of the 5-tuple: one truncated segment, then gone.
        let record = ClientHello::for_hostname("old-flow.example").encode();
        let mut stale = tls_packet(0, 5, 7200, "ignored");
        stale.payload = Bytes::from(record[..10].to_vec());
        obs.process(&stale);
        // The flow idles out of the table: amortized eviction runs every
        // 1024 packets, so push 1100 late, unrelated empty segments.
        for i in 0..1100u64 {
            let mut tick = tls_packet(10_000_000 + i, 99, (1025 + (i % 20_000)) as u16, "x.com");
            tick.payload = Bytes::from_static(b"");
            obs.process(&tick);
        }
        // …and a NEW connection reuses the same 5-tuple with a complete,
        // valid ClientHello. It must parse cleanly, not be appended to the
        // stale 10 bytes.
        let mut fresh = tls_packet(100_000_000, 5, 7200, "new-flow.example");
        fresh.payload = Bytes::from(ClientHello::for_hostname("new-flow.example").encode());
        obs.process(&fresh);
        assert!(
            obs.observations()
                .iter()
                .any(|o| o.hostname == "new-flow.example"),
            "fresh flow recovered: {:?}",
            obs.observations()
        );
    }

    #[test]
    fn take_observations_drains() {
        let mut obs = SniObserver::new();
        obs.process(&tls_packet(0, 1, 5000, "x.com"));
        assert_eq!(obs.take_observations().len(), 1);
        assert!(obs.observations().is_empty());
        assert_eq!(obs.stats().tls_sni, 1, "stats survive draining");
    }
}
