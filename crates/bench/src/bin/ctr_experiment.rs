//! E5 — Section 6.4: the CTR comparison.
//!
//! Runs the month-long replacement experiment and reports what the paper
//! reports: CTR of eavesdropper-selected ads vs ads served by the
//! ad-network mix, the replaced-impression counts, and the paired
//! two-tailed t-test over per-user CTRs. Paper numbers: 0.217 % vs
//! 0.168 %, 41 K of 270 K impressions replaced, p ≈ 0.113 (not
//! significant).

use hostprof::scenario::Scenario;
use hostprof_ads::{CtrExperiment, ExperimentConfig};
use hostprof_bench::{header, row, write_results, Scale};
use hostprof_stats::{bootstrap_paired_diff_ci, paired_t_test, two_proportion_z_test};
use serde::Serialize;

#[derive(Serialize)]
struct CtrResults {
    scale: String,
    impressions: u64,
    replaced: u64,
    replaced_fraction: f64,
    reports: u64,
    profiles: u64,
    eaves_ctr_pct: f64,
    orig_ctr_pct: f64,
    paired_users: usize,
    t_statistic: Option<f64>,
    p_value: Option<f64>,
    significant_at_5pct: Option<bool>,
    z_test_p: Option<f64>,
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let config = ExperimentConfig {
        pipeline: s.config.pipeline.clone(),
        ..ExperimentConfig::default()
    };
    let result = CtrExperiment::new(&s.world, &s.population, &s.trace, &s.ads, config).run();

    header(&format!(
        "Section 6.4 — CTR experiment (scale: {})",
        scale.label()
    ));
    row("ad impressions", result.impressions);
    row(
        "replaced by extension",
        format!(
            "{} ({:.1}%)",
            result.replaced,
            result.replaced_fraction() * 100.0
        ),
    );
    row("extension reports", result.reports);
    row("sessions profiled", result.profiles);
    row("models trained (days)", result.models_trained);

    let eaves = result.eaves_ctr() * 100.0;
    let orig = result.orig_ctr() * 100.0;
    println!();
    row("CTR — Eavesdropper ads", format!("{eaves:.3}%"));
    row("CTR — Original (ad-network) ads", format!("{orig:.3}%"));
    row("paper", "0.217%  vs  0.168%");

    let (a, b) = result.ctr_pairs();
    let test = paired_t_test(&a, &b);
    println!();
    row("paired users (saw both ad kinds)", a.len());
    match &test {
        Some(t) => {
            row("paired t-test t", format!("{:.3}", t.t));
            row("paired t-test p (two-tailed)", format!("{:.4}", t.p));
            row(
                "significant at p < .05?",
                if t.significant(0.05) { "YES" } else { "no" },
            );
            row("paper", "p = .11333 → not significant");
        }
        None => row("paired t-test", "undefined (degenerate sample)"),
    }

    // Complementary check: pooled clicks as binomial proportions.
    let (ei, ec, oi, oc) = result.per_user.iter().fold((0u64, 0, 0, 0), |acc, u| {
        (
            acc.0 + u.eaves_impressions,
            acc.1 + u.eaves_clicks,
            acc.2 + u.orig_impressions,
            acc.3 + u.orig_clicks,
        )
    });
    if let Some(z) = two_proportion_z_test(ec, ei, oc, oi) {
        row(
            "two-proportion z-test",
            format!("z = {:.3}, p = {:.4}", z.z, z.p),
        );
    }
    if let Some(ci) = bootstrap_paired_diff_ci(&a, &b, 0.95, 5000, 0x5e_edc1) {
        row(
            "CTR diff 95% bootstrap CI (pp)",
            format!(
                "[{:+.3}, {:+.3}] around {:+.3}{}",
                ci.lo * 100.0,
                ci.hi * 100.0,
                ci.point * 100.0,
                if ci.excludes_zero() {
                    ""
                } else {
                    " (contains 0)"
                }
            ),
        );
    }

    println!("\n  shape check: eavesdropper CTR ≥ ad-network CTR, both in the 0.07–0.84%");
    println!("  industry band, difference NOT significant at p < .05");

    write_results(
        "ctr_experiment",
        &CtrResults {
            scale: scale.label().to_string(),
            impressions: result.impressions,
            replaced: result.replaced,
            replaced_fraction: result.replaced_fraction(),
            reports: result.reports,
            profiles: result.profiles,
            eaves_ctr_pct: eaves,
            orig_ctr_pct: orig,
            paired_users: a.len(),
            t_statistic: test.map(|t| t.t),
            p_value: test.map(|t| t.p),
            significant_at_5pct: test.map(|t| t.significant(0.05)),
            z_test_p: two_proportion_z_test(ec, ei, oc, oi).map(|z| z.p),
        },
    );
}
