//! Reference statistics (§5): Welford running moments and a paired
//! t-test whose p-value is computed by a *different method* than
//! production.
//!
//! The production `paired_t_test` uses a two-pass variance and evaluates
//! the Student-t tail through the regularized incomplete beta function
//! (Lentz continued fraction). The oracle accumulates moments with
//! Welford's online update and integrates the t-density numerically with
//! Simpson's rule, using a Stirling-series log-gamma. Agreement to ~1e-9
//! therefore cross-checks two fully independent derivations.

/// Welford's online mean/variance accumulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n − 1); 0 for fewer than two points.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

/// Oracle twin of the production `TTestResult`.
#[derive(Debug, Clone, Copy)]
pub struct OracleTTest {
    pub t: f64,
    pub df: f64,
    pub p: f64,
    pub mean_diff: f64,
}

/// Paired two-tailed t-test over equal-length samples.
///
/// `None` mirrors production: fewer than two pairs, zero/NaN variance,
/// or a non-finite mean difference.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<OracleTTest> {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    if a.len() < 2 {
        return None;
    }
    let mut w = Welford::default();
    for (&x, &y) in a.iter().zip(b) {
        w.push(x - y);
    }
    let n = w.count() as f64;
    let mean_diff = w.mean();
    let var = w.sample_variance();
    if var.is_nan() || var <= 0.0 || !mean_diff.is_finite() {
        return None;
    }
    let se = (var / n).sqrt();
    let t = mean_diff / se;
    let df = n - 1.0;
    Some(OracleTTest {
        t,
        df,
        p: student_t_two_tailed_p(t, df),
        mean_diff,
    })
}

/// Two-tailed p-value for Student's t by direct numeric integration of
/// the density: `p = 1 − 2·∫₀^|t| f(x) dx` (0 for non-finite t).
pub fn student_t_two_tailed_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let limit = t.abs();
    if limit == 0.0 {
        return 1.0;
    }
    // Normalization constant Γ((ν+1)/2) / (√(νπ) Γ(ν/2)).
    let ln_c =
        ln_gamma((df + 1.0) / 2.0) - 0.5 * (df * std::f64::consts::PI).ln() - ln_gamma(df / 2.0);
    let pdf = |x: f64| (ln_c - (df + 1.0) / 2.0 * (1.0 + x * x / df).ln()).exp();

    // Composite Simpson over [0, |t|]. The density is smooth and
    // bounded, so 20k panels give far more accuracy than the 1e-9
    // agreement we assert against production.
    let steps = 20_000usize;
    let h = limit / steps as f64;
    let mut integral = pdf(0.0) + pdf(limit);
    for i in 1..steps {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        integral += w * pdf(i as f64 * h);
    }
    integral *= h / 3.0;
    (1.0 - 2.0 * integral).clamp(0.0, 1.0)
}

/// log Γ(x) for x > 0: Stirling's series after shifting x above 10 with
/// the recurrence Γ(x) = Γ(x+1)/x.
pub fn ln_gamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain");
    let mut shift = 0.0;
    while x < 10.0 {
        shift -= x.ln();
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Stirling series: (x-1/2)ln x − x + ln(2π)/2 + Σ B₂ₙ/(2n(2n−1)x^{2n−1}).
    let series = inv / 12.0 - inv * inv2 / 360.0 + inv * inv2 * inv2 / 1260.0
        - inv * inv2 * inv2 * inv2 / 1680.0;
    (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + series + shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_descriptive() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0)
            .collect();
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = hostprof_stats::descriptive::mean(&xs);
        let var = hostprof_stats::descriptive::variance(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_hits_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn t_test_matches_production_on_fixed_samples() {
        let a: Vec<f64> = (0..30).map(|i| 0.5 + 0.01 * (i as f64).cos()).collect();
        let b: Vec<f64> = (0..30)
            .map(|i| 0.47 + 0.012 * (i as f64 * 1.7).sin())
            .collect();
        let prod = hostprof_stats::paired_t_test(&a, &b).expect("production t-test");
        let oracle = paired_t_test(&a, &b).expect("oracle t-test");
        assert!((prod.t - oracle.t).abs() <= 1e-12 * prod.t.abs().max(1.0));
        assert_eq!(prod.df, oracle.df);
        assert!(
            (prod.p - oracle.p).abs() < 1e-9,
            "p: {} vs {}",
            prod.p,
            oracle.p
        );
        assert!((prod.mean_diff - oracle.mean_diff).abs() < 1e-15);
    }

    #[test]
    fn degenerate_samples_mirror_production_none() {
        // Identical pairs → zero variance → no test.
        let a = vec![1.0, 1.0, 1.0];
        assert!(paired_t_test(&a, &a).is_none());
        assert!(hostprof_stats::paired_t_test(&a, &a).is_none());
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn zero_t_means_p_one() {
        assert_eq!(student_t_two_tailed_p(0.0, 10.0), 1.0);
        assert_eq!(student_t_two_tailed_p(f64::INFINITY, 10.0), 0.0);
    }
}
