//! Offline in-tree JSON layer over the vendored `serde` value tree.
//!
//! Provides the `to_string` / `to_string_pretty` / `from_str` trio the
//! workspace uses. Numbers are written with Rust's shortest-roundtrip
//! float formatting, so `f32`/`f64` survive a save/load cycle bit-for-bit.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's Display is the shortest string that roundtrips.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar. The input is a &str so the
                    // bytes are valid; find the char at this byte offset.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = vec![(1u32, 0.5f32), (2, -1.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,-1.25]]");
        let back: Vec<(u32, f32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u8, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = String::from("a\"b\\c\nd\te\u{1}é\u{1F600}");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Unicode escapes parse too, including surrogate pairs.
        let emoji: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(emoji, "\u{1F600}");
    }

    #[test]
    fn float_bits_survive() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0x3e99_999a] {
            let x = f32::from_bits(bits);
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), bits, "json {json}");
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("{ not json").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
