//! # hostprof-embed
//!
//! A from-scratch SKIPGRAM-with-negative-sampling implementation — the
//! representation-learning engine of *User Profiling by Network Observers*
//! (CoNEXT '21, Section 4.1).
//!
//! The paper treats per-user hostname request sequences like sentences and
//! hostnames like words, learning an embedding `W ∈ ℝ^{|H|×d}` such that
//! co-requested hostnames land nearby. It uses the GENSIM defaults:
//! dimension `d = 100`, window `2m+1 = 5` (`m = 2`), `K = 5` negative
//! samples drawn from the empirical unigram distribution (raised to the
//! conventional 3/4 power), trained with SGD and a linearly decaying
//! learning rate. All of that is reproduced here, plus:
//!
//! * frequent-token subsampling (gensim `sample=1e-3`), which in this
//!   domain downweights the google/facebook-style core hosts;
//! * word2vec's *dynamic window* (the effective window for each center is
//!   uniform in `1..=m`), and its precomputed sigmoid table;
//! * optional lock-free **Hogwild** parallel training (the paper:
//!   "the algorithm is fully parallelizable and can be scaled up to
//!   requirements") — single-threaded runs are bit-deterministic, which the
//!   test-suite relies on;
//! * similarity queries over the trained vectors: cosine kNN
//!   ([`EmbeddingSet::most_similar`], [`EmbeddingSet::nearest_to_vector`])
//!   and the session aggregation the profiler needs.

pub mod config;
pub mod corpus;
pub mod embedding;
pub mod index;
pub mod knn;
pub mod model;
pub mod persist;
pub mod sigmoid;
pub mod simd;
pub mod table;
pub mod vocab;

pub use config::{KernelChoice, Sharding, SkipGramConfig};
pub use corpus::CorpusBuffer;
pub use embedding::EmbeddingSet;
pub use index::{ExactScan, IndexConfig, IvfFlat, IvfParams, NnIndex, DEFAULT_IVF_SEED};
pub use knn::KnnScratch;
pub use model::{balanced_chunk_ranges, SkipGram, TrainStats, UpdateReport};
pub use persist::{from_flat_bytes, to_flat_bytes};
pub use table::NegativeTable;
pub use vocab::Vocab;
