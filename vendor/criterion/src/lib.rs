//! Offline in-tree replacement for the `criterion` benchmark harness.
//!
//! Exposes the API subset this workspace's benches use (`Criterion`,
//! groups, `Bencher::iter`, `black_box`, `Throughput`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`) with a simple adaptive timing
//! loop: each benchmark is warmed up, then run until the sample budget is
//! spent, and the median per-iteration time is printed.
//!
//! Honors `--bench` (ignored filter args are accepted for cargo
//! compatibility) and `HOSTPROF_BENCH_QUICK=1` for fast smoke runs.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring criterion's display form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure given to `bench_function`; runs the timing loop.
pub struct Bencher {
    /// Median seconds per iteration, filled by `iter`.
    median_s: f64,
    quick: bool,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration cost.
        let warmup = Instant::now();
        let mut iters_done: u64 = 0;
        let warmup_budget = if self.quick {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(300)
        };
        while warmup.elapsed() < warmup_budget {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warmup.elapsed().as_secs_f64() / iters_done as f64;

        // Pick an iteration count per sample so a sample is ~1ms+.
        let iters_per_sample = ((1e-3 / per_iter).ceil() as u64).max(1);
        let samples = if self.quick { 5 } else { self.sample_size };
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        times.sort_by(f64::total_cmp);
        self.median_s = times[times.len() / 2];
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Top-level harness handle.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` plus any user filter strings. Real
        // criterion's `--test` (run each bench once to check it works) and
        // `--quick` map onto the same fast smoke mode as
        // `HOSTPROF_BENCH_QUICK=1`.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty())
            .cloned();
        let quick = std::env::var("HOSTPROF_BENCH_QUICK").is_ok_and(|v| v == "1")
            || args.iter().any(|a| a == "--test" || a == "--quick");
        Self { quick, filter }
    }
}

impl Criterion {
    fn runs(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if !self.runs(id) {
            return;
        }
        let mut b = Bencher {
            median_s: f64::NAN,
            quick: self.quick,
            sample_size,
        };
        f(&mut b);
        let mut line = format!("{id:<50} time: {}", format_time(b.median_s));
        match throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / b.median_s / (1u64 << 30) as f64;
                line.push_str(&format!("   thrpt: {gib:.3} GiB/s"));
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / b.median_s;
                line.push_str(&format!("   thrpt: {eps:.1} elem/s"));
            }
            None => {}
        }
        println!("{line}");
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, None, 60, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 60,
        }
    }
}

/// Group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Run a parameterized benchmark inside this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("HOSTPROF_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| (0..n).product::<u32>());
        });
        g.finish();
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("threads", 4).to_string(), "threads/4");
    }
}
