//! E9 — countermeasures and vantage points (paper §7.2 / §7.4), beyond
//! the paper's qualitative discussion.
//!
//! The paper *argues* that ad-blockers don't help against a network
//! observer, that encrypted SNI / ECH would, and that NAT blurs per-user
//! attribution. Because our observer is a real packet parser, we can
//! measure all three: every configuration below captures the same
//! browsing trace from the wire, trains the eavesdropper's model on what
//! was actually observed, profiles the final day, and scores the profiles
//! against ground-truth interests.

use hostprof::bridge::{ObservedTrace, ObserverScenario};
use hostprof::scenario::Scenario;
use hostprof::synth::trace::DAY_MS;
use hostprof::synth::UserId;
use hostprof_bench::{header, row, write_results, Scale};
use hostprof_core::{profile_accuracy, Session};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct CmRow {
    name: String,
    hostnames_recovered_pct: f64,
    sessions_profiled: usize,
    mean_accuracy: f64,
}

#[derive(Serialize)]
struct CmResults {
    scale: String,
    rows: Vec<CmRow>,
}

fn evaluate(s: &Scenario, name: &str, scenario: &ObserverScenario) -> CmRow {
    let obs = ObservedTrace::capture(&s.world, &s.trace, scenario);
    let eval_day = (s.trace.days() - 1) as u64;

    // Train on everything the observer saw before the evaluation day.
    let training: Vec<Vec<String>> = obs
        .sequences
        .values()
        .map(|seq| {
            seq.iter()
                .filter(|(t, _)| *t < eval_day * DAY_MS)
                .map(|(_, h)| h.clone())
                .collect::<Vec<String>>()
        })
        .filter(|s: &Vec<String>| s.len() >= 2)
        .collect();
    let pipeline = s.pipeline();
    let Ok(embeddings) = pipeline.train_model(&training) else {
        return CmRow {
            name: name.to_string(),
            hostnames_recovered_pct: obs.useful_fidelity(&s.world) * 100.0,
            sessions_profiled: 0,
            mean_accuracy: 0.0,
        };
    };
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());

    // Map each observed client address back to the user(s) behind it.
    let mut users_of_ip: HashMap<u32, Vec<UserId>> = HashMap::new();
    for u in s.population.users() {
        users_of_ip
            .entry(ObservedTrace::address_of(scenario, u.id))
            .or_default()
            .push(u.id);
    }

    let mut acc = 0f64;
    let mut n = 0usize;
    for (ip, seq) in &obs.sequences {
        let Some(&end) = seq
            .iter()
            .map(|(t, _)| t)
            .rfind(|t| **t >= eval_day * DAY_MS)
        else {
            continue;
        };
        let start = end.saturating_sub(pipeline.config().session_window_ms());
        let window: Vec<&str> = seq
            .iter()
            .filter(|(t, _)| *t > start && *t <= end)
            .map(|(_, h)| h.as_str())
            .collect();
        let session = Session::from_window(window.iter().copied(), Some(pipeline.blocklist()));
        let Some(profile) = profiler.profile(&session) else {
            continue;
        };
        // Score against every user behind this address — under NAT the
        // observer can only produce one profile for all of them, which is
        // precisely the degradation §7.2 predicts.
        if let Some(users) = users_of_ip.get(ip) {
            for uid in users {
                acc += profile_accuracy(&profile.categories, &s.population.user(*uid).interests)
                    as f64;
                n += 1;
            }
        }
    }
    CmRow {
        name: name.to_string(),
        hostnames_recovered_pct: obs.useful_fidelity(&s.world) * 100.0,
        sessions_profiled: n,
        mean_accuracy: if n > 0 { acc / n as f64 } else { 0.0 },
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut cfg = scale.scenario();
    cfg.trace.days = cfg.trace.days.min(6);
    let s = Scenario::generate(&cfg);

    header(&format!(
        "Countermeasures & vantage points (scale: {})",
        scale.label()
    ));
    println!(
        "  {:<28} {:>11} {:>10} {:>14}",
        "configuration", "recovered", "profiles", "mean accuracy"
    );

    let mut rows = Vec::new();
    let mut run = |name: &str, sc: ObserverScenario| {
        let r = evaluate(&s, name, &sc);
        println!(
            "  {:<28} {:>10.1}% {:>10} {:>14.3}",
            r.name, r.hostnames_recovered_pct, r.sessions_profiled, r.mean_accuracy
        );
        rows.push(r);
    };

    run("baseline (per-user IP)", ObserverScenario::per_user());
    for frac in [0.25, 0.5, 0.9] {
        run(
            &format!("ECH on {:.0}%", frac * 100.0),
            ObserverScenario::with_ech(frac),
        );
    }
    // ECH everywhere but plaintext DNS still observable — the paper's
    // "DoH/DoT matter too" point inverted.
    let mut ech_dns = ObserverScenario::with_ech(1.0);
    ech_dns.synthesizer.dns_fraction = 1.0;
    ech_dns.harvest_dns = true;
    run("ECH 100% + plaintext DNS", ech_dns);
    // …and the full countermeasure stack: ECH + DoH leaves the observer
    // with nothing but the resolver's own hostname.
    let mut ech_doh = ObserverScenario::with_ech(1.0);
    ech_doh.synthesizer.dns_fraction = 1.0;
    ech_doh.synthesizer.doh_resolver = Some("dns.resolver.example".to_string());
    ech_doh.harvest_dns = true;
    run("ECH 100% + DoH", ech_doh);
    for n in [2u32, 4, 8] {
        run(
            &format!("NAT {n} users/IP"),
            ObserverScenario::behind_nat(n),
        );
    }

    println!("\n  shape check: accuracy degrades monotonically with ECH adoption; full ECH");
    println!("  with plaintext DNS restores the baseline (the observer just moves to DNS);");
    println!("  ECH *plus* DoH is the only stack that blinds the observer completely;");
    println!("  NAT keeps recovery at 100% but replaces each user's profile with the");
    println!("  household blend — accuracy drifts toward the population average");

    write_results(
        "countermeasures",
        &CmResults {
            scale: scale.label().to_string(),
            rows,
        },
    );

    row(
        "note",
        "TOR-style relaying removes the hostname channel entirely (§7.4)",
    );
}
