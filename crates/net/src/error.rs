//! Parse errors.
//!
//! Parsers in this crate never panic on malformed input; every failure mode
//! is an explicit [`ParseError`] so an observer deployed on hostile traffic
//! degrades to "no hostname extracted" instead of crashing.

/// Why a byte buffer failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before a declared length was satisfied.
    Truncated,
    /// A length field contradicts the enclosing structure.
    BadLength,
    /// The outer framing is not what the parser handles (e.g. a TLS record
    /// that is not a handshake record).
    WrongType,
    /// The message is a TLS handshake but not a ClientHello.
    NotClientHello,
    /// A version field has a value the parser does not recognize.
    UnsupportedVersion,
    /// An extension body is internally inconsistent.
    MalformedExtension,
    /// A server name contains bytes outside printable ASCII.
    InvalidHostname,
    /// A QUIC packet without the long-header form the observer inspects.
    NotLongHeader,
    /// A DNS message that is not a standard query.
    NotAQuery,
    /// Trailing garbage after a structure that must consume its buffer.
    TrailingBytes,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParseError::Truncated => "buffer truncated",
            ParseError::BadLength => "inconsistent length field",
            ParseError::WrongType => "unexpected outer type",
            ParseError::NotClientHello => "handshake is not a ClientHello",
            ParseError::UnsupportedVersion => "unsupported protocol version",
            ParseError::MalformedExtension => "malformed extension body",
            ParseError::InvalidHostname => "hostname has invalid bytes",
            ParseError::NotLongHeader => "QUIC packet is not long-header",
            ParseError::NotAQuery => "DNS message is not a query",
            ParseError::TrailingBytes => "trailing bytes after structure",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(ParseError::Truncated.to_string(), "buffer truncated");
        let e: Box<dyn std::error::Error> = Box::new(ParseError::BadLength);
        assert!(e.to_string().contains("length"));
    }
}
