//! Naive skipgram-with-negative-sampling trainer (§4.2).
//!
//! word2vec's update rule, transcribed for readability: plain `Vec`s,
//! sequential loops, one [`sgd_step`] per (center, target) pair. No
//! SIMD, no Hogwild threads, no sharding, no scratch reuse.
//!
//! The oracle follows the *same specified algorithm* as the production
//! trainer — identical RNG stream (xorshift64*), identical quantized
//! sigmoid table, identical unigram^0.75 negative table, identical
//! learning-rate schedule — because the differential driver pins the
//! production trainer to it bit-for-bit at one thread. Any deviation in
//! draw order or accumulation order shows up as a `train` mismatch.

/// The word2vec PRNG: xorshift64* (state must be odd-initialized by the
/// caller; the trainer uses `seed | 1`).
pub fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Map one PRNG draw to a uniform f64 in `[0, 1)` (53-bit mantissa).
pub fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

/// Reference hyperparameters (mirrors `SkipGramConfig`, minus the
/// kernel/threading knobs the oracle refuses to have).
#[derive(Debug, Clone)]
pub struct SgdConfig {
    pub dim: usize,
    pub window: usize,
    pub negatives: usize,
    pub epochs: u32,
    pub learning_rate: f32,
    pub min_count: u64,
    pub subsample: f64,
    pub seed: u64,
}

/// Token table: count-descending, ties broken by token ascending.
#[derive(Debug, Clone)]
pub struct OracleVocab {
    pub tokens: Vec<String>,
    pub counts: Vec<u64>,
    /// Subsampling keep-probability per token (1.0 when disabled).
    pub keep: Vec<f64>,
    /// Sum of kept counts.
    pub total: u64,
}

impl OracleVocab {
    /// Index of `token`, by linear scan.
    pub fn index_of(&self, token: &str) -> Option<u32> {
        self.tokens
            .iter()
            .position(|t| t == token)
            .map(|i| i as u32)
    }
}

/// Count tokens, drop rare ones, order by (count desc, token asc).
pub fn build_vocab(sequences: &[Vec<String>], min_count: u64, subsample: f64) -> OracleVocab {
    let mut counts = std::collections::BTreeMap::<&str, u64>::new();
    for seq in sequences {
        for tok in seq {
            *counts.entry(tok).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(&str, u64)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count.max(1))
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
    let keep = pairs
        .iter()
        .map(|&(_, c)| keep_probability(c, total, subsample))
        .collect();
    OracleVocab {
        tokens: pairs.iter().map(|&(t, _)| t.to_string()).collect(),
        counts: pairs.iter().map(|&(_, c)| c).collect(),
        keep,
        total,
    }
}

/// word2vec's subsampling keep-probability for a token of count `c`.
pub fn keep_probability(c: u64, total: u64, subsample: f64) -> f64 {
    if subsample <= 0.0 || total == 0 {
        return 1.0;
    }
    let f = c as f64 / total as f64;
    if f <= subsample {
        return 1.0;
    }
    ((subsample / f).sqrt() + subsample / f).min(1.0)
}

/// Build the unigram^0.75 negative-sampling table (same sizing rule as
/// the production `NegativeTable::from_vocab`).
pub fn unigram_table(counts: &[u64]) -> Vec<u32> {
    if counts.is_empty() {
        return Vec::new();
    }
    let size = (counts.len() * 128)
        .clamp(1 << 16, 1 << 20)
        .max(counts.len());
    let total: f64 = counts.iter().map(|&c| (c as f64).powf(0.75)).sum();
    let mut table = Vec::with_capacity(size);
    let mut idx = 0u32;
    let mut cum = (counts[0] as f64).powf(0.75) / total;
    for i in 0..size {
        table.push(idx);
        if (i + 1) as f64 / size as f64 > cum && (idx as usize) < counts.len() - 1 {
            idx += 1;
            cum += (counts[idx as usize] as f64).powf(0.75) / total;
        }
    }
    table
}

/// The quantized sigmoid: 1000 slots over `[-6, 6]`, saturating outside.
#[derive(Debug, Clone)]
pub struct SigmoidLookup {
    table: Vec<f32>,
}

impl Default for SigmoidLookup {
    fn default() -> Self {
        Self::new()
    }
}

impl SigmoidLookup {
    pub fn new() -> Self {
        let table = (0..1000)
            .map(|i| {
                let x = (i as f32 / 1000.0 * 2.0 - 1.0) * 6.0;
                let e = x.exp();
                e / (e + 1.0)
            })
            .collect();
        Self { table }
    }

    /// σ(x) from the lookup table, saturating to {0, 1} beyond ±6.
    pub fn value(&self, x: f32) -> f32 {
        if x >= 6.0 {
            1.0
        } else if x <= -6.0 {
            0.0
        } else {
            let i = ((x + 6.0) / 12.0 * 1000.0) as usize;
            self.table[i.min(999)]
        }
    }
}

/// One skipgram SGD step for a single (center, target) pair.
///
/// `h_c` is the center word's input row, `h_o` the target's context row.
/// The gradient for the center row is accumulated into `neu1e` and only
/// applied by the caller after all `negatives + 1` targets of this
/// context position have been processed — matching word2vec's (and the
/// production trainer's) update order exactly.
pub fn sgd_step(
    h_c: &[f32],
    h_o: &mut [f32],
    neu1e: &mut [f32],
    label: f32,
    lr: f32,
    sigmoid: &SigmoidLookup,
) {
    let mut f = 0.0f32;
    for d in 0..h_c.len() {
        f += h_c[d] * h_o[d];
    }
    let g = (label - sigmoid.value(f)) * lr;
    for d in 0..h_c.len() {
        neu1e[d] += g * h_o[d];
        h_o[d] += g * h_c[d];
    }
}

/// A trained reference model: both weight matrices, row-major.
#[derive(Debug, Clone)]
pub struct OracleModel {
    pub vocab: OracleVocab,
    pub dim: usize,
    /// Input (center-word) embeddings, `vocab.tokens.len() × dim`.
    pub input: Vec<f32>,
    /// Context (output-word) embeddings, same shape.
    pub context: Vec<f32>,
}

impl OracleModel {
    /// Input row of token index `idx`.
    pub fn input_row(&self, idx: u32) -> &[f32] {
        &self.input[idx as usize * self.dim..(idx as usize + 1) * self.dim]
    }

    /// Context row of token index `idx`.
    pub fn context_row(&self, idx: u32) -> &[f32] {
        &self.context[idx as usize * self.dim..(idx as usize + 1) * self.dim]
    }
}

/// Train a reference skipgram model. `None` mirrors the production
/// trainer's error cases: empty vocabulary after min-count filtering, or
/// no sequence with two in-vocabulary tokens.
pub fn train(sequences: &[Vec<String>], cfg: &SgdConfig) -> Option<OracleModel> {
    let vocab = build_vocab(sequences, cfg.min_count, cfg.subsample);
    if vocab.tokens.is_empty() {
        return None;
    }
    let index: std::collections::HashMap<&str, u32> = vocab
        .tokens
        .iter()
        .enumerate()
        .map(|(i, t)| (t.as_str(), i as u32))
        .collect();
    let encoded: Vec<Vec<u32>> = sequences
        .iter()
        .map(|s| {
            s.iter()
                .filter_map(|t| index.get(t.as_str()).copied())
                .collect()
        })
        .filter(|s: &Vec<u32>| s.len() >= 2)
        .collect();
    if encoded.is_empty() {
        return None;
    }

    let rows = vocab.tokens.len();
    let dim = cfg.dim;

    // Weight init: one xorshift64* stream seeded `seed | 1` fills the
    // input matrix with (u - 0.5) / dim; context starts at zero.
    let mut init_state = cfg.seed | 1;
    let mut input = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        let u = unit_f64(xorshift64star(&mut init_state)) as f32;
        input.push((u - 0.5) / dim as f32);
    }
    let mut context = vec![0.0f32; rows * dim];

    let table = unigram_table(&vocab.counts);
    sgd_pass(&vocab, dim, &mut input, &mut context, &encoded, &table, cfg);

    Some(OracleModel {
        vocab,
        dim,
        input,
        context,
    })
}

/// One full SGD pass over pre-encoded sequences: worker 0's RNG stream,
/// the linear learning-rate decay updated every 10k scheduled tokens, the
/// randomly shrunken window, `negatives + 1` targets per context position
/// — exactly the production trainer's op sequence at one thread. Shared
/// by initial [`train`] and the online [`crate::update`] path, which
/// resumes from live weights with a (possibly stale) carried-over table.
pub fn sgd_pass(
    vocab: &OracleVocab,
    dim: usize,
    input: &mut [f32],
    context: &mut [f32],
    encoded: &[Vec<u32>],
    table: &[u32],
    cfg: &SgdConfig,
) {
    if table.is_empty() {
        return;
    }
    let sigmoid = SigmoidLookup::new();

    let total_tokens: u64 = encoded.iter().map(|s| s.len() as u64).sum();
    let planned = (total_tokens * cfg.epochs as u64).max(1);

    let mut rng = (cfg.seed ^ 0x9e37_79b9u64) | 1;
    let mut lr = cfg.learning_rate;
    let mut since_lr_update = 0u64;
    let mut processed = 0u64;

    for _epoch in 0..cfg.epochs {
        for seq in encoded {
            // Frequent-token subsampling (draws one uniform per token
            // whose keep-probability is below 1).
            let toks: Vec<u32> = if cfg.subsample > 0.0 {
                seq.iter()
                    .copied()
                    .filter(|&t| {
                        let p = vocab.keep[t as usize];
                        p >= 1.0 || unit_f64(xorshift64star(&mut rng)) < p
                    })
                    .collect()
            } else {
                seq.clone()
            };

            since_lr_update += seq.len() as u64;
            if since_lr_update >= 10_000 {
                processed += since_lr_update;
                since_lr_update = 0;
                let frac = processed as f32 / planned as f32;
                lr = (cfg.learning_rate * (1.0 - frac)).max(cfg.learning_rate * 1e-4);
            }

            if toks.len() < 2 {
                continue;
            }
            for c in 0..toks.len() {
                // Randomly shrunken window, as in word2vec.
                let b = (xorshift64star(&mut rng) % cfg.window as u64) as usize;
                let lo = c.saturating_sub(cfg.window - b);
                let hi = (c + cfg.window - b).min(toks.len() - 1);
                for j in lo..=hi {
                    if j == c {
                        continue;
                    }
                    let center = toks[c] as usize;
                    let ctx_word = toks[j];
                    let mut neu1e = vec![0.0f32; dim];
                    for k in 0..=cfg.negatives {
                        let (target, label) = if k == 0 {
                            (ctx_word as usize, 1.0f32)
                        } else {
                            match sample_excluding(table, &mut rng, ctx_word) {
                                Some(t) => (t as usize, 0.0f32),
                                None => continue,
                            }
                        };
                        sgd_step(
                            &input[center * dim..(center + 1) * dim],
                            &mut context[target * dim..(target + 1) * dim],
                            &mut neu1e,
                            label,
                            lr,
                            &sigmoid,
                        );
                    }
                    for d in 0..dim {
                        input[center * dim + d] += neu1e[d];
                    }
                }
            }
        }
    }
}

/// Draw a negative sample that is not `exclude`, giving up after 32
/// redraws (same bound as the production table).
fn sample_excluding(table: &[u32], rng: &mut u64, exclude: u32) -> Option<u32> {
    for _ in 0..32 {
        let idx = table[(xorshift64star(rng) % table.len() as u64) as usize];
        if idx != exclude {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_embed::{KernelChoice, Sharding, SkipGram, SkipGramConfig};

    fn corpus() -> Vec<Vec<String>> {
        // Small, repetitive, with a rare token that min_count=2 drops.
        let mut seqs = Vec::new();
        for i in 0..12u32 {
            let mut s: Vec<String> = (0..10)
                .map(|j| format!("host{}.example", (i + j) % 7))
                .collect();
            if i == 5 {
                s.push("rare.example".into());
            }
            seqs.push(s);
        }
        seqs
    }

    #[test]
    fn vocab_matches_production_order_and_counts() {
        let seqs = corpus();
        let oracle = build_vocab(&seqs, 2, 0.0);
        let prod =
            hostprof_embed::Vocab::build(seqs.iter().map(|s| s.iter().map(|t| t.as_str())), 2, 0.0);
        assert_eq!(oracle.tokens.len(), prod.len());
        for i in 0..prod.len() {
            assert_eq!(oracle.tokens[i], prod.token(i as u32));
            assert_eq!(oracle.counts[i], prod.count(i as u32));
        }
        assert!(!oracle.tokens.iter().any(|t| t == "rare.example"));
    }

    #[test]
    fn sigmoid_midpoint_is_half() {
        let s = SigmoidLookup::new();
        assert!((s.value(0.0) - 0.5).abs() < 1e-2);
        assert_eq!(s.value(7.0), 1.0);
        assert_eq!(s.value(-7.0), 0.0);
    }

    #[test]
    fn oracle_trainer_is_bit_identical_to_single_thread_production() {
        let seqs = corpus();
        let cfg = SgdConfig {
            dim: 3,
            window: 2,
            negatives: 3,
            epochs: 2,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 0.0,
            seed: 0x5eed_cafe,
        };
        let oracle = train(&seqs, &cfg).expect("oracle train");

        let prod_cfg = SkipGramConfig {
            dim: 3,
            window: 2,
            negatives: 3,
            epochs: 2,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 0.0,
            threads: 1,
            seed: 0x5eed_cafe,
            kernel: KernelChoice::Scalar,
            sharding: Sharding::Static,
        };
        let prod = SkipGram::train(&seqs, &prod_cfg).expect("production train");

        assert_eq!(oracle.vocab.tokens.len(), prod.vocab().len());
        for idx in 0..prod.vocab().len() as u32 {
            assert_eq!(oracle.vocab.tokens[idx as usize], prod.vocab().token(idx));
            assert_eq!(
                oracle.input_row(idx),
                prod.vector(idx),
                "input row {idx} diverged"
            );
            assert_eq!(
                oracle.context_row(idx),
                prod.context_vector(idx),
                "context row {idx} diverged"
            );
        }
    }

    #[test]
    fn subsampling_path_is_also_bit_identical() {
        let seqs = corpus();
        let cfg = SgdConfig {
            dim: 3,
            window: 2,
            negatives: 2,
            epochs: 1,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 0.05,
            seed: 0x1234,
        };
        let oracle = train(&seqs, &cfg).expect("oracle train");
        let prod_cfg = SkipGramConfig {
            dim: 3,
            window: 2,
            negatives: 2,
            epochs: 1,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 0.05,
            threads: 1,
            seed: 0x1234,
            kernel: KernelChoice::Scalar,
            sharding: Sharding::Static,
        };
        let prod = SkipGram::train(&seqs, &prod_cfg).expect("production train");
        for idx in 0..prod.vocab().len() as u32 {
            assert_eq!(oracle.input_row(idx), prod.vector(idx));
        }
    }

    #[test]
    fn empty_and_degenerate_corpora_mirror_production_errors() {
        let cfg = SgdConfig {
            dim: 3,
            window: 2,
            negatives: 2,
            epochs: 1,
            learning_rate: 0.025,
            min_count: 2,
            subsample: 0.0,
            seed: 1,
        };
        // Every token unique → min_count=2 empties the vocabulary.
        let seqs: Vec<Vec<String>> = vec![(0..5).map(|i| format!("once{i}.example")).collect()];
        assert!(train(&seqs, &cfg).is_none());
        assert!(train(&[], &cfg).is_none());
    }
}
