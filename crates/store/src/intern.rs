//! The global hostname table: each distinct hostname stored once, in a
//! contiguous arena, addressed by a dense `u32` id.
//!
//! Ids are assigned in first-intern order, so a table built by replaying
//! the same stream is byte-identical — the property the differential
//! oracle pins. The hash index maps an FNV-1a-64 hash of the name to the
//! ids sharing that hash (almost always exactly one); membership is
//! confirmed against the arena, so the strings are never stored twice.

use std::collections::HashMap;

/// FNV-1a 64-bit — the repo's standard content hash.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only string-to-`u32` interning table.
///
/// Memory layout: one `String` arena holding every distinct name
/// back-to-back, an offsets vector (`offsets[i]..offsets[i+1]` is name
/// `i`), and a hash index of ids. Resolving an id is two loads and a
/// slice; interning an already-known name allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct HostInterner {
    /// All names, concatenated.
    arena: String,
    /// `offsets[i]..offsets[i + 1]` bounds name `i`; always starts with 0.
    offsets: Vec<u32>,
    /// FNV-1a(name) → ids with that hash (collisions resolved by compare).
    index: HashMap<u64, Vec<u32>>,
}

impl HostInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            arena: String::new(),
            offsets: vec![0],
            index: HashMap::new(),
        }
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern `name`, returning its id (existing id if already present).
    pub fn intern(&mut self, name: &str) -> u32 {
        let h = fnv1a(name.as_bytes());
        if let Some(ids) = self.index.get(&h) {
            for &id in ids {
                if self.name(id) == name {
                    return id;
                }
            }
        }
        let id = self.len() as u32;
        assert!(
            self.arena.len() + name.len() <= u32::MAX as usize,
            "interner arena exceeds u32 addressing"
        );
        self.arena.push_str(name);
        self.offsets.push(self.arena.len() as u32);
        self.index.entry(h).or_default().push(id);
        id
    }

    /// Id of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        let ids = self.index.get(&fnv1a(name.as_bytes()))?;
        ids.iter().copied().find(|&id| self.name(id) == name)
    }

    /// The name behind `id`. Panics on an id this table never issued.
    #[inline]
    pub fn name(&self, id: u32) -> &str {
        let i = id as usize;
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All names in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len() as u32).map(move |id| self.name(id))
    }

    /// Heap footprint of the table (arena + offsets + hash index),
    /// in bytes — what `loadgen` reports as the interned-table size.
    pub fn heap_bytes(&self) -> usize {
        let index_bytes: usize = self
            .index
            .values()
            .map(|ids| std::mem::size_of::<u64>() + ids.capacity() * 4)
            .sum();
        self.arena.capacity() + self.offsets.capacity() * 4 + index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_deduplicate_and_resolve() {
        let mut t = HostInterner::new();
        let a = t.intern("travel.example");
        let b = t.intern("sport.example");
        assert_ne!(a, b);
        assert_eq!(t.intern("travel.example"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "travel.example");
        assert_eq!(t.name(b), "sport.example");
        assert_eq!(t.get("sport.example"), Some(b));
        assert_eq!(t.get("unknown.example"), None);
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut t = HostInterner::new();
        for (i, name) in ["c", "a", "b", "a", "c", "d"].iter().enumerate() {
            let id = t.intern(name);
            // First occurrences get 0,1,2,3 in stream order.
            let expect = match i {
                0 => 0, // c
                1 => 1, // a
                2 => 2, // b
                3 => 1, // a again
                4 => 0, // c again
                _ => 3, // d
            };
            assert_eq!(id, expect, "name {name} at position {i}");
        }
        let names: Vec<&str> = t.iter().collect();
        assert_eq!(names, ["c", "a", "b", "d"]);
    }

    #[test]
    fn case_variants_are_distinct_entries() {
        // The table stores exactly what it is given — normalization is the
        // caller's policy (the windower round-trips raw observer output).
        let mut t = HostInterner::new();
        let lower = t.intern("host.example");
        let upper = t.intern("HOST.example");
        assert_ne!(lower, upper);
        assert_eq!(t.name(upper), "HOST.example");
    }

    #[test]
    fn empty_name_is_a_valid_entry() {
        let mut t = HostInterner::new();
        let id = t.intern("");
        assert_eq!(t.name(id), "");
        assert_eq!(t.intern(""), id);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut t = HostInterner::new();
        let before = t.heap_bytes();
        for i in 0..100 {
            t.intern(&format!("host-{i}.example.com"));
        }
        assert!(t.heap_bytes() > before);
        assert!(t.heap_bytes() < 100 * 200, "no per-name String overhead");
    }
}
