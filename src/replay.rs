//! Deterministic end-to-end replay: one seed in, one byte-stable
//! snapshot out.
//!
//! `hostprof replay --seed S --golden tests/golden/` re-runs a pinned
//! miniature of the full paper pipeline — synthetic world → passive
//! observation → session windows → skipgram embeddings → Eq. 3/4
//! profiles → CTR experiment → paired t-test — and either compares the
//! resulting [`ReplaySnapshot`] against the committed golden JSON or
//! (with `--bless`) rewrites it.
//!
//! ## The determinism contract
//!
//! The snapshot must be **byte-identical** across every execution knob
//! that is not supposed to change observable results:
//!
//! * `{1, 4}` profiling threads — profiling consumes no randomness and
//!   the batch profiler is pinned bit-equal to the sequential path;
//! * `{scalar, simd}` skipgram kernels — the replay trains at `dim = 3`,
//!   where every SIMD kernel takes its scalar tail path from element 0,
//!   making the two kernels the *same* sequence of f32 operations;
//! * `{static, balanced}` sharding — the replay trains with one Hogwild
//!   worker, where both schedules visit sequences in identical order.
//!
//! The knobs deliberately *not* varied are the ones that legitimately
//! change results (dim ≥ 4 re-associates the portable dot product's
//! 4-accumulator reduction; `threads ≥ 2` makes Hogwild racy by design).
//! The conformance suite (`tests/replay_conformance.rs`) runs the full
//! 2×2×2 matrix and asserts byte equality; per-stage FNV digests give a
//! stage-attributed diff the moment any future optimization drifts.

use crate::bridge::{ObservedTrace, ObserverScenario};
use crate::scenario::{Scenario, ScenarioConfig};
use hostprof_ads::{CtrExperiment, ExperimentConfig, ExperimentResult};
use hostprof_core::{ServeConfig, ServeEngine, Session, SessionProfile};
use hostprof_embed::{KernelChoice, Sharding, SkipGramConfig};
use hostprof_net::RequestEvent;
use hostprof_stats::paired_t_test;
use hostprof_synth::trace::DAY_MS;
use hostprof_synth::UserId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Execution knobs for one replay. Everything here is REQUIRED to leave
/// the snapshot byte-identical; the seed alone decides the output.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Master seed, mixed into every generator.
    pub seed: u64,
    /// Worker threads for batched profiling ({1, 4} in CI).
    pub profile_threads: usize,
    /// Skipgram kernel choice.
    pub kernel: KernelChoice,
    /// Skipgram work-sharding strategy.
    pub sharding: Sharding,
    /// Test hook: add `delta` to flat embedding weight `index` after
    /// training, to prove the suite fails with a model-stage diff.
    pub perturb_embedding: Option<(usize, f32)>,
}

impl ReplayOptions {
    /// Default knobs for a seed: 1 thread, auto kernel, balanced
    /// sharding (the production defaults).
    pub fn for_seed(seed: u64) -> Self {
        Self {
            seed,
            profile_threads: 1,
            kernel: KernelChoice::Auto,
            sharding: Sharding::Balanced,
            perturb_embedding: None,
        }
    }
}

/// One category weight of a final profile (id order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryWeight {
    pub id: u16,
    pub weight: f32,
}

/// Final-day profile of one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfileSnapshot {
    pub user: u32,
    pub categories: Vec<CategoryWeight>,
    pub labeled_in_session: u64,
    pub labeled_neighbors: u64,
}

/// One row of the CTR table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserCtrSnapshot {
    pub user: u32,
    pub eaves_impressions: u64,
    pub eaves_clicks: u64,
    pub orig_impressions: u64,
    pub orig_clicks: u64,
}

/// Paired t-test over the per-user CTR pairs (`valid = false` when the
/// test is undefined, e.g. degenerate variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TTestSnapshot {
    pub valid: bool,
    pub t: f64,
    pub df: f64,
    pub p: f64,
    pub mean_diff: f64,
}

/// FNV-1a-64 digests of every intermediate stage, hex-encoded (JSON
/// numbers cannot carry u64 losslessly). Stage order is pipeline order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDigests {
    /// Synthetic browsing trace (t_ms, user, host) stream.
    pub trace: String,
    /// Hostname sequences recovered by the passive observer.
    pub observed: String,
    /// Per-(user, day) session windows after dedup + blocklist.
    pub sessions: String,
    /// Trained embedding matrix (token order + weight bits).
    pub model: String,
    /// Final-day profiles (category ids + weight bits).
    pub profiles: String,
    /// CTR experiment outcome (impression/click table + totals).
    pub ctr: String,
}

/// The golden snapshot: everything `hostprof replay` promises to keep
/// byte-stable for a given seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplaySnapshot {
    pub seed: u64,
    pub users: u64,
    pub days: u64,
    pub hosts: u64,
    pub stages: StageDigests,
    pub profiles: Vec<UserProfileSnapshot>,
    pub ctr: Vec<UserCtrSnapshot>,
    pub ctr_test: TTestSnapshot,
}

/// Streaming FNV-1a 64-bit digest with length-prefixed framing.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// The pinned replay scenario: tiny world, 12 users, 3 days, `dim = 3`
/// single-thread training (see the determinism contract above).
pub fn replay_scenario_config(opts: &ReplayOptions) -> ScenarioConfig {
    let mix = |salt: u64| -> u64 {
        let mut x = opts
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        x ^= x >> 31;
        x
    };
    let mut cfg = ScenarioConfig::tiny();
    cfg.world.seed = mix(1);
    cfg.population.num_users = 12;
    cfg.population.seed = mix(2);
    cfg.trace.days = 3;
    cfg.trace.seed = mix(3);
    cfg.ads_seed = mix(4);
    cfg.pipeline.skipgram = SkipGramConfig {
        dim: 3,
        window: 2,
        negatives: 3,
        epochs: 2,
        learning_rate: 0.025,
        min_count: 1,
        subsample: 0.0,
        threads: 1,
        seed: mix(5),
        kernel: opts.kernel,
        sharding: opts.sharding,
    };
    cfg.pipeline.profiler.n_neighbors = 20;
    cfg
}

/// Which implementation computes the final-day profiles (stage 5).
///
/// Both paths are pinned to the SAME golden snapshots: the serving loop is
/// only correct if feeding the observed packet stream through
/// [`ServeEngine`] — incremental windowing, watermark ticks, per-lane
/// observers and all — reproduces the batch path's profiles bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilePath {
    /// The batch pipeline: sort, window per (user, day), profile once.
    Batch,
    /// The streaming engine with this many ingest lanes.
    Streaming {
        /// Ingest lane count ({1, 4} in CI).
        lanes: usize,
    },
}

/// Run the full pipeline for one seed and snapshot every stage.
pub fn run_replay(opts: &ReplayOptions) -> Result<ReplaySnapshot, String> {
    run_replay_with(opts, ProfilePath::Batch)
}

/// [`run_replay`] with an explicit stage-5 implementation.
pub fn run_replay_with(opts: &ReplayOptions, path: ProfilePath) -> Result<ReplaySnapshot, String> {
    let cfg = replay_scenario_config(opts);
    let s = Scenario::generate(&cfg);

    // Stage 1: the ground-truth trace.
    let mut d = Digest::new();
    for r in s.trace.requests() {
        d.write_u64(r.t_ms);
        d.write_u64(r.user.0 as u64);
        d.write_u64(r.host.0 as u64);
    }
    let trace_digest = d.hex();

    // Stage 2: passive observation (per-user addressing, no chaos).
    let observed = ObservedTrace::capture(&s.world, &s.trace, &ObserverScenario::per_user());
    let mut d = Digest::new();
    for seq in observed.observed_sequences() {
        d.write_u64(seq.len() as u64);
        for h in &seq {
            d.write_str(h);
        }
    }
    let observed_digest = d.hex();

    // Stage 3: per-(user, day) session windows.
    let blocklist = s.world.blocklist();
    let mut sessions: Vec<(u32, u32, Session)> = Vec::new();
    let mut d = Digest::new();
    for u in 0..s.population.len() as u32 {
        for day in 0..s.trace.days() {
            let names = s.session_hostnames(UserId(u), day);
            if names.is_empty() {
                continue;
            }
            let session = Session::from_window(names.iter().map(|h| h.as_str()), Some(blocklist));
            d.write_u64(u as u64);
            d.write_u64(day as u64);
            d.write_u64(session.hostnames().len() as u64);
            for h in session.hostnames() {
                d.write_str(h);
            }
            sessions.push((u, day, session));
        }
    }
    let sessions_digest = d.hex();

    // Stage 4: train the embedding space on the whole trace.
    let pipeline = s.pipeline();
    let corpus: Vec<Vec<String>> = (0..s.trace.days())
        .flat_map(|day| s.daily_hostname_sequences(day))
        .collect();
    let mut embeddings = pipeline.train_model(&corpus)?;
    if let Some((index, delta)) = opts.perturb_embedding {
        let dim = embeddings.dim();
        let mut flat = Vec::with_capacity(embeddings.len() * dim);
        for idx in 0..embeddings.len() as u32 {
            flat.extend_from_slice(embeddings.vector_by_index(idx));
        }
        if let Some(x) = flat.get_mut(index) {
            *x += delta;
        }
        embeddings = hostprof_embed::EmbeddingSet::new(dim, embeddings.vocab().clone(), flat);
    }
    let mut d = Digest::new();
    d.write_u64(embeddings.dim() as u64);
    d.write_u64(embeddings.len() as u64);
    for idx in 0..embeddings.len() as u32 {
        d.write_str(embeddings.vocab().token(idx));
        for &x in embeddings.vector_by_index(idx) {
            d.write_f32(x);
        }
    }
    let model_digest = d.hex();

    // Stage 5: profile the final day's sessions — batch or streaming.
    let final_day = s.trace.days().saturating_sub(1);
    let per_user: Vec<(u32, Option<SessionProfile>)> = match path {
        ProfilePath::Batch => {
            let day_sessions: Vec<(u32, &Session)> = sessions
                .iter()
                .filter(|&&(_, day, _)| day == final_day)
                .map(|(u, _, sess)| (*u, sess))
                .collect();
            let profiler =
                pipeline.batch_profiler(&embeddings, s.world.ontology(), opts.profile_threads);
            let session_refs: Vec<Session> =
                day_sessions.iter().map(|(_, s)| (*s).clone()).collect();
            let profiled = profiler.profile_sessions(&session_refs);
            day_sessions
                .iter()
                .zip(profiled)
                .map(|((u, _), p)| (*u, p))
                .collect()
        }
        ProfilePath::Streaming { lanes } => {
            stream_final_day_profiles(&s, &cfg, &pipeline, &embeddings, opts, lanes, final_day)
        }
    };

    let mut profiles = Vec::new();
    let mut d = Digest::new();
    for (u, profile) in &per_user {
        let Some(p) = profile else {
            continue;
        };
        let categories: Vec<CategoryWeight> = p
            .categories
            .iter()
            .map(|(c, w)| CategoryWeight { id: c.0, weight: w })
            .collect();
        d.write_u64(*u as u64);
        d.write_u64(categories.len() as u64);
        for cw in &categories {
            d.write_u64(cw.id as u64);
            d.write_f32(cw.weight);
        }
        for &x in &p.session_vector {
            d.write_f32(x);
        }
        profiles.push(UserProfileSnapshot {
            user: *u,
            categories,
            labeled_in_session: p.labeled_in_session as u64,
            labeled_neighbors: p.labeled_neighbors as u64,
        });
    }
    let profiles_digest = d.hex();

    // Stage 6: the CTR experiment + paired t-test.
    let experiment = CtrExperiment::new(
        &s.world,
        &s.population,
        &s.trace,
        &s.ads,
        ExperimentConfig {
            pipeline: cfg.pipeline.clone(),
            profile_threads: opts.profile_threads,
            seed: cfg.ads_seed ^ 0x00ad_5eed,
            ..ExperimentConfig::default()
        },
    );
    let result = experiment.run();
    let (ctr, ctr_test) = snapshot_ctr(&result);
    let mut d = Digest::new();
    for row in &ctr {
        d.write_u64(row.user as u64);
        d.write_u64(row.eaves_impressions);
        d.write_u64(row.eaves_clicks);
        d.write_u64(row.orig_impressions);
        d.write_u64(row.orig_clicks);
    }
    d.write_u64(result.replaced);
    d.write_u64(result.impressions);
    d.write_u64(result.reports);
    d.write_u64(result.profiles);
    d.write_u64(result.models_trained);
    d.write_f64(ctr_test.t);
    d.write_f64(ctr_test.p);
    let ctr_digest = d.hex();

    Ok(ReplaySnapshot {
        seed: opts.seed,
        users: s.population.len() as u64,
        days: s.trace.days() as u64,
        hosts: s.world.num_hosts() as u64,
        stages: StageDigests {
            trace: trace_digest,
            observed: observed_digest,
            sessions: sessions_digest,
            model: model_digest,
            profiles: profiles_digest,
            ctr: ctr_digest,
        },
        profiles,
        ctr,
        ctr_test,
    })
}

/// Stage 5, streaming flavor: lower the ground-truth trace to wire
/// packets (the same clean per-user vantage stage 2 observed) and push
/// every packet through a [`ServeEngine`]; each user's final-day profile
/// is the one attached to their *last* tick anchor inside that day.
///
/// Packets are delivered request by request in trace order, so each
/// user's observation order equals their trace order (TCP fragments of a
/// request complete before the next request's packets arrive) — the
/// precondition for bit-identical windows. Cross-request timestamp
/// disorder is at most the 2 ms fragment spread, far inside the default
/// lateness bound.
fn stream_final_day_profiles(
    s: &Scenario,
    cfg: &ScenarioConfig,
    pipeline: &hostprof_core::Pipeline,
    embeddings: &hostprof_embed::EmbeddingSet,
    opts: &ReplayOptions,
    lanes: usize,
    final_day: u32,
) -> Vec<(u32, Option<SessionProfile>)> {
    let scenario = ObserverScenario::per_user();
    let base_ip = match scenario.synthesizer.addressing {
        hostprof_net::Addressing::PerClient { base_ip } => base_ip,
        _ => unreachable!("per_user() is per-client addressed"),
    };
    let profiler = pipeline.batch_profiler(embeddings, s.world.ontology(), opts.profile_threads);
    let mut engine = ServeEngine::new(
        ServeConfig {
            lanes,
            session_window_ms: cfg.pipeline.session_window_ms(),
            report_interval_ms: cfg.pipeline.report_interval_ms(),
            ..ServeConfig::default()
        },
        profiler,
        Some(pipeline.blocklist()),
    );

    let day_start = final_day as u64 * DAY_MS;
    let day_end = day_start + DAY_MS;
    // Last final-day (anchor, profile) per user; anchors only grow across
    // ticks, so plain insert keeps the latest.
    let mut latest: BTreeMap<u32, Option<SessionProfile>> = BTreeMap::new();
    let collect = |ticks: Vec<hostprof_core::TickReport>,
                   latest: &mut BTreeMap<u32, Option<SessionProfile>>| {
        for tick in ticks {
            for e in tick.entries {
                if e.anchor >= day_start && e.anchor < day_end {
                    latest.insert(e.user.wrapping_sub(base_ip), e.profile);
                }
            }
        }
    };
    for r in s.trace.requests() {
        let ev = RequestEvent {
            t_ms: r.t_ms,
            client: r.user.0,
            hostname: s.world.hostname(r.host).to_string(),
        };
        for pkt in scenario.synthesizer.packets_for(&ev) {
            let ticks = engine.ingest_packet(&pkt);
            collect(ticks, &mut latest);
        }
    }
    let ticks = engine.flush();
    collect(ticks, &mut latest);
    latest.into_iter().collect()
}

fn snapshot_ctr(result: &ExperimentResult) -> (Vec<UserCtrSnapshot>, TTestSnapshot) {
    let ctr = result
        .per_user
        .iter()
        .enumerate()
        .map(|(u, c)| UserCtrSnapshot {
            user: u as u32,
            eaves_impressions: c.eaves_impressions,
            eaves_clicks: c.eaves_clicks,
            orig_impressions: c.orig_impressions,
            orig_clicks: c.orig_clicks,
        })
        .collect();
    let (a, b) = result.ctr_pairs();
    let test = if a.len() >= 2 {
        match paired_t_test(&a, &b) {
            Some(t) => TTestSnapshot {
                valid: true,
                t: t.t,
                df: t.df,
                p: t.p,
                mean_diff: t.mean_diff,
            },
            None => TTestSnapshot::default(),
        }
    } else {
        TTestSnapshot::default()
    };
    (ctr, test)
}

/// Stage-attributed differences between two snapshots, in pipeline
/// order. Empty means byte-equivalent content.
pub fn compare_snapshots(expected: &ReplaySnapshot, actual: &ReplaySnapshot) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.seed != actual.seed {
        diffs.push(format!("config: seed {} vs {}", expected.seed, actual.seed));
    }
    for (stage, e, a) in [
        ("trace", &expected.stages.trace, &actual.stages.trace),
        (
            "observed",
            &expected.stages.observed,
            &actual.stages.observed,
        ),
        (
            "sessions",
            &expected.stages.sessions,
            &actual.stages.sessions,
        ),
        ("model", &expected.stages.model, &actual.stages.model),
        (
            "profiles",
            &expected.stages.profiles,
            &actual.stages.profiles,
        ),
        ("ctr", &expected.stages.ctr, &actual.stages.ctr),
    ] {
        if e != a {
            diffs.push(format!("stage {stage}: digest {e} vs {a}"));
        }
    }
    if expected.profiles != actual.profiles {
        for (e, a) in expected.profiles.iter().zip(&actual.profiles) {
            if e != a {
                diffs.push(format!("profiles: user{} differs", e.user));
            }
        }
        if expected.profiles.len() != actual.profiles.len() {
            diffs.push(format!(
                "profiles: {} users vs {}",
                expected.profiles.len(),
                actual.profiles.len()
            ));
        }
    }
    if expected.ctr != actual.ctr {
        diffs.push("ctr: per-user table differs".into());
    }
    if expected.ctr_test != actual.ctr_test {
        diffs.push("ctr: t-test differs".into());
    }
    diffs
}

/// Serialize a snapshot to the canonical golden JSON form (pretty, with
/// a trailing newline — byte-stable for byte-stable content).
pub fn to_golden_json(snapshot: &ReplaySnapshot) -> Result<String, String> {
    serde_json::to_string_pretty(snapshot)
        .map(|s| s + "\n")
        .map_err(|e| format!("serialize snapshot: {e:?}"))
}

/// Parse a golden JSON file's contents.
pub fn from_golden_json(contents: &str) -> Result<ReplaySnapshot, String> {
    serde_json::from_str(contents).map_err(|e| format!("parse golden snapshot: {e:?}"))
}

/// `DIR/replay_seed_S.json`.
pub fn golden_path(dir: &std::path::Path, seed: u64) -> std::path::PathBuf {
    dir.join(format!("replay_seed_{seed}.json"))
}

// ---------------------------------------------------------------------------
// The update schedule: {train → serve → incremental update → serve}
// ---------------------------------------------------------------------------

/// FNV digests of every stage of the online-update schedule, pipeline
/// order (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStageDigests {
    /// Model trained on day 0 only (token order + weight bits).
    pub base_model: String,
    /// Ticks served against version 1 while day 1 streamed.
    pub serve_pre: String,
    /// The harvested update corpus (closed windows, tick order).
    pub update_corpus: String,
    /// Model after the incremental update (grown vocab + resumed SGD).
    pub grown_model: String,
    /// Ticks served against version 2 from the swap to the flush.
    pub serve_post: String,
}

/// The golden snapshot of one online-update schedule: day 0 trains the
/// base model, day 1 streams against version 1 while its closed windows
/// are harvested, the harvest drives one [`SkipGram::update`] whose
/// result publishes as version 2, and day 2 streams against it. Byte-
/// stable across lanes, profile threads, and kernels — same contract as
/// [`ReplaySnapshot`], plus: every tick records which version served it,
/// so the swap point itself is pinned.
///
/// [`SkipGram::update`]: hostprof_embed::SkipGram::update
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateSnapshot {
    pub seed: u64,
    /// Vocabulary size of the day-0 model.
    pub base_vocab: u64,
    /// Vocabulary size after the incremental update.
    pub grown_vocab: u64,
    /// Hostnames appended by the update (ids of existing ones unmoved).
    pub appended_tokens: u64,
    /// Update-corpus sequences that reached SGD (≥ 2 in-vocab tokens).
    pub trained_sequences: u64,
    /// Whether the negative table was rebuilt by the update's policy.
    pub table_rebuilt: bool,
    /// Ticks fired while day 1 streamed (served by version 1).
    pub ticks_pre: u64,
    /// Ticks fired after the hot swap (served by version 2).
    pub ticks_post: u64,
    pub stages: UpdateStageDigests,
    /// Final post-swap profile per user (trace user ids).
    pub profiles: Vec<UserProfileSnapshot>,
}

/// Digest a tick stream: boundary, serving version, and every entry's
/// profile bits. `compute_micros` is wall clock and deliberately absent.
fn digest_ticks(d: &mut Digest, ticks: &[hostprof_core::TickReport], base_ip: u32) {
    for t in ticks {
        d.write_u64(t.boundary);
        d.write_u64(t.model_seq);
        d.write_u64(t.entries.len() as u64);
        for e in &t.entries {
            d.write_u64(e.user.wrapping_sub(base_ip) as u64);
            d.write_u64(e.anchor);
            match &e.profile {
                None => d.write_u64(0),
                Some(p) => {
                    d.write_u64(1);
                    d.write_u64(p.categories.len() as u64);
                    for (c, w) in p.categories.iter() {
                        d.write_u64(c.0 as u64);
                        d.write_f32(w);
                    }
                    for &x in &p.session_vector {
                        d.write_f32(x);
                    }
                }
            }
        }
    }
}

/// Digest an embedding set the same way stage 4 of [`run_replay_with`]
/// does: dimensionality, vocabulary order, and raw weight bits.
fn digest_embeddings(embeddings: &hostprof_embed::EmbeddingSet) -> String {
    let mut d = Digest::new();
    d.write_u64(embeddings.dim() as u64);
    d.write_u64(embeddings.len() as u64);
    for idx in 0..embeddings.len() as u32 {
        d.write_str(embeddings.vocab().token(idx));
        for &x in embeddings.vector_by_index(idx) {
            d.write_f32(x);
        }
    }
    d.hex()
}

/// Run the {train → serve → incremental-update → serve} schedule for one
/// seed with `lanes` ingest lanes, snapshotting every stage.
///
/// Determinism leans on three already-pinned properties: window *content*
/// is lane-invariant (the streaming-equivalence contract), the harvest
/// order is tick order then user order (also lane-invariant), and the
/// update trains with one Hogwild worker at `dim = 3`, where scalar and
/// SIMD kernels execute the identical f32 sequence.
pub fn run_update_replay(opts: &ReplayOptions, lanes: usize) -> Result<UpdateSnapshot, String> {
    use hostprof_core::{ModelVersion, VersionedModel};
    use hostprof_embed::SkipGram;
    use std::sync::Arc;

    let cfg = replay_scenario_config(opts);
    let s = Scenario::generate(&cfg);
    if s.trace.days() < 3 {
        return Err("update schedule needs ≥ 3 trace days".into());
    }

    // Stage 1: base model, day 0 only — the update must have genuinely
    // unseen hostnames left to grow into on later days.
    let base_corpus = s.daily_hostname_sequences(0);
    let mut model = SkipGram::train(&base_corpus, &cfg.pipeline.skipgram)?;
    let base_vocab = model.vocab().len() as u64;
    let base_embeddings = model.embeddings();
    let base_model_digest = digest_embeddings(&base_embeddings);

    // Version 1 goes live.
    let ontology = Arc::new(s.world.ontology().clone());
    let versioned = VersionedModel::new(ModelVersion::build(
        1,
        base_embeddings,
        Arc::clone(&ontology),
        cfg.pipeline.profiler.clone(),
    ));
    let scenario = ObserverScenario::per_user();
    let base_ip = match scenario.synthesizer.addressing {
        hostprof_net::Addressing::PerClient { base_ip } => base_ip,
        _ => unreachable!("per_user() is per-client addressed"),
    };
    let blocklist = s.world.blocklist();
    let mut engine = ServeEngine::with_versioned(
        ServeConfig {
            lanes,
            session_window_ms: cfg.pipeline.session_window_ms(),
            report_interval_ms: cfg.pipeline.report_interval_ms(),
            collect_windows: true,
            ..ServeConfig::default()
        },
        &versioned,
        opts.profile_threads,
        Some(blocklist),
    );

    // Stage 2: stream day 1 against version 1.
    let mut pre_ticks: Vec<hostprof_core::TickReport> = Vec::new();
    let mut post_ticks: Vec<hostprof_core::TickReport> = Vec::new();
    let swap_at = 2 * DAY_MS;
    for r in s.trace.requests() {
        if r.t_ms < DAY_MS || r.t_ms >= swap_at {
            continue;
        }
        let ev = RequestEvent {
            t_ms: r.t_ms,
            client: r.user.0,
            hostname: s.world.hostname(r.host).to_string(),
        };
        for pkt in scenario.synthesizer.packets_for(&ev) {
            pre_ticks.extend(engine.ingest_packet(&pkt));
        }
    }
    let mut d = Digest::new();
    digest_ticks(&mut d, &pre_ticks, base_ip);
    let serve_pre_digest = d.hex();

    // Stage 3: harvest whatever windows the watermark has closed so far —
    // the online trainer's corpus. Lane-invariant by construction.
    let windows = engine.take_closed_windows();
    let mut d = Digest::new();
    d.write_u64(windows.len() as u64);
    for w in &windows {
        d.write_u64(w.user.wrapping_sub(base_ip) as u64);
        d.write_u64(w.anchor);
        d.write_u64(w.window.len() as u64);
        for h in &w.window {
            d.write_str(h);
        }
    }
    let update_corpus_digest = d.hex();
    let update_corpus: Vec<Vec<String>> = windows.into_iter().map(|w| w.window).collect();

    // Stage 4: the incremental update — vocab growth, stable remapping,
    // table policy, SGD resumed from the live weights.
    let report = model.update(&update_corpus);
    let grown_embeddings = model.embeddings();
    let grown_model_digest = digest_embeddings(&grown_embeddings);

    // The hot swap: build version 2 and publish. In the live path the
    // build runs off-thread; here build-then-publish between two ingest
    // calls is the same observable schedule (a tick is served entirely by
    // whichever version its fire time loaded).
    versioned.publish(ModelVersion::build(
        2,
        grown_embeddings,
        Arc::clone(&ontology),
        cfg.pipeline.profiler.clone(),
    ));

    // Stage 5: stream day 2 against version 2, then flush the tail.
    for r in s.trace.requests() {
        if r.t_ms < swap_at {
            continue;
        }
        let ev = RequestEvent {
            t_ms: r.t_ms,
            client: r.user.0,
            hostname: s.world.hostname(r.host).to_string(),
        };
        for pkt in scenario.synthesizer.packets_for(&ev) {
            post_ticks.extend(engine.ingest_packet(&pkt));
        }
    }
    post_ticks.extend(engine.flush());
    let mut d = Digest::new();
    digest_ticks(&mut d, &post_ticks, base_ip);
    let serve_post_digest = d.hex();

    // Every pre tick was served by version 1, every post tick by 2 —
    // the snapshot's own invariant, checked here rather than trusted.
    if let Some(t) = pre_ticks.iter().find(|t| t.model_seq != 1) {
        return Err(format!(
            "pre-swap tick at {} served by version {}",
            t.boundary, t.model_seq
        ));
    }
    if let Some(t) = post_ticks.iter().find(|t| t.model_seq != 2) {
        return Err(format!(
            "post-swap tick at {} served by version {}",
            t.boundary, t.model_seq
        ));
    }

    // Final profile per user across the post-swap ticks.
    let mut latest: BTreeMap<u32, Option<SessionProfile>> = BTreeMap::new();
    for t in &post_ticks {
        for e in &t.entries {
            latest.insert(e.user.wrapping_sub(base_ip), e.profile.clone());
        }
    }
    let profiles: Vec<UserProfileSnapshot> = latest
        .into_iter()
        .filter_map(|(u, p)| {
            let p = p?;
            Some(UserProfileSnapshot {
                user: u,
                categories: p
                    .categories
                    .iter()
                    .map(|(c, w)| CategoryWeight { id: c.0, weight: w })
                    .collect(),
                labeled_in_session: p.labeled_in_session as u64,
                labeled_neighbors: p.labeled_neighbors as u64,
            })
        })
        .collect();

    Ok(UpdateSnapshot {
        seed: opts.seed,
        base_vocab,
        grown_vocab: model.vocab().len() as u64,
        appended_tokens: report.appended_tokens as u64,
        trained_sequences: report.trained_sequences as u64,
        table_rebuilt: report.table_rebuilt,
        ticks_pre: pre_ticks.len() as u64,
        ticks_post: post_ticks.len() as u64,
        stages: UpdateStageDigests {
            base_model: base_model_digest,
            serve_pre: serve_pre_digest,
            update_corpus: update_corpus_digest,
            grown_model: grown_model_digest,
            serve_post: serve_post_digest,
        },
        profiles,
    })
}

/// Stage-attributed differences between two update snapshots, schedule
/// order. Empty means byte-equivalent content.
pub fn compare_update_snapshots(expected: &UpdateSnapshot, actual: &UpdateSnapshot) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.seed != actual.seed {
        diffs.push(format!("config: seed {} vs {}", expected.seed, actual.seed));
    }
    for (stage, e, a) in [
        (
            "base_model",
            &expected.stages.base_model,
            &actual.stages.base_model,
        ),
        (
            "serve_pre",
            &expected.stages.serve_pre,
            &actual.stages.serve_pre,
        ),
        (
            "update_corpus",
            &expected.stages.update_corpus,
            &actual.stages.update_corpus,
        ),
        (
            "grown_model",
            &expected.stages.grown_model,
            &actual.stages.grown_model,
        ),
        (
            "serve_post",
            &expected.stages.serve_post,
            &actual.stages.serve_post,
        ),
    ] {
        if e != a {
            diffs.push(format!("stage {stage}: digest {e} vs {a}"));
        }
    }
    for (name, e, a) in [
        ("base_vocab", expected.base_vocab, actual.base_vocab),
        ("grown_vocab", expected.grown_vocab, actual.grown_vocab),
        (
            "appended_tokens",
            expected.appended_tokens,
            actual.appended_tokens,
        ),
        (
            "trained_sequences",
            expected.trained_sequences,
            actual.trained_sequences,
        ),
        ("ticks_pre", expected.ticks_pre, actual.ticks_pre),
        ("ticks_post", expected.ticks_post, actual.ticks_post),
    ] {
        if e != a {
            diffs.push(format!("counter {name}: {e} vs {a}"));
        }
    }
    if expected.table_rebuilt != actual.table_rebuilt {
        diffs.push(format!(
            "counter table_rebuilt: {} vs {}",
            expected.table_rebuilt, actual.table_rebuilt
        ));
    }
    if expected.profiles != actual.profiles {
        diffs.push("profiles: final post-swap profiles differ".into());
    }
    diffs
}

/// Serialize an update snapshot to canonical golden JSON (pretty, with a
/// trailing newline).
pub fn to_update_golden_json(snapshot: &UpdateSnapshot) -> Result<String, String> {
    serde_json::to_string_pretty(snapshot)
        .map(|s| s + "\n")
        .map_err(|e| format!("serialize update snapshot: {e:?}"))
}

/// Parse an update-schedule golden JSON file's contents.
pub fn from_update_golden_json(contents: &str) -> Result<UpdateSnapshot, String> {
    serde_json::from_str(contents).map_err(|e| format!("parse update snapshot: {e:?}"))
}

/// `DIR/update_seed_S.json`.
pub fn update_golden_path(dir: &std::path::Path, seed: u64) -> std::path::PathBuf {
    dir.join(format!("update_seed_{seed}.json"))
}

// ---------------------------------------------------------------------------
// The defense schedule: every §15 defense through capture → train → serve
// ---------------------------------------------------------------------------

/// Digests of one defended pipeline case (DESIGN.md §15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseCaseDigests {
    /// Case name (`baseline`, `identity_ech0`, `ech50`, …).
    pub name: String,
    /// Observations the eavesdropper recovered in this case.
    pub observations: u64,
    /// Per-client observed sequences after the defense.
    pub observed: String,
    /// Skipgram model trained on the defended observations (`none` when
    /// the defense starves training below viability).
    pub model: String,
    /// Tick stream of the defended packets through [`ServeEngine`].
    pub serve: String,
}

/// The golden snapshot of the defense schedule: the undefended baseline
/// plus one representative point per defense axis, each run capture →
/// train → streaming serve on the pinned replay scenario. Byte-stable
/// across {1, 4} lanes × {scalar, simd} kernels × profile threads — the
/// same contract as [`ReplaySnapshot`] — and the `identity_ech0` case is
/// checked *in-run* to be bit-equal to `baseline` (the defended code
/// path at an identity point must reproduce the undefended pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseSnapshot {
    pub seed: u64,
    /// Cases in fixed schedule order.
    pub cases: Vec<DefenseCaseDigests>,
}

/// The fixed defense-schedule case list: name + plan (None = plain
/// undefended capture).
fn defense_schedule(
    catalog: &hostprof_defense::HostCatalog,
    plan_seed: u64,
) -> Vec<(&'static str, Option<hostprof_defense::DefensePlan>)> {
    use hostprof_defense::{Defense, DefensePlan};
    let plan = |d: Defense| Some(DefensePlan::new(d, catalog.clone(), plan_seed));
    vec![
        ("baseline", None),
        ("identity_ech0", plan(Defense::Ech { adoption: 0.0 })),
        ("ech50", plan(Defense::Ech { adoption: 0.5 })),
        ("dummy1", plan(Defense::Dummy { rate: 1.0 })),
        ("pad2", plan(Defense::PadConstant { pad_per_event: 2 })),
        ("adaptive1", plan(Defense::PadAdaptive { intensity: 1.0 })),
        ("nat4", plan(Defense::Nat { users_per_ip: 4 })),
        ("doh50", plan(Defense::Doh { adoption: 0.5 })),
    ]
}

/// Run the defense schedule for one seed with `lanes` ingest lanes.
///
/// Determinism: defended event streams are stable time sorts of a
/// deterministic transform, training runs at `dim = 3` with one Hogwild
/// worker (kernel-invariant), and serving inherits the lane-invariance
/// contract — decoys share their client's IP, so they ride the same
/// lane as the traffic they cover.
pub fn run_defense_replay(opts: &ReplayOptions, lanes: usize) -> Result<DefenseSnapshot, String> {
    let cfg = replay_scenario_config(opts);
    let s = Scenario::generate(&cfg);
    let catalog = crate::defend::catalog_for_world(&s.world);
    let scenario = ObserverScenario::per_user();
    let base_ip = match scenario.synthesizer.addressing {
        hostprof_net::Addressing::PerClient { base_ip } => base_ip,
        _ => unreachable!("per_user() is per-client addressed"),
    };
    let pipeline = s.pipeline();

    let mut cases = Vec::new();
    for (name, plan) in defense_schedule(&catalog, opts.seed ^ 0x00de_f5ed) {
        // Capture what survives the defense.
        let observed = match &plan {
            None => ObservedTrace::capture(&s.world, &s.trace, &scenario),
            Some(p) => ObservedTrace::capture_defended(&s.world, &s.trace, &scenario, p),
        };
        let mut d = Digest::new();
        let mut observations = 0u64;
        for (ip, seq) in &observed.sequences {
            d.write_u64(*ip as u64);
            d.write_u64(seq.len() as u64);
            observations += seq.len() as u64;
            for (t, h) in seq {
                d.write_u64(*t);
                d.write_str(h);
            }
        }
        let observed_digest = d.hex();

        // Train on the defended observations.
        let training: Vec<Vec<String>> = observed
            .sequences
            .values()
            .map(|seq| seq.iter().map(|(_, h)| h.clone()).collect::<Vec<String>>())
            .filter(|sq: &Vec<String>| sq.len() >= 2)
            .collect();
        let embeddings = pipeline.train_model(&training).ok();
        let model_digest = embeddings
            .as_ref()
            .map(digest_embeddings)
            .unwrap_or_else(|| "none".to_string());

        // Stream the defended packets through the serving engine.
        let serve_digest = match &embeddings {
            None => "none".to_string(),
            Some(emb) => {
                let profiler =
                    pipeline.batch_profiler(emb, s.world.ontology(), opts.profile_threads);
                let mut engine = ServeEngine::new(
                    ServeConfig {
                        lanes,
                        session_window_ms: cfg.pipeline.session_window_ms(),
                        report_interval_ms: cfg.pipeline.report_interval_ms(),
                        ..ServeConfig::default()
                    },
                    profiler,
                    Some(pipeline.blocklist()),
                );
                let base_events: Vec<RequestEvent> = s
                    .trace
                    .requests()
                    .iter()
                    .map(|r| RequestEvent {
                        t_ms: r.t_ms,
                        client: r.user.0,
                        hostname: s.world.hostname(r.host).to_string(),
                    })
                    .collect();
                let (events, synth) = match &plan {
                    None => (base_events, scenario.synthesizer.clone()),
                    Some(p) => (
                        p.transform(&base_events),
                        p.synthesizer(&scenario.synthesizer),
                    ),
                };
                let mut ticks: Vec<hostprof_core::TickReport> = Vec::new();
                for ev in &events {
                    let ov = match &plan {
                        None => hostprof_net::WireOverride::default(),
                        Some(p) => p.wire_override(ev.client, &ev.hostname),
                    };
                    for pkt in synth.packets_for_host_with(ev.t_ms, ev.client, &ev.hostname, ov) {
                        ticks.extend(engine.ingest_packet(&pkt));
                    }
                }
                ticks.extend(engine.flush());
                let mut d = Digest::new();
                digest_ticks(&mut d, &ticks, base_ip);
                d.hex()
            }
        };

        cases.push(DefenseCaseDigests {
            name: name.to_string(),
            observations,
            observed: observed_digest,
            model: model_digest,
            serve: serve_digest,
        });
    }

    // The identity case must reproduce the baseline bit for bit — the
    // snapshot's own invariant, checked here rather than trusted.
    let baseline = &cases[0];
    let identity = &cases[1];
    for (stage, b, i) in [
        ("observed", &baseline.observed, &identity.observed),
        ("model", &baseline.model, &identity.model),
        ("serve", &baseline.serve, &identity.serve),
    ] {
        if b != i {
            return Err(format!(
                "identity point diverged from baseline at stage {stage}: {b} vs {i}"
            ));
        }
    }

    Ok(DefenseSnapshot {
        seed: opts.seed,
        cases,
    })
}

/// Stage-attributed differences between two defense snapshots, schedule
/// order. Empty means byte-equivalent content.
pub fn compare_defense_snapshots(
    expected: &DefenseSnapshot,
    actual: &DefenseSnapshot,
) -> Vec<String> {
    let mut diffs = Vec::new();
    if expected.seed != actual.seed {
        diffs.push(format!("config: seed {} vs {}", expected.seed, actual.seed));
    }
    if expected.cases.len() != actual.cases.len() {
        diffs.push(format!(
            "cases: {} vs {}",
            expected.cases.len(),
            actual.cases.len()
        ));
        return diffs;
    }
    for (e, a) in expected.cases.iter().zip(&actual.cases) {
        if e.name != a.name {
            diffs.push(format!("case order: {} vs {}", e.name, a.name));
            continue;
        }
        if e.observations != a.observations {
            diffs.push(format!(
                "case {}: observations {} vs {}",
                e.name, e.observations, a.observations
            ));
        }
        for (stage, ed, ad) in [
            ("observed", &e.observed, &a.observed),
            ("model", &e.model, &a.model),
            ("serve", &e.serve, &a.serve),
        ] {
            if ed != ad {
                diffs.push(format!(
                    "case {} stage {stage}: digest {ed} vs {ad}",
                    e.name
                ));
            }
        }
    }
    diffs
}

/// Serialize a defense snapshot to canonical golden JSON (pretty, with a
/// trailing newline).
pub fn to_defense_golden_json(snapshot: &DefenseSnapshot) -> Result<String, String> {
    serde_json::to_string_pretty(snapshot)
        .map(|s| s + "\n")
        .map_err(|e| format!("serialize defense snapshot: {e:?}"))
}

/// Parse a defense-schedule golden JSON file's contents.
pub fn from_defense_golden_json(contents: &str) -> Result<DefenseSnapshot, String> {
    serde_json::from_str(contents).map_err(|e| format!("parse defense snapshot: {e:?}"))
}

/// `DIR/defense_seed_S.json`.
pub fn defense_golden_path(dir: &std::path::Path, seed: u64) -> std::path::PathBuf {
    dir.join(format!("defense_seed_{seed}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_through_golden_json() {
        let snap = run_replay(&ReplayOptions::for_seed(7)).expect("replay");
        let json = to_golden_json(&snap).expect("serialize");
        let back = from_golden_json(&json).expect("parse");
        assert_eq!(snap, back);
        assert!(compare_snapshots(&snap, &back).is_empty());
    }

    #[test]
    fn replay_has_signal_in_every_stage() {
        let snap = run_replay(&ReplayOptions::for_seed(1)).expect("replay");
        assert!(snap.users > 0 && snap.days > 0 && snap.hosts > 0);
        assert!(!snap.profiles.is_empty(), "no user got a final profile");
        assert!(snap.ctr.iter().any(|c| c.orig_impressions > 0));
    }

    #[test]
    fn different_seeds_change_every_stage_digest() {
        let a = run_replay(&ReplayOptions::for_seed(1)).expect("replay");
        let b = run_replay(&ReplayOptions::for_seed(2)).expect("replay");
        assert_ne!(a.stages.trace, b.stages.trace);
        assert_ne!(a.stages.observed, b.stages.observed);
        assert_ne!(a.stages.sessions, b.stages.sessions);
        assert_ne!(a.stages.model, b.stages.model);
    }

    #[test]
    fn streaming_profile_path_matches_batch_bit_for_bit() {
        let opts = ReplayOptions::for_seed(1);
        let batch = run_replay(&opts).expect("replay");
        for lanes in [1usize, 4] {
            let streamed =
                run_replay_with(&opts, ProfilePath::Streaming { lanes }).expect("replay");
            assert_eq!(
                batch.stages.profiles, streamed.stages.profiles,
                "lanes {lanes}: streaming profile digest diverged"
            );
            assert_eq!(batch.profiles, streamed.profiles, "lanes {lanes}");
            assert!(compare_snapshots(&batch, &streamed).is_empty());
        }
    }

    #[test]
    fn update_schedule_has_signal_and_roundtrips() {
        let snap = run_update_replay(&ReplayOptions::for_seed(1), 1).expect("update replay");
        assert!(snap.base_vocab > 0);
        assert!(
            snap.appended_tokens > 0,
            "day 1 must surface unseen hostnames for the growth path to be exercised"
        );
        assert_eq!(
            snap.grown_vocab,
            snap.base_vocab + snap.appended_tokens,
            "growth appends, never reorders"
        );
        assert!(snap.table_rebuilt, "growth forces a table rebuild");
        assert!(snap.ticks_pre > 0 && snap.ticks_post > 0);
        assert!(!snap.profiles.is_empty(), "post-swap serving went dark");
        assert_ne!(
            snap.stages.base_model, snap.stages.grown_model,
            "the update must actually move weights"
        );
        let json = to_update_golden_json(&snap).expect("serialize");
        let back = from_update_golden_json(&json).expect("parse");
        assert_eq!(snap, back);
        assert!(compare_update_snapshots(&snap, &back).is_empty());
    }

    #[test]
    fn update_schedule_is_lane_and_thread_invariant() {
        let base = run_update_replay(&ReplayOptions::for_seed(2), 1).expect("update replay");
        let mut threaded = ReplayOptions::for_seed(2);
        threaded.profile_threads = 4;
        for (opts, lanes) in [
            (ReplayOptions::for_seed(2), 4),
            (threaded.clone(), 1),
            (threaded, 4),
        ] {
            let other = run_update_replay(&opts, lanes).expect("update replay");
            assert!(
                compare_update_snapshots(&base, &other).is_empty(),
                "lanes {lanes} threads {}: {:?}",
                opts.profile_threads,
                compare_update_snapshots(&base, &other)
            );
        }
    }

    #[test]
    fn defense_schedule_has_signal_and_roundtrips() {
        let snap = run_defense_replay(&ReplayOptions::for_seed(1), 1).expect("defense replay");
        assert_eq!(snap.cases.len(), 8, "fixed schedule: baseline + 7 defended");
        assert_eq!(snap.cases[0].name, "baseline");
        assert_eq!(snap.cases[1].name, "identity_ech0");
        // The in-run invariant already asserts identity == baseline; pin
        // it here too so golden diffs name the case.
        assert_eq!(snap.cases[0].observed, snap.cases[1].observed);
        assert_eq!(snap.cases[0].serve, snap.cases[1].serve);
        // Every non-identity defense must actually move the observations.
        for case in &snap.cases[2..] {
            assert_ne!(
                case.observed, snap.cases[0].observed,
                "case {} left the observed stage untouched",
                case.name
            );
        }
        assert!(snap.cases.iter().all(|c| c.observations > 0));
        let json = to_defense_golden_json(&snap).expect("serialize");
        let back = from_defense_golden_json(&json).expect("parse");
        assert_eq!(snap, back);
        assert!(compare_defense_snapshots(&snap, &back).is_empty());
    }

    #[test]
    fn defense_schedule_is_lane_and_thread_invariant() {
        let base = run_defense_replay(&ReplayOptions::for_seed(2), 1).expect("defense replay");
        let mut threaded = ReplayOptions::for_seed(2);
        threaded.profile_threads = 4;
        for (opts, lanes) in [
            (ReplayOptions::for_seed(2), 4),
            (threaded.clone(), 1),
            (threaded, 4),
        ] {
            let other = run_defense_replay(&opts, lanes).expect("defense replay");
            assert!(
                compare_defense_snapshots(&base, &other).is_empty(),
                "lanes {lanes} threads {}: {:?}",
                opts.profile_threads,
                compare_defense_snapshots(&base, &other)
            );
        }
    }

    #[test]
    fn perturbation_is_attributed_to_the_model_stage() {
        let clean = run_replay(&ReplayOptions::for_seed(1)).expect("replay");
        let mut opts = ReplayOptions::for_seed(1);
        opts.perturb_embedding = Some((5, 1e-3));
        let bad = run_replay(&opts).expect("replay");
        let diffs = compare_snapshots(&clean, &bad);
        assert!(!diffs.is_empty());
        // Upstream of the model: identical. The model stage itself: the
        // first reported diff.
        assert!(diffs[0].starts_with("stage model:"), "{diffs:?}");
        assert_eq!(clean.stages.trace, bad.stages.trace);
        assert_eq!(clean.stages.sessions, bad.stages.sessions);
    }
}
