//! Schema validation for the committed benchmark artifacts under
//! `results/`. The bench binaries serialize these by hand-rolled struct;
//! this test pins the contract so a field rename or unit change in the
//! bench code can't silently rot the committed numbers (or the plots
//! and README claims derived from them).

use serde::Deserialize;

/// One entry of the append-only `generations` provenance array every
/// `bench_*.json` carries (written by `write_results_stamped`).
#[derive(Deserialize)]
struct Generation {
    seq: u64,
    unix_time_s: u64,
    headline: String,
}

/// The generations contract: 1-based, strictly sequential, stamped and
/// described. Append-only-ness across regenerations is pinned by
/// `hostprof-bench`'s `restamping_appends_and_never_rewrites_history`
/// unit test; here we pin what the committed artifacts must carry.
fn check_generations(gens: &[Generation]) {
    assert!(!gens.is_empty(), "missing generations provenance");
    for (i, g) in gens.iter().enumerate() {
        assert_eq!(
            g.seq,
            i as u64 + 1,
            "generation seq must be 1-based and dense"
        );
        assert!(g.unix_time_s > 0, "generation timestamp missing");
        assert!(!g.headline.is_empty(), "generation headline missing");
    }
    for w in gens.windows(2) {
        assert!(
            w[1].unix_time_s >= w[0].unix_time_s,
            "generation timestamps must not go backwards"
        );
    }
}

#[derive(Deserialize)]
struct ProfilingBench {
    scale: String,
    hardware_threads: usize,
    sessions: usize,
    vocabulary: usize,
    dim: usize,
    n_neighbors: usize,
    seed_loop_sessions_per_sec: f64,
    single_query_sessions_per_sec: f64,
    throughput: Vec<ProfilingRow>,
    best_speedup_at_4_threads: f64,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct ProfilingRow {
    threads: usize,
    batch_size: usize,
    sessions_per_sec: f64,
    speedup_vs_seed: f64,
}

#[derive(Deserialize)]
struct SkipgramBench {
    scale: String,
    hardware_threads: usize,
    // Presence and type are the contract; the value is machine-dependent.
    #[allow(dead_code)]
    avx2_fma: bool,
    sequences: usize,
    tokens: usize,
    dim: usize,
    throughput: Vec<SkipgramRow>,
    single_thread_kernel_speedup: f64,
    sharding: ShardingBench,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct SkipgramRow {
    threads: usize,
    kernel: String,
    tokens_per_sec: f64,
    speedup_vs_scalar_1t: f64,
}

#[derive(Deserialize)]
struct ShardingBench {
    skewed_sequences: usize,
    skewed_tokens: usize,
    threads: usize,
    static_makespan_tokens: u64,
    balanced_makespan_tokens: u64,
    simulated_balance_ratio: f64,
    measured_static_tokens_per_sec: f64,
    measured_balanced_tokens_per_sec: f64,
}

#[derive(Deserialize)]
struct KnnBench {
    scale: String,
    rows: usize,
    dim: usize,
    k: usize,
    nlists: usize,
    queries: usize,
    build_seconds: f64,
    recall_target: f64,
    speedup_target: f64,
    target_met: bool,
    exact: KnnLatency,
    sweep: Vec<KnnSweepRow>,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct KnnLatency {
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
    queries_per_sec: f64,
}

#[derive(Deserialize)]
struct KnnSweepRow {
    nprobe: usize,
    recall_at_k: f64,
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
    queries_per_sec: f64,
    speedup_vs_exact: f64,
}

#[derive(Deserialize)]
struct ServingBench {
    scale: String,
    users: usize,
    lanes: usize,
    profiler_threads: usize,
    target_pps: f64,
    sim_duration_s: u64,
    mean_gap_ms: u64,
    packets: u64,
    observations: u64,
    ticks: u64,
    reports: u64,
    sessions_profiled: u64,
    profiles_emitted: u64,
    late_dropped: u64,
    peak_resident_events: usize,
    interned_hosts: usize,
    interned_table_bytes: usize,
    sustained_pps: f64,
    ingest_seconds: f64,
    wall_seconds: f64,
    report_latency_ms: ServingLatency,
    peak_rss_kb: u64,
    taxonomy_invariant_ok: bool,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct ServingLatency {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    max_ms: f64,
}

fn read(name: &str) -> String {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn bench_profiling_json_matches_schema() {
    let b: ProfilingBench =
        serde_json::from_str(&read("bench_profiling.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.hardware_threads >= 1);
    assert!(b.sessions > 0 && b.vocabulary > 0 && b.dim > 0 && b.n_neighbors > 0);
    assert!(b.seed_loop_sessions_per_sec > 0.0);
    assert!(b.single_query_sessions_per_sec > 0.0);
    assert!(!b.throughput.is_empty());
    for row in &b.throughput {
        assert!(row.threads >= 1);
        assert!(row.batch_size >= 1);
        assert!(row.sessions_per_sec > 0.0, "non-positive throughput");
        assert!(row.speedup_vs_seed > 0.0);
    }
    assert!(b.best_speedup_at_4_threads > 0.0);
    // The headline number must actually come from the 4-thread rows.
    let best4 = b
        .throughput
        .iter()
        .filter(|r| r.threads == 4)
        .map(|r| r.speedup_vs_seed)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (b.best_speedup_at_4_threads - best4).abs() < 1e-9,
        "best_speedup_at_4_threads {} != max over 4-thread rows {best4}",
        b.best_speedup_at_4_threads
    );
    check_generations(&b.generations);
}

#[test]
fn bench_knn_json_matches_schema() {
    let b: KnnBench = serde_json::from_str(&read("bench_knn.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.rows > 0 && b.dim > 0 && b.k > 0 && b.nlists > 0 && b.queries > 0);
    assert!(b.build_seconds > 0.0);
    assert!(b.recall_target > 0.0 && b.recall_target <= 1.0);
    assert!(b.speedup_target >= 1.0);
    let e = &b.exact;
    assert!(e.p50_ms > 0.0 && e.p95_ms > 0.0 && e.mean_ms > 0.0);
    assert!(e.p50_ms <= e.p95_ms, "p50 must not exceed p95");
    assert!(e.queries_per_sec > 0.0);
    assert!(!b.sweep.is_empty());
    let mut met = false;
    for (i, r) in b.sweep.iter().enumerate() {
        assert!(r.nprobe >= 1 && r.nprobe <= b.nlists);
        if i > 0 {
            assert!(r.nprobe > b.sweep[i - 1].nprobe, "sweep must ascend");
        }
        assert!((0.0..=1.0).contains(&r.recall_at_k), "recall out of range");
        assert!(r.p50_ms > 0.0 && r.p95_ms > 0.0 && r.mean_ms > 0.0);
        assert!(r.p50_ms <= r.p95_ms);
        assert!(r.queries_per_sec > 0.0 && r.speedup_vs_exact > 0.0);
        met |= r.recall_at_k >= b.recall_target && r.speedup_vs_exact >= b.speedup_target;
    }
    assert_eq!(b.target_met, met, "target_met must match the sweep rows");
    // The sweep always ends exhaustive, where IVF is bit-identical to the
    // exact scan — recall below 1.0 there means the index is broken.
    let last = b.sweep.last().unwrap();
    assert_eq!(last.nprobe, b.nlists, "sweep must end at nprobe == nlists");
    assert!(
        (last.recall_at_k - 1.0).abs() < 1e-12,
        "exhaustive probing must have recall 1.0, got {}",
        last.recall_at_k
    );
    // The committed artifact is the paper-scale run and must back the
    // README's headline claim: >= 0.95 recall@1000 at >= 10x throughput
    // on a million-hostname vocabulary.
    if b.scale == "default" {
        assert!(b.rows >= 1_000_000, "default scale is the 1M-row ablation");
        assert!(
            b.target_met,
            "committed default-scale run must meet the recall/speedup target"
        );
    }
    check_generations(&b.generations);
}

#[test]
fn bench_serving_json_matches_schema() {
    let b: ServingBench =
        serde_json::from_str(&read("bench_serving.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.users > 0 && b.lanes >= 1 && b.profiler_threads >= 1);
    assert!(b.target_pps > 0.0 && b.sim_duration_s > 0);
    assert!(b.mean_gap_ms >= 2, "calibration hit the clamp floor");
    assert!(b.packets > 0);
    assert!(
        b.observations > 0 && b.observations <= b.packets,
        "at most one observation per packet"
    );
    assert!(b.ticks > 0);
    assert!(
        b.reports <= b.ticks,
        "reports are the subset of ticks that profiled someone"
    );
    assert!(b.sessions_profiled > 0);
    assert!(
        b.profiles_emitted <= b.sessions_profiled,
        "a session profiles at most once per tick"
    );
    // The generator delivers in order; an in-order stream can never
    // outrun the watermark.
    assert_eq!(b.late_dropped, 0, "in-order ingest late-dropped events");
    assert!(b.peak_resident_events > 0);
    assert!(b.sustained_pps > 0.0);
    assert!(b.ingest_seconds > 0.0 && b.ingest_seconds <= b.wall_seconds);
    let l = &b.report_latency_ms;
    assert!(l.p50_ms > 0.0 && l.mean_ms > 0.0);
    assert!(l.p50_ms <= l.p95_ms && l.p95_ms <= l.p99_ms && l.p99_ms <= l.max_ms);
    assert!(b.peak_rss_kb > 0, "VmHWM must be readable where this runs");
    assert!(b.taxonomy_invariant_ok, "merged lane taxonomy broke");
    assert!(b.interned_hosts > 0, "windower interned nothing");
    assert!(b.interned_table_bytes > 0);
    check_generations(&b.generations);
}

#[test]
fn bench_skipgram_json_matches_schema() {
    let b: SkipgramBench =
        serde_json::from_str(&read("bench_skipgram.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.hardware_threads >= 1);
    assert!(b.sequences > 0 && b.tokens > 0 && b.dim > 0);
    assert!(!b.throughput.is_empty());
    for row in &b.throughput {
        assert!(row.threads >= 1);
        assert!(
            row.kernel == "scalar" || row.kernel == "simd",
            "unknown kernel {:?}",
            row.kernel
        );
        assert!(row.tokens_per_sec > 0.0);
        assert!(row.speedup_vs_scalar_1t > 0.0);
    }
    // The scalar 1-thread row is the speedup baseline by definition.
    let baseline = b
        .throughput
        .iter()
        .find(|r| r.threads == 1 && r.kernel == "scalar")
        .expect("scalar 1-thread baseline row missing");
    assert!((baseline.speedup_vs_scalar_1t - 1.0).abs() < 1e-9);
    assert!(b.single_thread_kernel_speedup > 0.0);

    let s = &b.sharding;
    assert!(s.skewed_sequences > 0 && s.skewed_tokens > 0 && s.threads >= 1);
    assert!(s.static_makespan_tokens > 0 && s.balanced_makespan_tokens > 0);
    assert!(
        s.balanced_makespan_tokens <= s.static_makespan_tokens,
        "balanced sharding must not worsen the simulated makespan"
    );
    assert!(s.simulated_balance_ratio >= 1.0);
    assert!(s.measured_static_tokens_per_sec > 0.0);
    assert!(s.measured_balanced_tokens_per_sec > 0.0);
    check_generations(&b.generations);
}

#[derive(Deserialize)]
struct UpdateBench {
    scale: String,
    rounds: usize,
    base_sessions: usize,
    dim: usize,
    base_vocab: usize,
    final_vocab: usize,
    appended_tokens_total: usize,
    per_round: Vec<UpdateRoundRow>,
    mean_incremental_speedup: f64,
    publish_latency_ms: UpdatePublishLatency,
    reader_stall: UpdateReaderStall,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct UpdateRoundRow {
    round: usize,
    batch_sessions: usize,
    appended_tokens: usize,
    table_rebuilt: bool,
    update_seconds: f64,
    update_tokens_per_sec: f64,
    from_scratch_seconds: f64,
    from_scratch_tokens_per_sec: f64,
    speedup: f64,
}

#[derive(Deserialize)]
struct UpdatePublishLatency {
    p50_ms: f64,
    p95_ms: f64,
    max_ms: f64,
}

#[derive(Deserialize)]
struct UpdateReaderStall {
    loads: u64,
    max_load_us: f64,
    mean_load_us: f64,
}

#[test]
fn bench_update_json_matches_schema() {
    let b: UpdateBench = serde_json::from_str(&read("bench_update.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.rounds >= 1 && b.base_sessions > 0 && b.dim > 0);
    assert!(b.base_vocab > 0);
    assert_eq!(
        b.final_vocab,
        b.base_vocab + b.appended_tokens_total,
        "vocabulary growth must be exactly the appended tokens (id stability)"
    );
    assert_eq!(b.per_round.len(), b.rounds, "one row per round");
    let mut appended_sum = 0usize;
    for (i, r) in b.per_round.iter().enumerate() {
        assert_eq!(r.round, i + 1, "rounds are 1-based and dense");
        assert!(r.batch_sessions > 0);
        appended_sum += r.appended_tokens;
        assert!(r.update_seconds > 0.0 && r.from_scratch_seconds > 0.0);
        assert!(r.update_tokens_per_sec > 0.0);
        assert!(r.from_scratch_tokens_per_sec > 0.0);
        assert!(r.speedup > 0.0);
    }
    assert_eq!(appended_sum, b.appended_tokens_total);
    // The first update after a from-scratch train always rebuilds the
    // negative table (it starts lazily unbuilt — DESIGN.md §14).
    assert!(
        b.per_round[0].table_rebuilt,
        "round 1 must rebuild the negative table"
    );
    assert!(b.mean_incremental_speedup > 0.0);
    // The point of the incremental path: updating must beat retraining
    // on wall clock in the committed artifact.
    assert!(
        b.mean_incremental_speedup > 1.0,
        "incremental update slower than from-scratch retrain ({}x)",
        b.mean_incremental_speedup
    );
    let p = &b.publish_latency_ms;
    assert!(p.p50_ms > 0.0 && p.p95_ms > 0.0 && p.max_ms > 0.0);
    assert!(p.p50_ms <= p.p95_ms && p.p95_ms <= p.max_ms);
    let s = &b.reader_stall;
    assert!(s.loads > 0, "the reader thread never sampled a load");
    assert!(s.mean_load_us >= 0.0 && s.max_load_us >= s.mean_load_us);
    // The wait-free contract: a version swap may never block a reader.
    // One `load` is a single Acquire pointer read; a millisecond-scale
    // pause would mean a lock crept into the serve-tick read path.
    assert!(
        s.max_load_us < 1_000.0,
        "reader-visible stall {} us breaks the wait-free read contract",
        s.max_load_us
    );
    check_generations(&b.generations);
}

#[derive(Deserialize)]
struct DefenseBench {
    scale: String,
    smoke: bool,
    users: usize,
    days: u32,
    plan_seed: u64,
    with_ctr: bool,
    peak_rss_kb: u64,
    rss_gate_mb: Option<u64>,
    rss_gate_ok: bool,
    curves: Vec<DefenseCurveRow>,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct DefenseCurveRow {
    defense: String,
    points: Vec<DefensePointRow>,
}

#[derive(Deserialize)]
struct DefensePointRow {
    intensity: f64,
    recovery_pct: f64,
    purity: f64,
    divergence: f64,
    mean_accuracy: f64,
    sessions_profiled: usize,
    eaves_ctr: f64,
    orig_ctr: f64,
    ctr_gap: f64,
    identity_bit_equal: Option<bool>,
}

/// Deterministic flow-collision jitter: extra cover flows shift the
/// synthesizer's ephemeral-port stream, occasionally colliding two real
/// flows into one observation. Recovery can therefore dip ~0.01 pp at a
/// *milder* intensity than a harsher one; anything beyond this epsilon
/// is a real monotonicity break.
const RECOVERY_EPSILON_PP: f64 = 0.05;

#[test]
fn bench_defense_json_matches_schema() {
    let b: DefenseBench =
        serde_json::from_str(&read("bench_defense.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    // The committed artifact is a real run, not the CI smoke tier.
    assert!(!b.smoke, "committed bench_defense must not be a smoke run");
    assert!(b.users > 0);
    assert!(b.days >= 3, "needs training days plus paired ad days");
    assert!(b.plan_seed > 0, "seeded run must record its plan seed");
    assert!(
        b.with_ctr,
        "committed curves must include the CTR experiment"
    );

    // The acceptance floor: at least 4 defenses, each swept over at
    // least 5 intensities (identity point first).
    assert!(
        b.curves.len() >= 4,
        "only {} defense curves committed",
        b.curves.len()
    );
    let known = ["ech", "dummy", "pad_constant", "pad_adaptive", "nat", "doh"];
    let mut seen: Vec<&str> = Vec::new();
    for c in &b.curves {
        assert!(
            known.contains(&c.defense.as_str()),
            "unknown defense {:?}",
            c.defense
        );
        assert!(
            !seen.contains(&c.defense.as_str()),
            "duplicate curve for {:?}",
            c.defense
        );
        seen.push(&c.defense);
        assert!(
            c.points.len() >= 5,
            "{}: only {} sweep points",
            c.defense,
            c.points.len()
        );

        // Identity point: first in the sweep, flagged, and bit-equal to
        // the undefended pipeline (the invariant the golden replays and
        // oracle proptests pin — here we pin that the committed numbers
        // actually carry it).
        let id = &c.points[0];
        assert_eq!(
            id.identity_bit_equal,
            Some(true),
            "{}: identity point diverged from the undefended baseline",
            c.defense
        );
        // The undefended baseline itself sits a hair under 100 %
        // (deterministic ephemeral-port collisions merge a few real
        // flows); the identity point must match it, not beat it.
        assert!(
            id.recovery_pct > 99.9,
            "{}: identity recovery {}",
            c.defense,
            id.recovery_pct
        );
        assert!(
            id.divergence < 1e-6,
            "{}: identity profile divergence {}",
            c.defense,
            id.divergence
        );
        assert!(
            id.sessions_profiled > 0,
            "{}: identity profiled nobody",
            c.defense
        );

        for (i, p) in c.points.iter().enumerate() {
            if i > 0 {
                assert!(
                    p.intensity > c.points[i - 1].intensity,
                    "{}: sweep must ascend",
                    c.defense
                );
                assert!(
                    p.identity_bit_equal.is_none(),
                    "{}: non-identity point {} carries an identity flag",
                    c.defense,
                    p.intensity
                );
                // The degradation contract: turning a defense up never
                // helps the eavesdropper recover more of the wire.
                assert!(
                    p.recovery_pct <= c.points[i - 1].recovery_pct + RECOVERY_EPSILON_PP,
                    "{}: recovery rose {} -> {} at intensity {}",
                    c.defense,
                    c.points[i - 1].recovery_pct,
                    p.recovery_pct,
                    p.intensity
                );
            }
            assert!(
                (0.0..=100.0).contains(&p.recovery_pct),
                "{}: recovery {} out of range",
                c.defense,
                p.recovery_pct
            );
            assert!((0.0..=1.0).contains(&p.purity));
            // 1 − cosine over non-negative Eq. 3/4 profiles.
            assert!((0.0..=1.0 + 1e-9).contains(&p.divergence));
            assert!((0.0..=1.0).contains(&p.mean_accuracy));
            assert!(
                (p.ctr_gap - (p.eaves_ctr - p.orig_ctr)).abs() < 1e-12,
                "{}: ctr_gap is not eaves − orig",
                c.defense
            );
        }
    }
    assert!(b.peak_rss_kb > 0, "VmHWM must be readable where this runs");
    if let Some(mb) = b.rss_gate_mb {
        assert_eq!(b.rss_gate_ok, b.peak_rss_kb <= mb * 1024);
    }
    assert!(b.rss_gate_ok, "committed run breached its own RSS gate");
    check_generations(&b.generations);
}

#[derive(Deserialize)]
struct LargeBench {
    scale: String,
    smoke: bool,
    users: usize,
    hosts: usize,
    days: u32,
    hardware_threads: usize,
    generation: LargeGenerationPhase,
    train: LargeTrainPhase,
    profile: LargeProfilePhase,
    sessions_per_sec: f64,
    peak_rss_kb: u64,
    rss_gate_mb: Option<u64>,
    rss_gate_ok: bool,
    generations: Vec<Generation>,
}

#[derive(Deserialize)]
struct LargeGenerationPhase {
    seconds: f64,
    events: usize,
    events_per_sec: f64,
    columnar_bytes: usize,
    bytes_per_event: f64,
    interned_hosts: usize,
    interned_table_bytes: usize,
}

#[derive(Deserialize)]
struct LargeTrainPhase {
    day: u32,
    sequences: usize,
    tokens: usize,
    vocabulary: usize,
    dim: usize,
    seconds: f64,
    tokens_per_sec: f64,
}

#[derive(Deserialize)]
struct LargeProfilePhase {
    day: u32,
    sessions: usize,
    profiles_emitted: usize,
    index: String,
    n_neighbors: usize,
    curve: Vec<LargeCurvePoint>,
    thread_curve_gated: bool,
    skipped_thread_counts: Vec<usize>,
}

#[derive(Deserialize)]
struct LargeCurvePoint {
    threads: usize,
    seconds: f64,
    sessions_per_sec: f64,
    speedup_vs_1t: f64,
}

#[test]
fn bench_large_json_matches_schema() {
    let b: LargeBench = serde_json::from_str(&read("bench_large.json")).expect("schema drifted");
    assert_eq!(b.scale, "large");
    // The committed artifact is the real million-user run, not a smoke.
    assert!(!b.smoke, "committed bench_large must be the full tier");
    assert!(b.users >= 1_000_000, "large tier is the 10^6-user world");
    assert!(
        b.hosts >= 100_000,
        "large tier is the 10^5-vocabulary world"
    );
    assert!(b.days >= 2, "needs a train day and a profile day");
    assert!(b.hardware_threads >= 1);

    let g = &b.generation;
    assert!(g.seconds > 0.0 && g.events > 0 && g.events_per_sec > 0.0);
    assert!(g.columnar_bytes > 0);
    // The memory story: the SoA layout is 12 B/event plus the interner;
    // anything above ~2x that means the columnar path regressed into
    // materializing strings again.
    assert!(
        g.bytes_per_event >= 12.0 && g.bytes_per_event < 24.0,
        "bytes/event {} outside the SoA envelope",
        g.bytes_per_event
    );
    assert!(g.interned_hosts > 0 && g.interned_hosts <= b.hosts);
    assert!(g.interned_table_bytes > 0);

    let t = &b.train;
    assert!(t.day == 0, "training day is day 0");
    assert!(t.sequences > 0 && t.tokens > 0 && t.vocabulary > 0 && t.dim > 0);
    assert!(t.seconds > 0.0 && t.tokens_per_sec > 0.0);
    assert!(
        t.vocabulary <= g.interned_hosts,
        "vocab cannot exceed hosts seen"
    );

    let p = &b.profile;
    assert!(p.day == 1, "profiling day is day 1");
    assert!(p.sessions > 0);
    assert!(p.profiles_emitted > 0 && p.profiles_emitted <= p.sessions);
    assert!(
        p.index == "exact" || p.index == "ivf",
        "unknown index {:?}",
        p.index
    );
    assert!(p.n_neighbors > 0);
    assert!(
        !p.curve.is_empty(),
        "thread curve must have at least the 1-thread point"
    );
    assert_eq!(p.curve[0].threads, 1, "curve starts at one thread");
    assert!((p.curve[0].speedup_vs_1t - 1.0).abs() < 1e-9);
    for (i, c) in p.curve.iter().enumerate() {
        assert!(
            c.threads >= 1 && c.threads <= b.hardware_threads,
            "curve point ran more threads than the hardware has"
        );
        if i > 0 {
            assert!(c.threads > p.curve[i - 1].threads, "curve must ascend");
        }
        assert!(c.seconds > 0.0 && c.sessions_per_sec > 0.0 && c.speedup_vs_1t > 0.0);
    }
    // Honest multicore curves: every requested-but-impossible thread
    // count is declared, never silently faked.
    for &skipped in &p.skipped_thread_counts {
        assert!(
            skipped > b.hardware_threads,
            "skipped a runnable thread count"
        );
    }
    assert_eq!(
        p.thread_curve_gated,
        !p.skipped_thread_counts.is_empty(),
        "gating flag must match the skipped list"
    );

    let best = p
        .curve
        .iter()
        .map(|c| c.sessions_per_sec)
        .fold(0.0f64, f64::max);
    assert!(
        (b.sessions_per_sec - best).abs() < 1e-9,
        "headline must be the best curve point"
    );
    assert!(b.peak_rss_kb > 0, "the committed run must record VmHWM");
    if let Some(mb) = b.rss_gate_mb {
        assert_eq!(b.rss_gate_ok, b.peak_rss_kb <= mb * 1024);
    }
    assert!(b.rss_gate_ok, "committed run breached its own RSS gate");
    check_generations(&b.generations);
}
