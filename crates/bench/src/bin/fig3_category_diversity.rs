//! E2 — Figure 3: user diversity in categories.
//!
//! Same core/CCDF construction as Figure 2 but over the categories users
//! are assigned (profiles are ultimately computed from categories, so
//! profile heterogeneity must be judged there). Paper reference points:
//! category cores 80/60/40/20 have sizes 47/80/124/177; *all* users share
//! 14 categories; 50 % of users share 113; 1.5 %/5.2 %/11.1 %/23.2 % of
//! users have no category outside cores 80/60/40/20.

use hostprof::scenario::Scenario;
use hostprof_bench::{header, row, write_results, Scale};
use hostprof_core::{core_items, counts_outside_core};
use hostprof_stats::Ccdf;
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
struct CoreRow {
    fraction: f64,
    core_size: usize,
    users_with_zero_outside_pct: f64,
    p75_at_least: f64,
}

#[derive(Serialize)]
struct Fig3Results {
    scale: String,
    active_users: usize,
    categories_all_users_share: usize,
    categories_half_users_share: usize,
    cores: Vec<CoreRow>,
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());

    // Each user's category set: the union of the ontology labels of the
    // hostnames they visited (what the profiling pipeline can attribute).
    let host_sets = s.trace.user_host_sets();
    let mut cat_sets: Vec<HashSet<u16>> = Vec::new();
    for set in &host_sets {
        if set.is_empty() {
            continue;
        }
        let mut cats = HashSet::new();
        for h in set {
            if let Some(v) = s.world.ontology().lookup(s.world.hostname(*h)) {
                cats.extend(v.ids().map(|c| c.0));
            }
        }
        cat_sets.push(cats);
    }

    header(&format!(
        "Figure 3 — user diversity, categories (scale: {})",
        scale.label()
    ));
    row("active users", cat_sets.len());

    let shared_by_all = core_items(&cat_sets, 1.0).len();
    let shared_by_half = core_items(&cat_sets, 0.5).len();
    row("categories ALL users share", shared_by_all);
    row("categories 50% of users share", shared_by_half);

    let mut cores = Vec::new();
    println!(
        "\n  {:<10} {:>10} {:>22} {:>12}",
        "core", "size", "% users w/ 0 outside", "75% ≥"
    );
    for fraction in [0.8, 0.6, 0.4, 0.2] {
        let core = core_items(&cat_sets, fraction);
        let counts = counts_outside_core(&cat_sets, &core);
        let zero = counts.iter().filter(|&&c| c == 0).count();
        let zero_pct = zero as f64 / counts.len() as f64 * 100.0;
        let ccdf = Ccdf::from_counts(counts);
        let p75 = ccdf.value_at_fraction(0.75).unwrap_or(0.0);
        println!(
            "  Core {:<5} {:>10} {:>21.1}% {:>12}",
            (fraction * 100.0) as u32,
            core.len(),
            zero_pct,
            p75
        );
        cores.push(CoreRow {
            fraction,
            core_size: core.len(),
            users_with_zero_outside_pct: zero_pct,
            p75_at_least: p75,
        });
    }

    println!("\n  paper: cores 80/60/40/20 sized 47/80/124/177; all users share 14 categories,");
    println!("  50% share 113; 1.5/5.2/11.1/23.2% of users have no category outside the cores");
    println!("  shape check: a nonzero shared-by-all core; zero-outside fraction rises as the core grows");

    write_results(
        "fig3_category_diversity",
        &Fig3Results {
            scale: scale.label().to_string(),
            active_users: cat_sets.len(),
            categories_all_users_share: shared_by_all,
            categories_half_users_share: shared_by_half,
            cores,
        },
    );
}
