//! Structure-of-arrays observation storage with per-user offset ranges.
//!
//! Layout: user-major. All of user 0's observations (ascending in time),
//! then user 1's, and so on; `user_starts` is the CSR offset table
//! (`user_starts[u]..user_starts[u + 1]` is user `u`'s range). Within a
//! range, three parallel columns:
//!
//! | column       | type  | meaning                                   |
//! |--------------|-------|-------------------------------------------|
//! | `t_ms`       | `u32` | milliseconds since experiment start       |
//! | `host`       | `u32` | interned hostname id                      |
//! | `wire_bytes` | `u32` | first-flight wire bytes of the request    |
//!
//! One observation costs 12 bytes flat, no per-event allocation. The
//! conceptual user-id column is delta-encoded by the offset table. `u32`
//! timestamps bound the horizon at ~49.7 simulated days — checked at
//! build time; the paper's profiling phase is one month.

use crate::access::TraceAccess;
use crate::flat::{FlatError, FlatReader, FlatWriter};
use crate::intern::HostInterner;

/// Section tags of the flat encoding.
mod tag {
    pub const META: u32 = 0x4d45_5441; // "META": [num_users, days, num_events]
    pub const USER_STARTS: u32 = 0x5553_5452; // "USTR"
    pub const T_MS: u32 = 0x544d_5330; // "TMS0"
    pub const HOST: u32 = 0x484f_5354; // "HOST"
    pub const WIRE: u32 = 0x5749_5245; // "WIRE"
    pub const NAMES: u32 = 0x4e41_4d45; // "NAME": interner arena
    pub const NAME_OFFS: u32 = 0x4e4f_4646; // "NOFF": interner offsets
}

/// The columnar trace store. Build with [`TraceColumnsBuilder`].
#[derive(Debug, Clone)]
pub struct TraceColumns {
    /// CSR offsets, length `num_users + 1`.
    user_starts: Vec<u64>,
    /// Timestamp column, ms since experiment start.
    t_ms: Vec<u32>,
    /// Interned host-id column.
    host: Vec<u32>,
    /// First-flight wire bytes per observation.
    wire_bytes: Vec<u32>,
    /// The hostname table the `host` column indexes into.
    interner: HostInterner,
    /// Simulated days.
    days: u32,
}

impl TraceColumns {
    /// Number of users (indexed population size).
    pub fn num_users(&self) -> usize {
        self.user_starts.len() - 1
    }

    /// Total observations.
    pub fn num_events(&self) -> usize {
        self.t_ms.len()
    }

    /// Simulated days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// The hostname table.
    pub fn interner(&self) -> &HostInterner {
        &self.interner
    }

    /// A user's observation range in the columns.
    #[inline]
    pub fn user_range(&self, user: u32) -> std::ops::Range<usize> {
        let u = user as usize;
        self.user_starts[u] as usize..self.user_starts[u + 1] as usize
    }

    /// A user's timestamps, ascending.
    pub fn user_times(&self, user: u32) -> &[u32] {
        &self.t_ms[self.user_range(user)]
    }

    /// A user's host ids, time order.
    pub fn user_hosts(&self, user: u32) -> &[u32] {
        &self.host[self.user_range(user)]
    }

    /// A user's per-observation wire-byte counts, time order.
    pub fn user_wire_bytes(&self, user: u32) -> &[u32] {
        &self.wire_bytes[self.user_range(user)]
    }

    /// Index range (relative to the user's range) of `[start, end)`.
    fn span_idx(times: &[u32], start_ms: u64, end_ms: u64) -> (usize, usize) {
        let lo = times.partition_point(|&t| (t as u64) < start_ms);
        let hi = times.partition_point(|&t| (t as u64) < end_ms);
        (lo, hi)
    }

    /// Total wire bytes across every observation (the volume an on-path
    /// observer must keep up with).
    pub fn total_wire_bytes(&self) -> u64 {
        self.wire_bytes.iter().map(|&b| b as u64).sum()
    }

    /// Per-user day sequences for one day: `(user, host ids)` for every
    /// user active in `[day·DAY, (day+1)·DAY)` — the SKIPGRAM training
    /// corpus, columnar edition.
    pub fn daily_sequences(&self, day: u32, day_ms: u64) -> Vec<(u32, Vec<u32>)> {
        let start = day as u64 * day_ms;
        let end = start + day_ms;
        let mut out = Vec::new();
        for user in 0..self.num_users() as u32 {
            let times = self.user_times(user);
            let (lo, hi) = Self::span_idx(times, start, end);
            if lo < hi {
                let base = self.user_range(user).start;
                out.push((user, self.host[base + lo..base + hi].to_vec()));
            }
        }
        out
    }

    /// Heap footprint of the columns plus the interner, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.user_starts.capacity() * 8
            + self.t_ms.capacity() * 4
            + self.host.capacity() * 4
            + self.wire_bytes.capacity() * 4
            + self.interner.heap_bytes()
    }

    /// Serialize to the flat container layout (DESIGN.md §13).
    pub fn to_flat_bytes(&self) -> Vec<u8> {
        let mut names = String::new();
        let mut name_offs: Vec<u32> = Vec::with_capacity(self.interner.len() + 1);
        name_offs.push(0);
        for name in self.interner.iter() {
            names.push_str(name);
            name_offs.push(names.len() as u32);
        }
        let mut w = FlatWriter::new();
        w.section_u64s(
            tag::META,
            &[
                self.num_users() as u64,
                self.days as u64,
                self.num_events() as u64,
            ],
        )
        .section_u64s(tag::USER_STARTS, &self.user_starts)
        .section_u32s(tag::T_MS, &self.t_ms)
        .section_u32s(tag::HOST, &self.host)
        .section_u32s(tag::WIRE, &self.wire_bytes)
        .section_str(tag::NAMES, &names)
        .section_u32s(tag::NAME_OFFS, &name_offs);
        w.finish()
    }

    /// Deserialize from [`Self::to_flat_bytes`] output. Round-trips
    /// bit-identically (ids, order and name spellings all preserved).
    pub fn from_flat_bytes(buf: &[u8]) -> Result<Self, FlatError> {
        let r = FlatReader::new(buf)?;
        let meta = r.u64s(tag::META)?;
        if meta.len() != 3 {
            return Err(FlatError::BadSectionLen {
                tag: tag::META,
                len: meta.len(),
                elem: 3,
            });
        }
        let user_starts = r.u64s(tag::USER_STARTS)?;
        let t_ms = r.u32s(tag::T_MS)?;
        let host = r.u32s(tag::HOST)?;
        let wire_bytes = r.u32s(tag::WIRE)?;
        let names = r.str(tag::NAMES)?;
        let name_offs = r.u32s(tag::NAME_OFFS)?;
        if user_starts.len() != meta[0] as usize + 1
            || t_ms.len() != meta[2] as usize
            || host.len() != t_ms.len()
            || wire_bytes.len() != t_ms.len()
        {
            return Err(FlatError::Truncated);
        }
        let mut interner = HostInterner::new();
        for w in name_offs.windows(2) {
            interner.intern(&names[w[0] as usize..w[1] as usize]);
        }
        Ok(Self {
            user_starts,
            t_ms,
            host,
            wire_bytes,
            interner,
            days: meta[1] as u32,
        })
    }
}

impl TraceAccess for TraceColumns {
    fn num_users(&self) -> usize {
        TraceColumns::num_users(self)
    }

    fn num_events(&self) -> usize {
        TraceColumns::num_events(self)
    }

    fn days(&self) -> u32 {
        TraceColumns::days(self)
    }

    fn host_name(&self, host: u32) -> &str {
        self.interner.name(host)
    }

    fn window_hosts(&self, user: u32, end_ms: u64, duration_ms: u64, out: &mut Vec<u32>) {
        let times = self.user_times(user);
        // Mirror `Trace::window` exactly: half-open (end − dur, end], with
        // the epoch-touching special cases keeping t = 0.
        let lo = match end_ms.checked_sub(duration_ms) {
            None => 0,
            Some(0) if duration_ms > 0 => 0,
            Some(start) => times.partition_point(|&t| t as u64 <= start),
        };
        let hi = times.partition_point(|&t| t as u64 <= end_ms);
        let base = self.user_range(user).start;
        out.extend_from_slice(&self.host[base + lo..base + hi]);
    }

    fn span_hosts(&self, user: u32, start_ms: u64, end_ms: u64, out: &mut Vec<u32>) {
        let times = self.user_times(user);
        let (lo, hi) = Self::span_idx(times, start_ms, end_ms);
        let base = self.user_range(user).start;
        out.extend_from_slice(&self.host[base + lo..base + hi]);
    }

    fn last_time_in(&self, user: u32, start_ms: u64, end_ms: u64) -> Option<u64> {
        let times = self.user_times(user);
        let (lo, hi) = Self::span_idx(times, start_ms, end_ms);
        (lo < hi).then(|| times[hi - 1] as u64)
    }
}

/// Streaming builder: feed users in ascending id order, each user's
/// events in ascending time order; only the columns themselves are ever
/// resident. The interner may be pre-seeded (the synthetic path interns
/// the world's hostnames in `HostId` order, so column host ids coincide
/// with world ids).
#[derive(Debug)]
pub struct TraceColumnsBuilder {
    user_starts: Vec<u64>,
    t_ms: Vec<u32>,
    host: Vec<u32>,
    wire_bytes: Vec<u32>,
    interner: HostInterner,
    /// User currently being appended (`user_starts.len() - 2` once any
    /// user is open).
    last_user: Option<u32>,
    last_t: u64,
    days: u32,
}

impl TraceColumnsBuilder {
    /// A builder with a pre-seeded hostname table (possibly empty).
    pub fn new(interner: HostInterner, days: u32) -> Self {
        Self {
            user_starts: vec![0],
            t_ms: Vec::new(),
            host: Vec::new(),
            wire_bytes: Vec::new(),
            interner,
            last_user: None,
            last_t: 0,
            days,
        }
    }

    /// Reserve column capacity for an expected event count.
    pub fn reserve(&mut self, events: usize) {
        self.t_ms.reserve(events);
        self.host.reserve(events);
        self.wire_bytes.reserve(events);
    }

    /// Mutable access to the hostname table (for pre-seeding checks).
    pub fn interner_mut(&mut self) -> &mut HostInterner {
        &mut self.interner
    }

    /// Close ranges up to and including `user` so the next event belongs
    /// to `user`. Intermediate users get empty ranges.
    fn open_user(&mut self, user: u32) {
        let opened = self.user_starts.len() as u64 - 1; // users closed so far
        assert!(
            self.last_user.is_none_or(|u| user >= u),
            "users must arrive in ascending order (got {user} after {:?})",
            self.last_user
        );
        if self.last_user != Some(user) {
            for _ in opened..=user as u64 {
                // Empty ranges for skipped users, then open `user`.
                self.user_starts.push(self.t_ms.len() as u64);
            }
            // The freshly pushed boundary for `user` itself is provisional;
            // pop it — it is re-pushed (final) when the next user opens or
            // at finish.
            self.user_starts.pop();
            self.last_user = Some(user);
            self.last_t = 0;
        }
    }

    /// Append one observation with an already-interned host id.
    pub fn push_event(&mut self, user: u32, t_ms: u64, host: u32, wire_bytes: u32) {
        self.open_user(user);
        assert!(
            t_ms >= self.last_t,
            "events within a user must be time-ascending ({t_ms} after {})",
            self.last_t
        );
        assert!(
            t_ms <= u32::MAX as u64,
            "timestamp {t_ms} exceeds the u32 horizon (~49.7 days)"
        );
        assert!(
            (host as usize) < self.interner.len(),
            "unknown host id {host}"
        );
        self.last_t = t_ms;
        self.t_ms.push(t_ms as u32);
        self.host.push(host);
        self.wire_bytes.push(wire_bytes);
    }

    /// Append one observation by hostname, interning it.
    pub fn push_named_event(&mut self, user: u32, t_ms: u64, hostname: &str, wire_bytes: u32) {
        let host = self.interner.intern(hostname);
        self.push_event(user, t_ms, host, wire_bytes);
    }

    /// Seal the store, padding the offset table to `num_users`.
    pub fn finish(mut self, num_users: usize) -> TraceColumns {
        assert!(
            self.last_user.is_none_or(|u| (u as usize) < num_users),
            "events recorded past num_users"
        );
        while self.user_starts.len() < num_users + 1 {
            self.user_starts.push(self.t_ms.len() as u64);
        }
        TraceColumns {
            user_starts: self.user_starts,
            t_ms: self.t_ms,
            host: self.host,
            wire_bytes: self.wire_bytes,
            interner: self.interner,
            days: self.days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceColumns {
        let mut b = TraceColumnsBuilder::new(HostInterner::new(), 2);
        b.push_named_event(0, 100, "a.example", 220);
        b.push_named_event(0, 500, "b.example", 230);
        b.push_named_event(0, 500, "a.example", 220);
        // user 1 idle; user 2 active on day 2 (day_ms = 1000 for tests).
        b.push_named_event(2, 1200, "c.example", 240);
        b.push_named_event(2, 1300, "a.example", 220);
        b.finish(4)
    }

    #[test]
    fn ranges_and_columns_line_up() {
        let c = sample();
        assert_eq!(c.num_users(), 4);
        assert_eq!(c.num_events(), 5);
        assert_eq!(c.user_range(0), 0..3);
        assert_eq!(c.user_range(1), 3..3);
        assert_eq!(c.user_range(2), 3..5);
        assert_eq!(c.user_range(3), 5..5);
        assert_eq!(c.user_times(0), [100, 500, 500]);
        let names: Vec<&str> = c.user_hosts(2).iter().map(|&h| c.host_name(h)).collect();
        assert_eq!(names, ["c.example", "a.example"]);
        assert_eq!(c.user_wire_bytes(0), [220, 230, 220]);
        assert_eq!(c.total_wire_bytes(), 220 + 230 + 220 + 240 + 220);
    }

    #[test]
    fn window_semantics_match_the_materialized_trace() {
        let c = sample();
        let mut out = Vec::new();
        // (0, 500]: excludes t = 100? No — window (end−dur, end] with
        // end = 500, dur = 400 → (100, 500]: t=100 excluded, both t=500 in.
        c.window_hosts(0, 500, 400, &mut out);
        assert_eq!(out.len(), 2);
        // Epoch-touching: dur = 500 → start 0 → keep everything ≤ 500.
        out.clear();
        c.window_hosts(0, 500, 500, &mut out);
        assert_eq!(out.len(), 3);
        // dur > end: same.
        out.clear();
        c.window_hosts(0, 500, u64::MAX, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn spans_and_last_time_bucket_days() {
        let c = sample();
        let mut out = Vec::new();
        c.span_hosts(2, 1000, 2000, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(c.last_time_in(2, 1000, 2000), Some(1300));
        assert_eq!(c.last_time_in(2, 0, 1000), None);
        assert_eq!(c.last_time_in(1, 0, u64::MAX), None);
        let daily = c.daily_sequences(1, 1000);
        assert_eq!(daily.len(), 1);
        assert_eq!(daily[0].0, 2);
        assert_eq!(daily[0].1.len(), 2);
    }

    #[test]
    fn flat_roundtrip_is_bit_identical() {
        let c = sample();
        let buf = c.to_flat_bytes();
        let back = TraceColumns::from_flat_bytes(&buf).unwrap();
        assert_eq!(back.num_users(), c.num_users());
        assert_eq!(back.days(), c.days());
        for u in 0..c.num_users() as u32 {
            assert_eq!(back.user_times(u), c.user_times(u));
            assert_eq!(back.user_hosts(u), c.user_hosts(u));
            assert_eq!(back.user_wire_bytes(u), c.user_wire_bytes(u));
        }
        for id in 0..c.interner().len() as u32 {
            assert_eq!(back.interner().name(id), c.interner().name(id));
        }
        // Deterministic encoding: same store, same bytes.
        assert_eq!(back.to_flat_bytes(), buf);
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn rejects_user_regression() {
        let mut b = TraceColumnsBuilder::new(HostInterner::new(), 1);
        b.push_named_event(3, 10, "a", 0);
        b.push_named_event(1, 20, "a", 0);
    }

    #[test]
    #[should_panic(expected = "time-ascending")]
    fn rejects_time_regression_within_user() {
        let mut b = TraceColumnsBuilder::new(HostInterner::new(), 1);
        b.push_named_event(0, 100, "a", 0);
        b.push_named_event(0, 99, "a", 0);
    }

    #[test]
    #[should_panic(expected = "u32 horizon")]
    fn rejects_timestamps_past_the_horizon() {
        let mut b = TraceColumnsBuilder::new(HostInterner::new(), 1);
        b.push_named_event(0, u32::MAX as u64 + 1, "a", 0);
    }

    #[test]
    fn preseeded_interner_keeps_world_ids() {
        let mut seed = HostInterner::new();
        for name in ["zero.example", "one.example", "two.example"] {
            seed.intern(name);
        }
        let mut b = TraceColumnsBuilder::new(seed, 1);
        b.push_event(0, 5, 2, 0);
        b.push_event(0, 6, 0, 0);
        let c = b.finish(1);
        assert_eq!(c.host_name(2), "two.example");
        assert_eq!(c.user_hosts(0), [2, 0]);
    }

    #[test]
    fn heap_bytes_is_twelve_per_event_plus_table() {
        let mut b = TraceColumnsBuilder::new(HostInterner::new(), 1);
        b.reserve(1000);
        for i in 0..1000u64 {
            b.push_named_event(0, i, "only.example", 200);
        }
        let c = b.finish(1);
        let per_event = (c.heap_bytes() - c.interner().heap_bytes()) as f64 / 1000.0;
        assert!(per_event < 16.0, "flat cost {per_event} B/event");
    }
}
