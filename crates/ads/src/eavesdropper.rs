//! The eavesdropper's ad selection (Section 5.4, "Selecting the best ads").
//!
//! Once a session is profiled into `c^{s_u^T} ∈ [0,1]^{328}`, the paper
//! retrieves "the 20-nearest neighbors of `c^{s_u^T}` (according to
//! Euclidean distance) from the pool of hosts for which we know their
//! categorization (`H_L`)", then selects "ads for each of the closest
//! hosts" and serves that list for the next 10 minutes.

use crate::ad::{AdDatabase, AdId};
use hostprof_ontology::{CategoryVector, Ontology};
use serde::{Deserialize, Serialize};

/// Selection knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// How many labeled hosts to retrieve around the profile (paper: 20).
    pub hosts_per_profile: usize,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            hosts_per_profile: 20,
        }
    }
}

/// Turns session profiles into replacement-ad lists.
pub struct EavesdropperSelector<'a> {
    db: &'a AdDatabase,
    /// Snapshot of `H_L`: the labeled hosts' category vectors.
    labeled: Vec<&'a CategoryVector>,
    /// The ad serving each labeled host, precomputed once — the per-host
    /// pick depends only on the host's categories and the (static) ad
    /// database, so there is no reason to re-derive it per report.
    host_ads: Vec<Option<AdId>>,
    config: SelectorConfig,
}

impl<'a> EavesdropperSelector<'a> {
    /// Bind an ad database and the ontology pool `H_L`.
    pub fn new(db: &'a AdDatabase, ontology: &'a Ontology, config: SelectorConfig) -> Self {
        let labeled: Vec<&CategoryVector> = ontology.iter().map(|(_, v)| v).collect();
        let host_ads = labeled
            .iter()
            .map(|cats| {
                cats.argmax()
                    .and_then(|c| db.closest_ad_in_category(c.0, cats))
            })
            .collect();
        Self {
            db,
            labeled,
            host_ads,
            config,
        }
    }

    /// Size of the labeled pool.
    pub fn pool_size(&self) -> usize {
        self.labeled.len()
    }

    /// The replacement list for one profile: up to
    /// `hosts_per_profile` ads, one per nearest labeled host, deduplicated,
    /// nearest host first.
    pub fn select(&self, profile: &CategoryVector) -> Vec<AdId> {
        if profile.is_empty() || self.labeled.is_empty() || self.db.is_empty() {
            return Vec::new();
        }
        // 20-NN over H_L by Euclidean distance in category space.
        let mut dists: Vec<(f32, usize)> = self
            .labeled
            .iter()
            .enumerate()
            .map(|(i, cats)| (profile.euclidean(cats), i))
            .collect();
        let k = self.config.hosts_per_profile.min(dists.len());
        if k == 0 {
            return Vec::new();
        }
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut nearest: Vec<(f32, usize)> = dists[..k].to_vec();
        nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // One ad per host, preferring the host's strongest category
        // (precomputed in `new`).
        let mut out: Vec<AdId> = Vec::with_capacity(k);
        for (_, i) in nearest {
            if let Some(id) = self.host_ads[i] {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::AdDatabase;
    use hostprof_synth::{World, WorldConfig};

    fn setup() -> (World, AdDatabase) {
        let world = World::generate(&WorldConfig::tiny());
        let db = AdDatabase::generate(&world, 400, 23);
        (world, db)
    }

    #[test]
    fn selection_returns_up_to_twenty_relevant_ads() {
        let (world, db) = setup();
        let sel = EavesdropperSelector::new(&db, world.ontology(), SelectorConfig::default());
        assert!(sel.pool_size() > 0);
        // Use a labeled host's own categories as the profile: its ads
        // should be topically aligned.
        let (_, probe) = world.ontology().iter().next().unwrap();
        let ads = sel.select(probe);
        assert!(!ads.is_empty());
        assert!(ads.len() <= 20);
        // The best ad should share the probe's dominant topic reasonably
        // often; check the first pick.
        let first = db.ad(ads[0]);
        assert!(
            first.categories.cosine(probe) > 0.2,
            "top pick relevance {}",
            first.categories.cosine(probe)
        );
    }

    #[test]
    fn empty_profile_selects_nothing() {
        let (world, db) = setup();
        let sel = EavesdropperSelector::new(&db, world.ontology(), SelectorConfig::default());
        assert!(sel.select(&CategoryVector::empty()).is_empty());
    }

    #[test]
    fn list_is_deduplicated() {
        let (world, db) = setup();
        let sel = EavesdropperSelector::new(&db, world.ontology(), SelectorConfig::default());
        let (_, probe) = world.ontology().iter().next().unwrap();
        let ads = sel.select(probe);
        let mut dedup = ads.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ads.len());
    }

    #[test]
    fn zero_hosts_per_profile_selects_nothing() {
        let (world, db) = setup();
        let sel = EavesdropperSelector::new(
            &db,
            world.ontology(),
            SelectorConfig {
                hosts_per_profile: 0,
            },
        );
        let (_, probe) = world.ontology().iter().next().unwrap();
        assert!(sel.select(probe).is_empty());
    }

    #[test]
    fn small_pool_is_handled() {
        let (world, db) = setup();
        let mut tiny_ontology = hostprof_ontology::Ontology::new();
        let (host, cats) = world.ontology().iter().next().unwrap();
        tiny_ontology.insert(host, cats.clone());
        let sel = EavesdropperSelector::new(&db, &tiny_ontology, SelectorConfig::default());
        assert_eq!(sel.pool_size(), 1);
        let ads = sel.select(cats);
        assert_eq!(ads.len(), 1);
    }

    #[test]
    fn relevance_beats_random_on_average() {
        let (world, db) = setup();
        let sel = EavesdropperSelector::new(&db, world.ontology(), SelectorConfig::default());
        let mut selected_sim = 0f64;
        let mut random_sim = 0f64;
        let mut n = 0usize;
        for (i, (_, probe)) in world.ontology().iter().enumerate().take(30) {
            let ads = sel.select(probe);
            if ads.is_empty() {
                continue;
            }
            for id in &ads {
                selected_sim += db.ad(*id).categories.cosine(probe) as f64;
                // Deterministic "random" comparator: stride the inventory.
                let r = db.ads()[(i * 37 + id.index() * 13) % db.len()].id;
                random_sim += db.ad(r).categories.cosine(probe) as f64;
                n += 1;
            }
        }
        assert!(n > 50);
        assert!(
            selected_sim > random_sim * 1.5,
            "selected {selected_sim} vs random {random_sim}"
        );
    }
}
