//! Category identifiers.
//!
//! The harmonized ontology (paper Section 5.4) has 328 second-level
//! categories grouped under 34 top-level topics. [`CategoryId`] indexes the
//! harmonized set `C`; [`TopCategoryId`] indexes the top-level topics used
//! for the Figure 6 timelines.

use serde::{Deserialize, Serialize};

/// Index of a harmonized (level ≤ 2) category, `0 .. HARMONIZED_CATEGORIES`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CategoryId(pub u16);

/// Index of a top-level topic, `0 .. TOP_CATEGORIES`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TopCategoryId(pub u8);

impl CategoryId {
    /// The raw index, convenient for dense-array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TopCategoryId {
    /// The raw index, convenient for dense-array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CategoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl std::fmt::Display for TopCategoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = CategoryId(3);
        let b = CategoryId(7);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(CategoryId(3));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CategoryId(12).to_string(), "c12");
        assert_eq!(TopCategoryId(4).to_string(), "t4");
    }
}
