//! Profiling-throughput benchmark: sessions/second of the batched,
//! multi-threaded engine against the seed's one-session-at-a-time loop.
//!
//! The baseline below reproduces the pre-optimization hot path exactly as
//! the seed shipped it: a naive strict-order dot product, cosine computed
//! as `dot / (|q|·|row|)` per row (no prepared unit-norm matrix), a
//! `partial_cmp`-sorted top-N heap, and `HashMap`-based Eq. 3/4
//! accumulation — so the reported speedups measure the kernel + batching
//! work, not scenario drift.
//!
//! Writes `results/bench_profiling.json`.

use hostprof::scenario::Scenario;
use hostprof_bench::{header, row, write_results_stamped, Scale};
use hostprof_core::{BatchProfiler, Profiler, ProfilerConfig, Session};
use hostprof_embed::EmbeddingSet;
use hostprof_ontology::{CategoryId, CategoryVector, Ontology};
use serde::Serialize;
use std::time::Instant;

/// The seed's profiling path, reproduced verbatim for an honest baseline.
mod seed_path {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashMap, HashSet};

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[derive(PartialEq)]
    struct HeapItem {
        sim: f32,
        idx: u32,
    }

    impl Eq for HeapItem {}

    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .sim
                .partial_cmp(&self.sim)
                .unwrap_or(Ordering::Equal)
                .then_with(|| self.idx.cmp(&other.idx))
        }
    }

    fn nearest_to_vector(
        e: &EmbeddingSet,
        norms: &[f32],
        query: &[f32],
        n: usize,
    ) -> Vec<(u32, f32)> {
        let qn = dot(query, query).sqrt();
        if qn <= f32::EPSILON || n == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(n + 1);
        for (i, &norm) in norms.iter().enumerate() {
            let v = e.vector_by_index(i as u32);
            if norm <= f32::EPSILON {
                continue;
            }
            let sim = dot(query, v) / (qn * norm);
            if heap.len() < n {
                heap.push(HeapItem { sim, idx: i as u32 });
            } else if let Some(min) = heap.peek() {
                if sim > min.sim {
                    heap.pop();
                    heap.push(HeapItem { sim, idx: i as u32 });
                }
            }
        }
        let mut out: Vec<(u32, f32)> = heap.into_iter().map(|h| (h.idx, h.sim)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
        out
    }

    /// The seed `Profiler`: per-call `HashMap`s, per-call allocations.
    pub struct SeedProfiler<'a> {
        embeddings: &'a EmbeddingSet,
        ontology: &'a Ontology,
        n_neighbors: usize,
        labeled_by_idx: HashMap<u32, &'a CategoryVector>,
        /// Row norms, precomputed once as the seed's `EmbeddingSet` did.
        norms: Vec<f32>,
    }

    impl<'a> SeedProfiler<'a> {
        pub fn new(
            embeddings: &'a EmbeddingSet,
            ontology: &'a Ontology,
            n_neighbors: usize,
        ) -> Self {
            let mut labeled_by_idx = HashMap::new();
            for (host, cats) in ontology.iter() {
                if let Some(idx) = embeddings.vocab().get(host) {
                    labeled_by_idx.insert(idx, cats);
                }
            }
            let norms = (0..embeddings.len())
                .map(|i| {
                    let v = embeddings.vector_by_index(i as u32);
                    dot(v, v).sqrt()
                })
                .collect();
            Self {
                embeddings,
                ontology,
                n_neighbors,
                labeled_by_idx,
                norms,
            }
        }

        pub fn profile(&self, session: &Session) -> Option<CategoryVector> {
            if session.is_empty() {
                return None;
            }
            let labeled_in_session: Vec<(Option<u32>, &CategoryVector)> = session
                .iter()
                .filter_map(|h| {
                    self.ontology
                        .lookup(h)
                        .map(|cats| (self.embeddings.vocab().get(h), cats))
                })
                .collect();

            let dim = self.embeddings.dim();
            let mut acc = vec![0f32; dim];
            let mut count = 0usize;
            for h in session.iter() {
                if let Some(idx) = self.embeddings.vocab().get(h) {
                    for (a, v) in acc.iter_mut().zip(self.embeddings.vector_by_index(idx)) {
                        *a += v;
                    }
                    count += 1;
                }
            }
            let session_vector = (count > 0).then(|| {
                for a in &mut acc {
                    *a /= count as f32;
                }
                acc
            });

            let mut weighted: Vec<(f32, &CategoryVector)> = Vec::new();
            if let Some(ref sv) = session_vector {
                let in_session_idx: HashSet<u32> = labeled_in_session
                    .iter()
                    .filter_map(|(idx, _)| *idx)
                    .collect();
                for (idx, sim) in
                    nearest_to_vector(self.embeddings, &self.norms, sv, self.n_neighbors)
                {
                    if in_session_idx.contains(&idx) {
                        continue;
                    }
                    if let Some(cats) = self.labeled_by_idx.get(&idx) {
                        let alpha = sim.max(0.0);
                        if alpha > 0.0 {
                            weighted.push((alpha, cats));
                        }
                    }
                }
            }
            for (_, cats) in &labeled_in_session {
                weighted.push((1.0, cats));
            }
            if weighted.is_empty() {
                return None;
            }
            let mut num: HashMap<CategoryId, f32> = HashMap::new();
            let mut alpha_sum = 0f32;
            for (alpha, cats) in &weighted {
                alpha_sum += alpha;
                for (c, w) in cats.iter() {
                    *num.entry(c).or_insert(0.0) += alpha * w;
                }
            }
            Some(CategoryVector::from_pairs(
                num.into_iter().map(|(c, v)| (c, v / alpha_sum)).collect(),
            ))
        }
    }
}

#[derive(Serialize)]
struct ThroughputRow {
    threads: usize,
    batch_size: usize,
    sessions_per_sec: f64,
    speedup_vs_seed: f64,
}

#[derive(Serialize)]
struct BenchProfilingResults {
    scale: String,
    hardware_threads: usize,
    sessions: usize,
    vocabulary: usize,
    dim: usize,
    n_neighbors: usize,
    /// The seed's one-session-at-a-time loop (naive kernel, per-call maps).
    seed_loop_sessions_per_sec: f64,
    /// The optimized single-query path (unit-norm tiled kernel + scratch).
    single_query_sessions_per_sec: f64,
    throughput: Vec<ThroughputRow>,
    best_speedup_at_4_threads: f64,
}

/// Wall-clock the closure over `repeats` runs, keeping the fastest.
fn best_of<F: FnMut() -> u64>(repeats: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..repeats {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..s.trace.days().saturating_sub(1) {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("trainable corpus");
    let ontology = s.world.ontology();
    let n_neighbors = ProfilerConfig::default().n_neighbors;

    // Real sessions from the trace: every user's window on each profiled
    // day, cycled up to the largest batch we measure.
    let mut sessions: Vec<Session> = Vec::new();
    'outer: for day in 1..s.trace.days() {
        for user in s.population.users() {
            let window = s.session_hostnames(user.id, day);
            if window.is_empty() {
                continue;
            }
            sessions.push(Session::from_window(
                window.iter().map(String::as_str),
                Some(pipeline.blocklist()),
            ));
            if sessions.len() >= 256 {
                break 'outer;
            }
        }
    }
    assert!(!sessions.is_empty(), "trace produced no sessions");
    let distinct = sessions.len();
    while sessions.len() < 256 {
        let again = sessions[sessions.len() % distinct].clone();
        sessions.push(again);
    }
    let repeats = match scale {
        Scale::Tiny => 5,
        _ => 3,
    };

    header("profiling throughput (sessions/sec)");
    row("scale", scale.label());
    row("sessions", sessions.len());
    row("vocabulary", embeddings.len());
    row("n_neighbors", n_neighbors);

    // Baseline: the seed's single-query loop.
    let seed = seed_path::SeedProfiler::new(&embeddings, ontology, n_neighbors);
    let (seed_time, _) = best_of(repeats, || {
        sessions.iter().filter_map(|s| seed.profile(s)).count() as u64
    });
    let seed_rate = sessions.len() as f64 / seed_time;
    row("seed single-query loop", format!("{seed_rate:.1}/s"));

    // Optimized single-query path (no batching, fresh profiler state).
    let profiler = Profiler::new(&embeddings, ontology, ProfilerConfig::default());
    let (single_time, _) = best_of(repeats, || {
        sessions.iter().filter_map(|s| profiler.profile(s)).count() as u64
    });
    let single_rate = sessions.len() as f64 / single_time;
    row(
        "single-query (tiled kernel)",
        format!("{single_rate:.1}/s  ({:.2}x)", single_rate / seed_rate),
    );

    // Batched engine across thread counts and batch sizes.
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1usize, 4];
    if !thread_counts.contains(&hardware) {
        thread_counts.push(hardware);
    }
    let mut throughput = Vec::new();
    let mut best_at_4 = 0f64;
    for &threads in &thread_counts {
        for batch_size in [1usize, 32, 256] {
            let batch = BatchProfiler::new(
                Profiler::new(&embeddings, ontology, ProfilerConfig::default()),
                threads,
            );
            let (time, _) = best_of(repeats, || {
                sessions
                    .chunks(batch_size)
                    .map(|c| {
                        batch
                            .profile_sessions(c)
                            .iter()
                            .filter(|p| p.is_some())
                            .count() as u64
                    })
                    .sum()
            });
            let rate = sessions.len() as f64 / time;
            let speedup = rate / seed_rate;
            if threads == 4 {
                best_at_4 = best_at_4.max(speedup);
            }
            row(
                format!("batched t={threads} b={batch_size}").as_str(),
                format!("{rate:.1}/s  ({speedup:.2}x)"),
            );
            throughput.push(ThroughputRow {
                threads,
                batch_size,
                sessions_per_sec: rate,
                speedup_vs_seed: speedup,
            });
        }
    }
    row("best speedup at 4 threads", format!("{best_at_4:.2}x"));

    let headline = format!(
        "{} sessions, best {best_at_4:.2}x at 4 threads",
        sessions.len()
    );
    write_results_stamped(
        "bench_profiling",
        &BenchProfilingResults {
            scale: scale.label().to_string(),
            hardware_threads: hardware,
            sessions: sessions.len(),
            vocabulary: embeddings.len(),
            dim: embeddings.dim(),
            n_neighbors,
            seed_loop_sessions_per_sec: seed_rate,
            single_query_sessions_per_sec: single_rate,
            throughput,
            best_speedup_at_4_threads: best_at_4,
        },
        &headline,
    );
}
