//! End-to-end pipeline integration: world → trace → training → profiling,
//! validated against ground truth.

use hostprof::profiling::{profile_accuracy, Session};
use hostprof::scenario::{Scenario, ScenarioConfig};

fn scenario_with_days(days: u32) -> Scenario {
    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = days;
    Scenario::generate(&cfg)
}

#[test]
fn profiles_beat_chance_and_cover_more_than_the_ontology_baseline() {
    let s = scenario_with_days(6);
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..5 {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("corpus is non-empty");
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());

    let mut emb_acc = Vec::new();
    let mut onto_acc = Vec::new();
    let mut emb_profiles = 0usize;
    let mut onto_profiles = 0usize;
    for user in s.population.users() {
        let window = s.session_hostnames(user.id, 5);
        if window.is_empty() {
            continue;
        }
        let session = Session::from_window(
            window.iter().map(String::as_str),
            Some(pipeline.blocklist()),
        );
        if let Some(p) = profiler.profile(&session) {
            emb_profiles += 1;
            emb_acc.push(profile_accuracy(&p.categories, &user.interests) as f64);
        }
        if let Some(p) = profiler.profile_ontology_only(&session) {
            onto_profiles += 1;
            onto_acc.push(profile_accuracy(&p.categories, &user.interests) as f64);
        }
    }
    assert!(
        emb_profiles >= 10,
        "most users get profiled ({emb_profiles})"
    );
    assert!(
        emb_profiles >= onto_profiles,
        "embedding propagation never covers fewer sessions"
    );
    let mean = emb_acc.iter().sum::<f64>() / emb_acc.len() as f64;
    // 328 categories; a random profile's cosine against sparse interests is
    // far below this.
    assert!(mean > 0.12, "mean accuracy {mean}");
}

#[test]
fn daily_retraining_changes_the_model_but_both_days_work() {
    let s = scenario_with_days(3);
    let pipeline = s.pipeline();
    let day0 = pipeline
        .train_model(&s.daily_hostname_sequences(0))
        .expect("day 0");
    let day1 = pipeline
        .train_model(&s.daily_hostname_sequences(1))
        .expect("day 1");
    // Both models embed the popular core hosts...
    let core = s.world.hostname(s.world.core_ids()[0]);
    assert!(day0.vector(core).is_some());
    assert!(day1.vector(core).is_some());
    // ...but are trained on different corpora.
    assert_ne!(
        day0.vector(core).map(<[f32]>::to_vec),
        day1.vector(core).map(<[f32]>::to_vec),
        "different days → different models"
    );
}

#[test]
fn tracker_hostnames_never_reach_profiles() {
    let s = scenario_with_days(2);
    let pipeline = s.pipeline();
    let embeddings = pipeline
        .train_model(&s.daily_hostname_sequences(0))
        .expect("day 0");
    // No blocklisted hostname may appear in the trained vocabulary.
    for h in s.world.hosts() {
        if s.world.blocklist().is_blocked(&h.name) {
            assert!(
                embeddings.vector(&h.name).is_none(),
                "blocked host {} leaked into the vocabulary",
                h.name
            );
        }
    }
}

#[test]
fn the_api_endpoint_phenomenon_reproduces() {
    // The paper's motivating example: an unlabeled API endpoint
    // (api.bkng.azure.com) must inherit the topic of the sites it is
    // co-requested with. We test the aggregate version: topic-affine API
    // hosts are, on average, closer to their own topic's sites than to
    // other sites.
    let s = scenario_with_days(6);
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..s.trace.days() {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("corpus");

    let mut same = Vec::new();
    let mut other = Vec::new();
    for api in s
        .world
        .hosts()
        .iter()
        .filter(|h| h.kind == hostprof::synth::HostKind::Api)
    {
        let Some(topic) = api.top_topic else { continue };
        if embeddings.vector(&api.name).is_none() {
            continue;
        }
        for site in s
            .world
            .hosts()
            .iter()
            .filter(|h| h.kind == hostprof::synth::HostKind::Site)
            .take(120)
        {
            let Some(cos) = embeddings.cosine(&api.name, &site.name) else {
                continue;
            };
            if site.top_topic == Some(topic) {
                same.push(cos as f64);
            } else {
                other.push(cos as f64);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(same.len() > 50 && other.len() > 50);
    assert!(
        mean(&same) > mean(&other) + 0.03,
        "API endpoints sit nearer their home topic: {} vs {}",
        mean(&same),
        mean(&other)
    );
}
