//! Trained embeddings and similarity queries.
//!
//! After training, the profiler needs three operations (paper Section 4.1):
//! aggregate a session's hostname vectors into a session vector
//! ([`EmbeddingSet::mean_vector`]), find the `N = 1000` hostnames most
//! similar to it by cosine ([`EmbeddingSet::nearest_to_vector`]), and score
//! individual hostnames against the session ([`EmbeddingSet::cosine_to`]).

use crate::vocab::Vocab;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A frozen `|V| × d` embedding matrix with its vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingSet {
    dim: usize,
    vocab: Vocab,
    /// Row-major vectors.
    vectors: Vec<f32>,
    /// Precomputed L2 norms, row-aligned.
    norms: Vec<f32>,
}

/// Heap entry for top-N selection (min-heap on similarity).
#[derive(PartialEq)]
struct HeapItem {
    sim: f32,
    idx: u32,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want to pop the *smallest*
        // similarity first.
        other
            .sim
            .partial_cmp(&self.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl EmbeddingSet {
    /// Wrap a trained matrix. `vectors.len()` must equal
    /// `vocab.len() * dim`.
    pub fn new(dim: usize, vocab: Vocab, vectors: Vec<f32>) -> Self {
        assert_eq!(vectors.len(), vocab.len() * dim, "matrix shape mismatch");
        let norms = (0..vocab.len())
            .map(|i| {
                vectors[i * dim..(i + 1) * dim]
                    .iter()
                    .map(|x| x * x)
                    .sum::<f32>()
                    .sqrt()
            })
            .collect();
        Self {
            dim,
            vocab,
            vectors,
            norms,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded tokens.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Vector of a token, if in vocabulary.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        self.vocab.get(token).map(|i| self.vector_by_index(i))
    }

    /// Vector by dense index.
    ///
    /// # Panics
    /// Panics when the index is out of range.
    pub fn vector_by_index(&self, idx: u32) -> &[f32] {
        &self.vectors[idx as usize * self.dim..(idx as usize + 1) * self.dim]
    }

    /// Cosine similarity between two tokens (None if either is unknown).
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        let ia = self.vocab.get(a)?;
        let ib = self.vocab.get(b)?;
        Some(self.cosine_indices(ia, ib))
    }

    /// Cosine similarity between two indexed tokens.
    pub fn cosine_indices(&self, a: u32, b: u32) -> f32 {
        let va = self.vector_by_index(a);
        let vb = self.vector_by_index(b);
        let denom = self.norms[a as usize] * self.norms[b as usize];
        if denom <= f32::EPSILON {
            return 0.0;
        }
        dot(va, vb) / denom
    }

    /// Cosine between an arbitrary query vector and an indexed token.
    pub fn cosine_to(&self, query: &[f32], idx: u32) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        let qn = dot(query, query).sqrt();
        let denom = qn * self.norms[idx as usize];
        if denom <= f32::EPSILON {
            return 0.0;
        }
        dot(query, self.vector_by_index(idx)) / denom
    }

    /// The aggregation function `g`: element-wise mean of the vectors of
    /// the known tokens in `tokens`. Returns `None` when no token is in
    /// vocabulary (the paper's `s_u^T` cannot be empty; callers decide how
    /// to handle sessions the eavesdropper cannot embed).
    pub fn mean_vector<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Option<Vec<f32>> {
        let mut acc = vec![0f32; self.dim];
        let mut n = 0usize;
        for t in tokens {
            if let Some(v) = self.vector(t) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        for a in &mut acc {
            *a /= n as f32;
        }
        Some(acc)
    }

    /// The `n` tokens most cosine-similar to `query`, descending.
    /// Zero-norm rows are skipped. Brute force `O(|V| d)` — exact, and at
    /// the paper's vocabulary sizes this is the honest baseline an
    /// approximate index would be benchmarked against.
    pub fn nearest_to_vector(&self, query: &[f32], n: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let qn = dot(query, query).sqrt();
        if qn <= f32::EPSILON || n == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(n + 1);
        for i in 0..self.vocab.len() {
            let norm = self.norms[i];
            if norm <= f32::EPSILON {
                continue;
            }
            let sim = dot(query, &self.vectors[i * self.dim..(i + 1) * self.dim]) / (qn * norm);
            if heap.len() < n {
                heap.push(HeapItem {
                    sim,
                    idx: i as u32,
                });
            } else if let Some(min) = heap.peek() {
                if sim > min.sim {
                    heap.pop();
                    heap.push(HeapItem {
                        sim,
                        idx: i as u32,
                    });
                }
            }
        }
        let mut out: Vec<(u32, f32)> = heap.into_iter().map(|h| (h.idx, h.sim)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
        out
    }

    /// Subtract the mean embedding from every vector and rebuild norms.
    ///
    /// Small corpora produce a strong common direction (hubness): every
    /// pair of hostnames ends up with a large positive cosine, which
    /// flattens the α-weights of the profiler's Eq. 3. Removing the mean —
    /// the first step of the standard "all-but-the-top" postprocessing —
    /// restores contrast. Embeddings trained at the paper's data scale do
    /// not need this, so it is opt-in via the pipeline config.
    pub fn centered(mut self) -> Self {
        if self.vocab.is_empty() {
            return self;
        }
        let n = self.vocab.len();
        let mut mean = vec![0f32; self.dim];
        for i in 0..n {
            for (m, v) in mean.iter_mut().zip(&self.vectors[i * self.dim..(i + 1) * self.dim]) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        for i in 0..n {
            for (d, m) in mean.iter().enumerate() {
                self.vectors[i * self.dim + d] -= m;
            }
        }
        Self::new(self.dim, self.vocab, self.vectors)
    }

    /// Analogy query: `a` is to `b` as `c` is to … — solved as the tokens
    /// nearest to `vec(b) − vec(a) + vec(c)` (excluding the three query
    /// tokens). A standard embedding-space sanity probe: in a well-trained
    /// hostname space, "news-site : news-CDN :: shop-site : shop-CDN"-style
    /// relations hold approximately.
    pub fn analogy(&self, a: &str, b: &str, c: &str, n: usize) -> Vec<(String, f32)> {
        let (Some(va), Some(vb), Some(vc)) = (self.vector(a), self.vector(b), self.vector(c))
        else {
            return Vec::new();
        };
        let query: Vec<f32> = va
            .iter()
            .zip(vb)
            .zip(vc)
            .map(|((x, y), z)| y - x + z)
            .collect();
        let exclude: [Option<u32>; 3] = [self.vocab.get(a), self.vocab.get(b), self.vocab.get(c)];
        self.nearest_to_vector(&query, n + 3)
            .into_iter()
            .filter(|(i, _)| !exclude.contains(&Some(*i)))
            .take(n)
            .map(|(i, s)| (self.vocab.token(i).to_string(), s))
            .collect()
    }

    /// The `n` tokens most similar to `token` (token itself excluded).
    pub fn most_similar(&self, token: &str, n: usize) -> Vec<(String, f32)> {
        let Some(idx) = self.vocab.get(token) else {
            return Vec::new();
        };
        let query = self.vector_by_index(idx).to_vec();
        self.nearest_to_vector(&query, n + 1)
            .into_iter()
            .filter(|(i, _)| *i != idx)
            .take(n)
            .map(|(i, s)| (self.vocab.token(i).to_string(), s))
            .collect()
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-D embedding: two tight groups on orthogonal axes.
    fn toy() -> EmbeddingSet {
        let seqs = vec![vec!["a0", "a1", "a2", "b0", "b1", "zero"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("a0", [1.0, 0.0]);
        set("a1", [0.9, 0.1]);
        set("a2", [1.0, 0.05]);
        set("b0", [0.0, 1.0]);
        set("b1", [0.1, 0.9]);
        set("zero", [0.0, 0.0]);
        EmbeddingSet::new(2, vocab, vectors)
    }

    #[test]
    fn cosine_identifies_groups() {
        let e = toy();
        assert!(e.cosine("a0", "a1").unwrap() > 0.98);
        assert!(e.cosine("a0", "b0").unwrap() < 0.1);
        assert!(e.cosine("a0", "nope").is_none());
    }

    #[test]
    fn most_similar_excludes_self_and_ranks() {
        let e = toy();
        let sims = e.most_similar("a0", 2);
        assert_eq!(sims.len(), 2);
        assert!(sims[0].0.starts_with('a'));
        assert!(sims[1].0.starts_with('a'));
        assert!(sims[0].1 >= sims[1].1);
    }

    #[test]
    fn mean_vector_averages_known_tokens() {
        let e = toy();
        let m = e.mean_vector(["a0", "b0", "unknown"]).unwrap();
        assert!((m[0] - 0.5).abs() < 1e-6);
        assert!((m[1] - 0.5).abs() < 1e-6);
        assert!(e.mean_vector(["nope", "nada"]).is_none());
    }

    #[test]
    fn nearest_to_vector_skips_zero_rows_and_sorts() {
        let e = toy();
        let res = e.nearest_to_vector(&[1.0, 0.0], 10);
        assert_eq!(res.len(), 5, "zero-norm token skipped");
        for w in res.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(e.vocab().token(res[0].0).chars().next(), Some('a'));
    }

    #[test]
    fn nearest_with_zero_query_is_empty() {
        let e = toy();
        assert!(e.nearest_to_vector(&[0.0, 0.0], 3).is_empty());
        assert!(e.nearest_to_vector(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn top_n_truncation_keeps_the_best() {
        let e = toy();
        let all = e.nearest_to_vector(&[1.0, 0.0], 5);
        let top2 = e.nearest_to_vector(&[1.0, 0.0], 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].0, all[0].0);
        assert_eq!(top2[1].0, all[1].0);
    }

    #[test]
    fn centering_removes_the_common_direction() {
        // All vectors share a large offset along x.
        let seqs = vec![vec!["p", "q", "r"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; 6];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("p", [10.0, 1.0]);
        set("q", [10.0, -1.0]);
        set("r", [10.0, 0.0]);
        let raw = EmbeddingSet::new(2, vocab, vectors);
        assert!(raw.cosine("p", "q").unwrap() > 0.9, "hubness before centering");
        let centered = raw.centered();
        assert!(
            centered.cosine("p", "q").unwrap() < -0.9,
            "opposed after removing the common direction"
        );
    }

    #[test]
    fn analogy_solves_the_parallelogram() {
        // Build vectors where b - a == d - c exactly.
        let seqs = vec![vec!["a", "b", "c", "d", "e"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("a", [1.0, 0.0]);
        set("b", [1.0, 1.0]); // b = a + (0,1)
        set("c", [2.0, 0.1]);
        set("d", [2.0, 1.1]); // d = c + (0,1)
        set("e", [-1.0, -1.0]);
        let emb = EmbeddingSet::new(2, vocab, vectors);
        let result = emb.analogy("a", "b", "c", 1);
        assert_eq!(result[0].0, "d", "{result:?}");
        assert!(emb.analogy("a", "b", "missing", 1).is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_queries() {
        let e = toy();
        let json = serde_json::to_string(&e).unwrap();
        let back: EmbeddingSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.cosine("a0", "a1"), e.cosine("a0", "a1"));
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn wrong_shape_panics() {
        let vocab = Vocab::build(vec![vec!["x"]], 1, 0.0);
        let _ = EmbeddingSet::new(3, vocab, vec![0.0; 2]);
    }
}
