//! Streaming/batch equivalence properties: 500 seeded cases per
//! property, the [`ServeEngine`] vs a naive batch recomputation.
//!
//! The serving loop's contract (DESIGN.md §12, `core::serve`) is that for
//! *any* packet-arrival interleaving across any lane count, the profiles
//! it emits are bit-identical to what the batch pipeline would compute at
//! every report boundary: per user, anchor the session at the last
//! request ≤ the boundary, window `(anchor - T, anchor]` over the user's
//! time-sorted timeline, dedup first-visit, profile. The reference here
//! rebuilds exactly that from a *single* observer fed the same delivered
//! packet stream, with the window semantics taken from the dev-only
//! oracle crate (`oracle::window::session_window`) and profiles from the
//! sequential `Profiler` — no serving-loop code on the reference side.
//!
//! Two delivery regimes:
//!
//! * **Any interleaving, deferred ticks** — chaos-mutated and even fully
//!   shuffled streams (`net::chaos` reorderings plus a Fisher–Yates
//!   pass), with the lateness bound set effectively infinite so every
//!   tick fires at flush. Equivalence must hold no matter how packets
//!   were mangled, because both sides consume the *same* delivered
//!   stream.
//! * **Bounded-disorder interleaving, live ticks** — delivery order
//!   perturbed by a per-packet jitter strictly inside the default
//!   lateness bound, ticks firing live off the watermark. Nothing may be
//!   late-dropped and every tick must still match the batch reference.
//!
//! The vendored proptest crate has no failure persistence, so this suite
//! uses the same scheme as `differential_proptests.rs`: every case is a
//! printable 16-hex-digit seed, failures panic with that seed, and
//! `tests/regressions/streaming_equivalence.txt` holds previously
//! failing seeds (`cc <seed> # note` lines) replayed first on every run.

use hostprof::embed::{EmbeddingSet, Vocab};
use hostprof::net::chaos::{self, ChaosConfig};
use hostprof::net::{Packet, RequestEvent, SniObserver, TrafficSynthesizer};
use hostprof::ontology::{CategoryId, CategoryVector, Ontology};
use hostprof::profiling::{
    BatchProfiler, Profiler, ProfilerConfig, ServeConfig, ServeEngine, Session, SessionProfile,
};
use hostprof_oracle::window;
use std::collections::BTreeMap;

const CASES: usize = 500;

/// splitmix64: the per-case parameter stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Case seed `i` of a property's deterministic 500-seed schedule.
fn case_seed(property: u64, i: usize) -> u64 {
    let mut s = property
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64);
    splitmix(&mut s)
}

/// Previously failing seeds, replayed before the fresh schedule.
/// Line format: `cc 0123456789abcdef # what broke`.
fn regression_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/streaming_equivalence.txt"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("regression seed file {path} unreadable: {e}"));
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex = rest.split_whitespace().next().unwrap_or("");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|e| panic!("bad regression seed {hex:?} in {path}: {e}"));
        seeds.push(seed);
    }
    assert!(
        !seeds.is_empty(),
        "no `cc <seed>` entries in {path} — the regression net is gone"
    );
    seeds
}

/// All seeds a property runs: regressions first, then the schedule.
fn schedule(property: u64) -> Vec<u64> {
    let mut seeds = regression_seeds();
    seeds.extend((0..CASES).map(|i| case_seed(property, i)));
    seeds
}

// ---------------------------------------------------------------------
// Shared fixture: a tiny deterministic model over h0..h11.example, and
// a random multi-user request workload lowered to wire packets.
// ---------------------------------------------------------------------

fn tiny_model() -> (EmbeddingSet, Ontology) {
    let hosts: Vec<String> = (0..12).map(|i| format!("h{i}.example")).collect();
    let vocab = Vocab::build(std::iter::once(hosts.iter().map(String::as_str)), 1, 0.0);
    let dim = 4usize;
    let mut state = 0x7e57_0e11u64;
    let vectors: Vec<f32> = (0..vocab.len() * dim)
        .map(|_| (splitmix(&mut state) >> 40) as f32 / (1u64 << 23) as f32 - 1.0)
        .collect();
    let embeddings = EmbeddingSet::new(dim, vocab, vectors);
    let mut ontology = Ontology::new();
    for i in 0..6u16 {
        ontology.insert(
            &format!("h{i}.example"),
            CategoryVector::from_pairs(vec![
                (CategoryId(i % 4), 1.0),
                (CategoryId(4 + i % 3), 0.4),
            ]),
        );
    }
    (embeddings, ontology)
}

/// One case's workload: in-order requests for a few users over several
/// report intervals, lowered to packets (TCP with fragmentation, QUIC)
/// by the standard synthesizer.
fn workload(rng: &mut u64) -> Vec<Packet> {
    let synth = TrafficSynthesizer::default();
    let nusers = 2 + splitmix(rng) % 4;
    let nreqs = 30 + (splitmix(rng) % 90) as usize;
    let mut t = 0u64;
    let mut packets = Vec::new();
    for _ in 0..nreqs {
        t += splitmix(rng) % 60_000;
        let client = (splitmix(rng) % nusers) as u32;
        // Mostly in-vocabulary hosts, the odd stranger the profiler has
        // never embedded.
        let hostname = if splitmix(rng).is_multiple_of(7) {
            format!("x{}.unknown", splitmix(rng) % 3)
        } else {
            format!("h{}.example", splitmix(rng) % 12)
        };
        packets.extend(synth.packets_for(&RequestEvent {
            t_ms: t,
            client,
            hostname,
        }));
    }
    packets
}

/// Bit-exact profile fingerprint: embedding bits, (category, importance
/// bits), and the two evidence counters.
type Fp = (Vec<u32>, Vec<(u16, u32)>, usize, usize);

fn fingerprint(p: &SessionProfile) -> Fp {
    (
        p.session_vector.iter().map(|v| v.to_bits()).collect(),
        p.categories
            .iter()
            .map(|(c, w)| (c.0, w.to_bits()))
            .collect(),
        p.labeled_in_session,
        p.labeled_neighbors,
    )
}

/// One reported (boundary, user, anchor, profile) row.
type Row = (u64, u32, u64, Option<Fp>);

struct CaseParams {
    lanes: usize,
    threads: usize,
    session_window_ms: u64,
    report_interval_ms: u64,
    n_neighbors: usize,
}

impl CaseParams {
    fn draw(rng: &mut u64) -> Self {
        Self {
            lanes: [1, 2, 4][(splitmix(rng) % 3) as usize],
            threads: 1 + (splitmix(rng) % 2) as usize,
            session_window_ms: [150_000, 600_000, 1_200_000, 2_000_000]
                [(splitmix(rng) % 4) as usize],
            report_interval_ms: [180_000, 600_000][(splitmix(rng) % 2) as usize],
            n_neighbors: 1 + (splitmix(rng) % 6) as usize,
        }
    }
}

/// Run the delivered stream through the serving engine and flatten the
/// reported ticks. Returns the rows plus the late-drop counter.
fn engine_rows(
    packets: &[Packet],
    params: &CaseParams,
    lateness_ms: u64,
    embeddings: &EmbeddingSet,
    ontology: &Ontology,
) -> (Vec<Row>, u64) {
    let profiler = Profiler::new(
        embeddings,
        ontology,
        ProfilerConfig {
            n_neighbors: params.n_neighbors,
            ..ProfilerConfig::default()
        },
    );
    let mut engine = ServeEngine::new(
        ServeConfig {
            lanes: params.lanes,
            session_window_ms: params.session_window_ms,
            report_interval_ms: params.report_interval_ms,
            lateness_ms,
            ..ServeConfig::default()
        },
        BatchProfiler::new(profiler, params.threads),
        None,
    );
    let mut ticks = Vec::new();
    for pkt in packets {
        ticks.extend(engine.ingest_packet(pkt));
    }
    ticks.extend(engine.flush());
    let rows = ticks
        .iter()
        .flat_map(|t| {
            t.entries.iter().map(move |e| {
                (
                    t.boundary,
                    e.user,
                    e.anchor,
                    e.profile.as_ref().map(fingerprint),
                )
            })
        })
        .collect();
    (rows, engine.windower().late_dropped())
}

/// The batch reference: a single observer consumes the same delivered
/// stream, each user's observations are time-sorted (stable, so equal
/// times keep delivery order exactly as the windower does), and every
/// report boundary up to the flush tick is recomputed naively — oracle
/// windowing at the user's freshest anchor, sequential profiling.
fn batch_rows(
    packets: &[Packet],
    params: &CaseParams,
    embeddings: &EmbeddingSet,
    ontology: &Ontology,
) -> Vec<Row> {
    let mut observer = SniObserver::new();
    for pkt in packets {
        observer.process(pkt);
    }
    let mut timelines: BTreeMap<u32, Vec<(u64, String)>> = BTreeMap::new();
    for obs in observer.take_observations() {
        timelines
            .entry(obs.client_ip)
            .or_default()
            .push((obs.t_ms, obs.hostname));
    }
    for tl in timelines.values_mut() {
        tl.sort_by_key(|(t, _)| *t); // stable: ties keep delivery order
    }
    let Some(max_t) = packets.iter().map(|p| p.t_ms).max() else {
        return Vec::new();
    };
    let profiler = Profiler::new(
        embeddings,
        ontology,
        ProfilerConfig {
            n_neighbors: params.n_neighbors,
            ..ProfilerConfig::default()
        },
    );
    let interval = params.report_interval_ms;
    let mut rows = Vec::new();
    let mut prev: Option<u64> = None;
    let mut boundary = interval;
    loop {
        for (&user, tl) in &timelines {
            let upto = tl.partition_point(|(t, _)| *t <= boundary);
            if upto == 0 {
                continue;
            }
            let anchor = tl[upto - 1].0;
            if prev.is_some_and(|p| anchor <= p) {
                continue; // already reported at an earlier boundary
            }
            let names = window::session_window(tl, anchor, params.session_window_ms, &|_| false);
            let session = Session::from_window(names.iter().map(String::as_str), None);
            rows.push((
                boundary,
                user,
                anchor,
                profiler.profile(&session).map(|p| fingerprint(&p)),
            ));
        }
        prev = Some(boundary);
        if boundary > max_t {
            break; // this was the flush tick past the last packet
        }
        boundary += interval;
    }
    rows
}

fn assert_rows_match(got: &[Row], want: &[Row], seed: u64, what: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{what}: {} streamed rows vs {} batch rows — add `cc {seed:016x}` to \
         tests/regressions/streaming_equivalence.txt",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g, w,
            "{what}: row {i} diverged — add `cc {seed:016x}` to \
             tests/regressions/streaming_equivalence.txt"
        );
    }
}

// ---------------------------------------------------------------------
// Property 1: ANY delivery interleaving — chaos mutations, garbage
// flows, even a full shuffle — yields profiles bit-identical to the
// batch recomputation, for every lane count, when ticks defer to flush.
// Both sides see the same delivered stream, so no mangling excuses a
// divergence.
// ---------------------------------------------------------------------

#[test]
fn any_interleaving_matches_batch_on_500_seeded_cases() {
    let (embeddings, ontology) = tiny_model();
    // Far beyond any simulated timestamp: the watermark never advances,
    // so every tick fires at flush with the complete event set.
    let deferred = u64::MAX / 4;
    for seed in schedule(0x57e0_0001) {
        let mut rng = seed;
        let params = CaseParams::draw(&mut rng);
        let mut packets = workload(&mut rng);
        let chaos_cfg = match splitmix(&mut rng) % 3 {
            0 => {
                let mut c = ChaosConfig::quiescent(splitmix(&mut rng));
                c.interleave = true; // pure flow reordering, no mutation
                c
            }
            1 => ChaosConfig::with_seed(splitmix(&mut rng)),
            _ => ChaosConfig::aggressive(splitmix(&mut rng)),
        };
        packets = chaos::apply(&chaos_cfg, &packets).packets;
        if splitmix(&mut rng).is_multiple_of(4) {
            // Fisher–Yates: a completely arbitrary delivery order, far
            // beyond anything a real network would do.
            for i in (1..packets.len()).rev() {
                packets.swap(i, (splitmix(&mut rng) % (i as u64 + 1)) as usize);
            }
        }
        let (got, _) = engine_rows(&packets, &params, deferred, &embeddings, &ontology);
        let want = batch_rows(&packets, &params, &embeddings, &ontology);
        assert_rows_match(
            &got,
            &want,
            seed,
            &format!("deferred ticks, {} lanes", params.lanes),
        );
    }
}

// ---------------------------------------------------------------------
// Property 2: bounded-disorder delivery with LIVE ticks — per-packet
// jitter strictly inside the default lateness bound, ticks firing off
// the watermark as packets arrive. The watermark must hold every tick
// long enough that nothing is late-dropped, and every released tick
// must already match the batch reference.
// ---------------------------------------------------------------------

#[test]
fn bounded_disorder_live_ticks_match_batch_on_500_seeded_cases() {
    let (embeddings, ontology) = tiny_model();
    let lateness = ServeConfig::default().lateness_ms;
    for seed in schedule(0x57e0_0002) {
        let mut rng = seed;
        let params = CaseParams::draw(&mut rng);
        let packets = workload(&mut rng);
        // Stable sort by (t + jitter): each packet may be overtaken only
        // by packets at most `jitter_max` ahead of it in event time, so
        // every arrival stays inside the watermark's lateness margin.
        let jitter_max = lateness - 501; // fragment spread eats ≤ 2 ms
        let mut keyed: Vec<(u64, &Packet)> = packets
            .iter()
            .map(|p| (p.t_ms + splitmix(&mut rng) % jitter_max, p))
            .collect();
        keyed.sort_by_key(|(k, _)| *k);
        let delivered: Vec<Packet> = keyed.into_iter().map(|(_, p)| p.clone()).collect();
        let (got, late_dropped) =
            engine_rows(&delivered, &params, lateness, &embeddings, &ontology);
        assert_eq!(
            late_dropped, 0,
            "disorder within the lateness bound must never drop — add \
             `cc {seed:016x}` to tests/regressions/streaming_equivalence.txt"
        );
        let want = batch_rows(&delivered, &params, &embeddings, &ontology);
        assert_rows_match(
            &got,
            &want,
            seed,
            &format!("live ticks, {} lanes", params.lanes),
        );
    }
}
