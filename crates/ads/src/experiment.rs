//! The month-long CTR experiment (Sections 5 and 6 of the paper).
//!
//! The driver replays a synthetic browsing trace through the full loop:
//!
//! * **daily retraining** — each simulated day starts by training a fresh
//!   SKIPGRAM model on the previous day's per-user sequences (§5.4);
//! * **10-minute reports** — browsing activity triggers extension reports;
//!   each report profiles the user's last 20 minutes and fetches a
//!   20-ad replacement list valid for the next 10 minutes (§5.2, §5.4);
//! * **impressions** — site page views show ads served by the ad-network
//!   mix; the extension replaces an ad only when the list holds a creative
//!   of the same pixel size (§5.3);
//! * **clicks** — sampled from the ground-truth click model, giving a
//!   per-user paired CTR sample: "Original" vs "Eavesdropper" ads (§6.4);
//! * **Figure 6 bookkeeping** — daily top-level-topic histograms of visited
//!   (labeled) hostnames, of ads served by the network, and of ads chosen
//!   by the eavesdropper.

use crate::ad::{AdDatabase, AdId};
use crate::click::ClickModel;
use crate::eavesdropper::{EavesdropperSelector, SelectorConfig};
use crate::network::{AdNetwork, AdNetworkConfig};
use hostprof_core::{Pipeline, PipelineConfig, Session, SessionProfile};
use hostprof_ontology::CategoryVector;
use hostprof_synth::trace::DAY_MS;
use hostprof_synth::{HostKind, Population, Trace, World};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Experiment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Profiling back-end parameters (T = 20 min, reports every 10 min,
    /// gensim-default SKIPGRAM, N = 1000).
    pub pipeline: PipelineConfig,
    /// Eavesdropper ad selection (20 hosts per profile).
    pub selector: SelectorConfig,
    /// Ad-network mix and visibility.
    pub network: AdNetworkConfig,
    /// Ground-truth click behaviour.
    pub click: ClickModel,
    /// Probability that a site page view creates an ad impression.
    pub impression_prob: f64,
    /// Probability that the extension *attempts* a replacement when it has
    /// a fresh list; the attempt succeeds only if the list holds a
    /// size-matched creative. Tuned so the overall replaced share lands
    /// near the paper's 41 K / 270 K ≈ 15 %.
    pub replace_prob: f64,
    /// How many previous days feed each day's model. The paper trains on
    /// one day of 1329 heavy users (§5.4) — orders of magnitude more
    /// tokens than one synthetic day — and notes that "the amount of data
    /// used for training is configurable". A multi-day window restores the
    /// paper's per-model token budget at our scale (see the
    /// `embed_quality` binary for the sensitivity sweep).
    pub training_days: u32,
    /// Worker threads for the batched report-tick profiling. Profiling
    /// consumes no randomness, so the thread count never changes results.
    pub profile_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            selector: SelectorConfig::default(),
            network: AdNetworkConfig::default(),
            click: ClickModel::default(),
            impression_prob: 0.3,
            replace_prob: 0.155,
            training_days: 7,
            profile_threads: 4,
            seed: 0x5eed_00ad,
        }
    }
}

/// Per-user paired CTR bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserCtr {
    /// Eavesdropper-ad impressions shown to this user.
    pub eaves_impressions: u64,
    /// Clicks on eavesdropper ads.
    pub eaves_clicks: u64,
    /// Original (ad-network) impressions.
    pub orig_impressions: u64,
    /// Clicks on original ads.
    pub orig_clicks: u64,
}

impl UserCtr {
    /// CTR of eavesdropper ads (None when no impressions).
    pub fn eaves_ctr(&self) -> Option<f64> {
        (self.eaves_impressions > 0)
            .then(|| self.eaves_clicks as f64 / self.eaves_impressions as f64)
    }

    /// CTR of original ads (None when no impressions).
    pub fn orig_ctr(&self) -> Option<f64> {
        (self.orig_impressions > 0).then(|| self.orig_clicks as f64 / self.orig_impressions as f64)
    }
}

/// Everything the evaluation section needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Per-user CTR pairs, indexed by `UserId`.
    pub per_user: Vec<UserCtr>,
    /// Ads replaced by the extension (the paper's 41 K).
    pub replaced: u64,
    /// Total ad impressions (the paper's 270 K).
    pub impressions: u64,
    /// Reports sent by extensions.
    pub reports: u64,
    /// Sessions successfully profiled.
    pub profiles: u64,
    /// Models trained (one per profiled day).
    pub models_trained: u64,
    /// Daily top-level-topic mass of visited labeled hostnames
    /// (`[day][topic]`, unnormalized) — Figure 6a.
    pub daily_topics_visits: Vec<Vec<f64>>,
    /// Same for ads served by the ad-network — Figure 6b.
    pub daily_topics_original: Vec<Vec<f64>>,
    /// Same for eavesdropper ads — Figure 6c.
    pub daily_topics_eaves: Vec<Vec<f64>>,
}

impl ExperimentResult {
    /// Aggregate eavesdropper CTR.
    pub fn eaves_ctr(&self) -> f64 {
        let (i, c) = self.per_user.iter().fold((0u64, 0u64), |(i, c), u| {
            (i + u.eaves_impressions, c + u.eaves_clicks)
        });
        if i == 0 {
            0.0
        } else {
            c as f64 / i as f64
        }
    }

    /// Aggregate original-ad CTR.
    pub fn orig_ctr(&self) -> f64 {
        let (i, c) = self.per_user.iter().fold((0u64, 0u64), |(i, c), u| {
            (i + u.orig_impressions, c + u.orig_clicks)
        });
        if i == 0 {
            0.0
        } else {
            c as f64 / i as f64
        }
    }

    /// Paired per-user CTR samples (users who saw both ad kinds), as
    /// `(eavesdropper, original)` — the input to the §6.4 paired t-test.
    pub fn ctr_pairs(&self) -> (Vec<f64>, Vec<f64>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in &self.per_user {
            if let (Some(e), Some(o)) = (u.eaves_ctr(), u.orig_ctr()) {
                a.push(e);
                b.push(o);
            }
        }
        (a, b)
    }

    /// Fraction of impressions the extension replaced.
    pub fn replaced_fraction(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.replaced as f64 / self.impressions as f64
        }
    }
}

/// What the eavesdropper actually saw on the wire: per-client-IP
/// hostname timelines plus the user → client-IP mapping. When a
/// [`CtrExperiment`] is given a view, the eavesdropper side of the loop
/// (model training and report-window profiling) reads from it instead
/// of ground truth, while the ad network, report cadence, impressions
/// and clicks stay ground truth — exactly the asymmetry a deployed
/// defense creates (DESIGN.md §15). Under NAT several users share a
/// timeline, so each profiles a blended household.
#[derive(Debug, Clone, Default)]
pub struct ObservedView {
    /// Per-client-IP `(t_ms, hostname)` observations, time-sorted.
    pub timelines: std::collections::BTreeMap<u32, Vec<(u64, String)>>,
    /// Client IP of each user (indexed by `UserId`).
    pub client_of_user: Vec<u32>,
}

impl ObservedView {
    /// One observed hostname sequence per client IP restricted to `day`,
    /// mirroring `Trace::daily_sequences` ([start, end) on `t_ms`).
    /// Clients with no observations that day are omitted.
    pub fn daily_sequences(&self, day: u32) -> Vec<Vec<&str>> {
        let start = day as u64 * DAY_MS;
        let end = start + DAY_MS;
        let mut out = Vec::new();
        for seq in self.timelines.values() {
            let lo = seq.partition_point(|&(t, _)| t < start);
            let hi = seq.partition_point(|&(t, _)| t < end);
            if lo < hi {
                out.push(seq[lo..hi].iter().map(|(_, h)| h.as_str()).collect());
            }
        }
        out
    }

    /// The observed session window ending at `end_ms` for `user`'s
    /// client IP, mirroring `Trace::window`'s `(end − duration, end]`
    /// semantics (a window reaching t = 0 keeps the request stamped 0).
    pub fn window(&self, user: usize, end_ms: u64, duration_ms: u64) -> Vec<&str> {
        let Some(&ip) = self.client_of_user.get(user) else {
            return Vec::new();
        };
        let Some(seq) = self.timelines.get(&ip) else {
            return Vec::new();
        };
        let lo = match end_ms.checked_sub(duration_ms) {
            None => 0,
            Some(0) if duration_ms > 0 => 0,
            Some(start) => seq.partition_point(|&(t, _)| t <= start),
        };
        let hi = seq.partition_point(|&(t, _)| t <= end_ms);
        seq[lo..hi].iter().map(|(_, h)| h.as_str()).collect()
    }
}

/// Per-user extension state during the replay.
#[derive(Debug, Clone, Default)]
struct ExtensionState {
    last_report_ms: Option<u64>,
    /// Current replacement list and its expiry.
    list: Vec<AdId>,
    list_expiry_ms: u64,
}

/// The experiment driver.
pub struct CtrExperiment<'a> {
    world: &'a World,
    population: &'a Population,
    trace: &'a Trace,
    db: &'a AdDatabase,
    config: ExperimentConfig,
    view: Option<&'a ObservedView>,
}

impl<'a> CtrExperiment<'a> {
    /// Bind the experiment inputs.
    pub fn new(
        world: &'a World,
        population: &'a Population,
        trace: &'a Trace,
        db: &'a AdDatabase,
        config: ExperimentConfig,
    ) -> Self {
        Self {
            world,
            population,
            trace,
            db,
            config,
            view: None,
        }
    }

    /// Restrict the *eavesdropper's* inputs (training corpus + report
    /// profiling windows) to an observed view; ground truth keeps driving
    /// everything else. Profiling consumes no randomness, so the RNG
    /// stream — and with it every impression/click draw — is unchanged,
    /// which makes the CTR gap attributable to the defense alone.
    pub fn with_view(mut self, view: &'a ObservedView) -> Self {
        self.view = Some(view);
        self
    }

    /// Run the replay. Day 0 is warm-up (training data only); profiling
    /// and ad serving run on days `1 .. trace.days()`.
    pub fn run(&self) -> ExperimentResult {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let pipeline = Pipeline::new(self.config.pipeline.clone(), self.world.blocklist().clone());
        let selector =
            EavesdropperSelector::new(self.db, self.world.ontology(), self.config.selector.clone());
        let mut network = AdNetwork::new(self.config.network.clone());
        let hierarchy = self.world.hierarchy();
        let n_top = hierarchy.num_top();
        let days = self.trace.days();

        let mut result = ExperimentResult {
            per_user: vec![UserCtr::default(); self.population.len()],
            replaced: 0,
            impressions: 0,
            reports: 0,
            profiles: 0,
            models_trained: 0,
            daily_topics_visits: vec![vec![0.0; n_top]; days as usize],
            daily_topics_original: vec![vec![0.0; n_top]; days as usize],
            daily_topics_eaves: vec![vec![0.0; n_top]; days as usize],
        };
        let mut ext: Vec<ExtensionState> = vec![ExtensionState::default(); self.population.len()];

        let requests = self.trace.requests();
        for day in 1..days {
            // Train on the trailing window of previous days (the paper's
            // "previous day", widened to match its token budget at our
            // synthetic scale — see `training_days`).
            let first_day = day.saturating_sub(self.config.training_days.max(1));
            let mut sequences: Vec<Vec<&str>> = Vec::new();
            for train_day in first_day..day {
                match self.view {
                    // The eavesdropper trains on what it observed, not on
                    // ground truth.
                    Some(view) => sequences.extend(view.daily_sequences(train_day)),
                    None => {
                        sequences.extend(self.trace.daily_sequences(train_day).into_iter().map(
                            |(_, seq)| {
                                seq.into_iter()
                                    .map(|h| self.world.hostname(h))
                                    .collect::<Vec<&str>>()
                            },
                        ))
                    }
                }
            }
            // An idle training window (e.g. no browsing yesterday) leaves
            // the eavesdropper without a model: ad-network ads still run,
            // the extension just has nothing to replace them with.
            let embeddings = match pipeline.train_model(&sequences) {
                Ok(e) => {
                    result.models_trained += 1;
                    Some(e)
                }
                Err(_) => None,
            };
            let batch_profiler = embeddings.as_ref().map(|e| {
                pipeline.batch_profiler(e, self.world.ontology(), self.config.profile_threads)
            });

            // Replay the day's requests in time order.
            let start = day as u64 * DAY_MS;
            let end = start + DAY_MS;
            let lo = requests.partition_point(|r| r.t_ms < start);
            let hi = requests.partition_point(|r| r.t_ms < end);

            // Pre-pass: the report cadence depends only on request times,
            // never on the RNG, so the day's due reports are known up
            // front. Walk them once, grouping by 10-minute report tick,
            // and profile each tick's active users in one batched,
            // multi-threaded call. The replay below then consumes the
            // profiles in the same order it rediscovers the reports.
            let mut scheduled: std::collections::VecDeque<Option<SessionProfile>> =
                std::collections::VecDeque::new();
            if let Some(batch) = batch_profiler.as_ref() {
                let interval = self.config.pipeline.report_interval_ms();
                let mut clocks: Vec<Option<u64>> = ext.iter().map(|s| s.last_report_ms).collect();
                let mut pending: Vec<Session> = Vec::new();
                let mut pending_tick = 0u64;
                let flush =
                    |pending: &mut Vec<Session>,
                     scheduled: &mut std::collections::VecDeque<Option<SessionProfile>>| {
                        scheduled.extend(batch.profile_sessions(pending));
                        pending.clear();
                    };
                for r in &requests[lo..hi] {
                    let host = self.world.host(r.host);
                    if !matches!(host.kind, HostKind::Site | HostKind::Core) {
                        continue;
                    }
                    let clock = &mut clocks[r.user.index()];
                    let due = clock.map(|t| r.t_ms >= t + interval).unwrap_or(true);
                    if !due {
                        continue;
                    }
                    *clock = Some(r.t_ms);
                    let tick = (r.t_ms - start) / interval;
                    if tick != pending_tick && !pending.is_empty() {
                        flush(&mut pending, &mut scheduled);
                    }
                    pending_tick = tick;
                    let w = self.config.pipeline.session_window_ms();
                    let hostnames: Vec<&str> = match self.view {
                        // The report profiles the *observed* window —
                        // decoys included, hidden hostnames gone.
                        Some(view) => view.window(r.user.index(), r.t_ms, w),
                        None => {
                            // Borrow-friendly two-step: ids, then names.
                            let window = self.trace.window(r.user, r.t_ms, w);
                            window.iter().map(|h| self.world.hostname(*h)).collect()
                        }
                    };
                    pending.push(Session::from_window(
                        hostnames.iter().copied(),
                        Some(pipeline.blocklist()),
                    ));
                }
                if !pending.is_empty() {
                    flush(&mut pending, &mut scheduled);
                }
            }
            for r in &requests[lo..hi] {
                let host = self.world.host(r.host);
                let day_idx = day as usize;

                // Figure 6a: labeled connections by top topic.
                if let Some(cats) = self.world.ontology().lookup(&host.name) {
                    add_topics(&mut result.daily_topics_visits[day_idx], hierarchy, cats);
                }

                let is_page_visit = matches!(host.kind, HostKind::Site | HostKind::Core);
                if !is_page_visit {
                    continue;
                }
                // Ad-network's tracker sees the visit (cookie profile).
                network.observe_visit(&mut rng, self.world, r.user, r.host);

                // Extension report cadence.
                let state = &mut ext[r.user.index()];
                let due = state
                    .last_report_ms
                    .map(|t| r.t_ms >= t + self.config.pipeline.report_interval_ms())
                    .unwrap_or(true);
                if due {
                    state.last_report_ms = Some(r.t_ms);
                    result.reports += 1;
                    if batch_profiler.is_some() {
                        // The pre-pass profiled this report already; its
                        // queue yields reports in the same order.
                        let profile = scheduled
                            .pop_front()
                            .expect("pre-pass scheduled every due report");
                        if let Some(profile) = profile {
                            result.profiles += 1;
                            let list = selector.select(&profile.categories);
                            if !list.is_empty() {
                                state.list = list;
                                state.list_expiry_ms =
                                    r.t_ms + self.config.pipeline.report_interval_ms();
                            }
                        }
                    }
                }

                // Impression?
                if !rng.gen_bool(self.config.impression_prob) {
                    continue;
                }
                let Some((orig_id, _kind)) =
                    network.serve(&mut rng, self.world, self.db, r.user, r.host)
                else {
                    continue;
                };
                result.impressions += 1;
                let orig = self.db.ad(orig_id);

                // Replacement decision: fresh list + size match.
                let state = &mut ext[r.user.index()];
                let fresh = !state.list.is_empty() && r.t_ms <= state.list_expiry_ms;
                let replacement = if fresh && rng.gen_bool(self.config.replace_prob) {
                    state
                        .list
                        .iter()
                        .copied()
                        .find(|id| self.db.ad(*id).size == orig.size)
                } else {
                    None
                };

                let user = self.population.user(r.user);
                let ctr = &mut result.per_user[r.user.index()];
                match replacement {
                    Some(eaves_id) => {
                        let ad = self.db.ad(eaves_id);
                        result.replaced += 1;
                        ctr.eaves_impressions += 1;
                        if self.config.click.clicks(&mut rng, user, ad) {
                            ctr.eaves_clicks += 1;
                        }
                        if ad.labeled {
                            add_topics(
                                &mut result.daily_topics_eaves[day_idx],
                                hierarchy,
                                &ad.categories,
                            );
                        }
                    }
                    None => {
                        ctr.orig_impressions += 1;
                        if self.config.click.clicks(&mut rng, user, orig) {
                            ctr.orig_clicks += 1;
                        }
                        if orig.labeled {
                            add_topics(
                                &mut result.daily_topics_original[day_idx],
                                hierarchy,
                                &orig.categories,
                            );
                        }
                    }
                }
            }
        }
        result
    }
}

fn add_topics(acc: &mut [f64], hierarchy: &hostprof_ontology::Hierarchy, cats: &CategoryVector) {
    for (t, w) in hierarchy.project_to_top(cats).into_iter().enumerate() {
        acc[t] += w as f64;
    }
}

/// Normalize a daily topic histogram to percentage shares (rows summing to
/// 100, all-zero rows left as zeros). Shared by the Figure 6 binaries.
pub fn to_percent_shares(daily: &[Vec<f64>]) -> Vec<Vec<f64>> {
    daily
        .iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            if total <= 0.0 {
                row.clone()
            } else {
                row.iter().map(|v| v / total * 100.0).collect()
            }
        })
        .collect()
}

/// Per-user profile-accuracy validation against ground truth: mean
/// cosine between each profiled session's categories and the user's
/// ground-truth interests, measured over `sample_users` users on one day.
pub fn mean_profile_accuracy(
    world: &World,
    population: &Population,
    trace: &Trace,
    pipeline: &Pipeline,
    day: u32,
    sample_users: usize,
) -> Option<f64> {
    let sequences: Vec<Vec<&str>> = trace
        .daily_sequences(day.checked_sub(1)?)
        .into_iter()
        .map(|(_, seq)| seq.into_iter().map(|h| world.hostname(h)).collect())
        .collect();
    let embeddings = pipeline.train_model(&sequences).ok()?;
    let profiler = pipeline.profiler(&embeddings, world.ontology());

    let mut acc = 0f64;
    let mut n = 0usize;
    for user in population.users().iter().take(sample_users) {
        // Profile the user's last session of the day.
        let reqs: Vec<_> = trace
            .user_requests(user.id)
            .filter(|r| r.t_ms >= day as u64 * DAY_MS && r.t_ms < (day as u64 + 1) * DAY_MS)
            .collect();
        let Some(last) = reqs.last() else { continue };
        let window = trace.window(user.id, last.t_ms, pipeline.config().session_window_ms());
        let hostnames: Vec<&str> = window.iter().map(|h| world.hostname(*h)).collect();
        let session = Session::from_window(hostnames.iter().copied(), Some(pipeline.blocklist()));
        if let Some(profile) = profiler.profile(&session) {
            acc += hostprof_core::profile_accuracy(&profile.categories, &user.interests) as f64;
            n += 1;
        }
    }
    (n > 0).then(|| acc / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_embed::SkipGramConfig;
    use hostprof_synth::{PopulationConfig, TraceConfig, WorldConfig};

    fn tiny_experiment() -> ExperimentResult {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let trace = Trace::generate(
            &world,
            &pop,
            &TraceConfig {
                days: 3,
                ..TraceConfig::tiny()
            },
        );
        let db = AdDatabase::generate(&world, 600, 31);
        let config = ExperimentConfig {
            pipeline: PipelineConfig {
                skipgram: SkipGramConfig {
                    epochs: 3,
                    dim: 24,
                    subsample: 0.0,
                    ..SkipGramConfig::default()
                },
                ..PipelineConfig::default()
            },
            ..Default::default()
        };
        CtrExperiment::new(&world, &pop, &trace, &db, config).run()
    }

    #[test]
    fn experiment_produces_both_ad_populations() {
        let r = tiny_experiment();
        assert!(r.impressions > 100, "impressions {}", r.impressions);
        assert!(r.replaced > 0, "some ads replaced");
        assert!(r.replaced < r.impressions, "not everything replaced");
        assert!(r.reports > 0);
        assert!(r.profiles > 0);
        assert_eq!(r.models_trained, 2, "days 1 and 2 trained");
    }

    #[test]
    fn replacement_preserves_creative_size_by_construction() {
        // Structural property validated through counts: replaced ≤ eaves
        // impressions equality.
        let r = tiny_experiment();
        let eaves: u64 = r.per_user.iter().map(|u| u.eaves_impressions).sum();
        assert_eq!(eaves, r.replaced);
    }

    #[test]
    fn ctrs_are_probabilities_and_pairs_align() {
        let r = tiny_experiment();
        assert!((0.0..=1.0).contains(&r.eaves_ctr()));
        assert!((0.0..=1.0).contains(&r.orig_ctr()));
        let (a, b) = r.ctr_pairs();
        assert_eq!(a.len(), b.len());
        for v in a.iter().chain(&b) {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn topic_histograms_cover_profiled_days_only() {
        let r = tiny_experiment();
        assert!(
            r.daily_topics_visits[0].iter().all(|&v| v == 0.0),
            "day 0 is warm-up"
        );
        let day1: f64 = r.daily_topics_visits[1].iter().sum();
        assert!(day1 > 0.0, "labeled visits recorded on day 1");
        let shares = to_percent_shares(&r.daily_topics_visits);
        let s: f64 = shares[1].iter().sum();
        assert!((s - 100.0).abs() < 1e-6);
    }

    #[test]
    fn replaced_fraction_is_moderate() {
        let r = tiny_experiment();
        let f = r.replaced_fraction();
        assert!(f > 0.02 && f < 0.6, "replaced fraction {f}");
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = tiny_experiment();
        let b = tiny_experiment();
        assert_eq!(a.per_user, b.per_user);
        assert_eq!(a.replaced, b.replaced);
    }

    #[test]
    fn ground_truth_view_reproduces_the_plain_experiment_bitwise() {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let trace = Trace::generate(
            &world,
            &pop,
            &TraceConfig {
                days: 3,
                ..TraceConfig::tiny()
            },
        );
        let db = AdDatabase::generate(&world, 600, 31);
        let config = ExperimentConfig {
            pipeline: PipelineConfig {
                skipgram: SkipGramConfig {
                    epochs: 3,
                    dim: 24,
                    subsample: 0.0,
                    ..SkipGramConfig::default()
                },
                ..PipelineConfig::default()
            },
            ..Default::default()
        };
        // A view that mirrors ground truth exactly: one timeline per
        // user, every request visible.
        let mut view = ObservedView {
            client_of_user: (0..pop.len() as u32).collect(),
            ..Default::default()
        };
        for r in trace.requests() {
            view.timelines
                .entry(r.user.0)
                .or_default()
                .push((r.t_ms, world.hostname(r.host).to_string()));
        }
        let plain = CtrExperiment::new(&world, &pop, &trace, &db, config.clone()).run();
        let viewed = CtrExperiment::new(&world, &pop, &trace, &db, config)
            .with_view(&view)
            .run();
        assert_eq!(plain.per_user, viewed.per_user);
        assert_eq!(plain.replaced, viewed.replaced);
        assert_eq!(plain.profiles, viewed.profiles);
        assert_eq!(plain.daily_topics_eaves, viewed.daily_topics_eaves);
    }

    #[test]
    fn profile_accuracy_helper_returns_a_valid_cosine() {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let trace = Trace::generate(
            &world,
            &pop,
            &TraceConfig {
                days: 2,
                ..TraceConfig::tiny()
            },
        );
        let pipeline = Pipeline::new(
            PipelineConfig {
                skipgram: SkipGramConfig {
                    epochs: 3,
                    dim: 24,
                    subsample: 0.0,
                    ..SkipGramConfig::default()
                },
                ..PipelineConfig::default()
            },
            world.blocklist().clone(),
        );
        let acc = mean_profile_accuracy(&world, &pop, &trace, &pipeline, 1, 10)
            .expect("some sessions profiled");
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.05, "profiles carry signal: {acc}");
    }
}
