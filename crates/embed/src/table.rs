//! The negative-sampling table.
//!
//! Negative hosts are drawn from the empirical unigram distribution raised
//! to the 3/4 power (Mikolov et al., as cited by the paper's Eq. 2). Like
//! the reference word2vec implementation we precompute a dense table so a
//! draw is a single array lookup — O(1) per negative, which keeps the inner
//! SGD loop tight.

use crate::vocab::Vocab;

/// Exponent applied to unigram counts.
pub const UNIGRAM_POWER: f64 = 0.75;

/// Precomputed sampling table: entry `i` holds a token index with frequency
/// proportional to `count^0.75`.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    table: Vec<u32>,
    /// Vocabulary size the table was built for.
    built_len: usize,
    /// Vocabulary total count the table was built for.
    built_total: u64,
}

impl NegativeTable {
    /// Upper bound on the adaptive table size (word2vec uses 1e8; our
    /// vocabularies are far smaller).
    pub const DEFAULT_SIZE: usize = 1 << 20;

    /// Build from a vocabulary, sizing the table adaptively: ~128 slots
    /// per token (64× finer than word2vec's 100-slots-per-token default at
    /// 1e8 / 1e6-word vocabularies), clamped to [2^16, 2^20]. Every draw
    /// is a random index into the table, so on the paper's few-thousand
    /// host vocabularies a fixed 4 MB table turns each negative into a
    /// cache miss in the SGD hot loop; the adaptive size keeps the table
    /// L2-resident without losing sampling resolution.
    pub fn from_vocab(vocab: &Vocab) -> Self {
        let size = (vocab.len().saturating_mul(128)).clamp(1 << 16, Self::DEFAULT_SIZE);
        Self::with_size(vocab, size)
    }

    /// Build with an explicit table size (≥ vocabulary size recommended).
    pub fn with_size(vocab: &Vocab, size: usize) -> Self {
        let counts = vocab.counts();
        if counts.is_empty() {
            return Self {
                table: Vec::new(),
                built_len: 0,
                built_total: 0,
            };
        }
        let total: f64 = counts.iter().map(|&c| (c as f64).powf(UNIGRAM_POWER)).sum();
        let size = size.max(counts.len());
        let mut table = Vec::with_capacity(size);
        let mut cum = (counts[0] as f64).powf(UNIGRAM_POWER) / total;
        let mut idx = 0u32;
        for i in 0..size {
            table.push(idx);
            if (i + 1) as f64 / size as f64 > cum && (idx as usize) < counts.len() - 1 {
                idx += 1;
                cum += (counts[idx as usize] as f64).powf(UNIGRAM_POWER) / total;
            }
        }
        Self {
            table,
            built_len: counts.len(),
            built_total: vocab.total_count(),
        }
    }

    /// Rebuild policy for incremental training (DESIGN.md §14): the table
    /// must be rebuilt when the vocabulary has **grown** — an appended
    /// token has zero slots, so it could never be drawn as a negative —
    /// or when the counts it was built from have drifted by more than 25%
    /// (the unigram^0.75 mass is then visibly stale). Pure count drift
    /// below that threshold is tolerated: the distribution shifts slowly
    /// and a rebuild costs a full O(table) pass.
    pub fn needs_rebuild(&self, vocab: &Vocab) -> bool {
        vocab.len() != self.built_len
            || vocab.total_count().saturating_mul(4) > self.built_total.saturating_mul(5)
    }

    /// Number of table slots.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (empty vocabulary).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draw a token index using a caller-supplied random value.
    ///
    /// # Panics
    /// Panics on an empty table; callers must not train on an empty
    /// vocabulary.
    #[inline]
    pub fn sample(&self, random: u64) -> u32 {
        self.table[(random % self.table.len() as u64) as usize]
    }

    /// Bounded redraw budget for [`Self::sample_excluding`].
    pub const MAX_REDRAWS: usize = 32;

    /// Draw a negative that differs from `exclude`, redrawing on collision
    /// (word2vec-style, bounded) instead of dropping the sample — a skip
    /// would silently lose one of the K negatives whenever the drawn
    /// negative equals the context word, which is frequent in small or
    /// highly skewed vocabularies.
    ///
    /// Returns `None` only when every redraw collided, e.g. a one-token
    /// vocabulary whose table contains nothing but `exclude`.
    #[inline]
    pub fn sample_excluding(&self, mut draw: impl FnMut() -> u64, exclude: u32) -> Option<u32> {
        for _ in 0..Self::MAX_REDRAWS {
            let idx = self.sample(draw());
            if idx != exclude {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_with_counts() -> Vocab {
        // a: 8, b: 4, c: 1 → powered 4.76, 2.83, 1.0
        let seqs: Vec<Vec<&str>> = vec![vec!["a"; 8], vec!["b"; 4], vec!["c"]];
        Vocab::build(seqs, 1, 0.0)
    }

    #[test]
    fn table_mass_tracks_powered_counts() {
        let v = vocab_with_counts();
        let t = NegativeTable::with_size(&v, 100_000);
        let mut hist = [0usize; 3];
        for i in 0..t.len() {
            hist[t.sample(i as u64) as usize] += 1;
        }
        let total: f64 = (8f64).powf(0.75) + (4f64).powf(0.75) + 1.0;
        let expect_a = (8f64).powf(0.75) / total;
        let got_a = hist[0] as f64 / t.len() as f64;
        assert!((got_a - expect_a).abs() < 0.01, "a: {got_a} vs {expect_a}");
        assert!(hist[2] > 0, "rarest token still sampled");
    }

    #[test]
    fn every_token_appears() {
        let v = vocab_with_counts();
        let t = NegativeTable::with_size(&v, 1000);
        let seen: std::collections::HashSet<u32> =
            (0..t.len()).map(|i| t.sample(i as u64)).collect();
        assert_eq!(seen.len(), v.len());
    }

    #[test]
    fn empty_vocab_builds_empty_table() {
        let v = Vocab::build(Vec::<Vec<&str>>::new(), 1, 0.0);
        let t = NegativeTable::from_vocab(&v);
        assert!(t.is_empty());
    }

    /// xorshift64* matching the trainer's per-worker RNG.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    #[test]
    fn sample_excluding_redraws_instead_of_dropping() {
        // Two-token vocabulary, heavily skewed: ~84% of the table is 'a',
        // so excluding 'a' collides on most draws. A skip-on-collision
        // policy would lose the negative ~84% of the time; the redraw must
        // recover 'b' essentially always.
        let seqs: Vec<Vec<&str>> = vec![vec!["a"; 9], vec!["b"]];
        let v = Vocab::build(seqs, 1, 0.0);
        let t = NegativeTable::with_size(&v, 1024);
        let a = v.get("a").unwrap();
        let b = v.get("b").unwrap();
        let mut state = 0x5eed_1234u64;
        let mut hits = 0usize;
        for _ in 0..1000 {
            if let Some(idx) = t.sample_excluding(|| xorshift(&mut state), a) {
                assert_eq!(idx, b, "redraw may only return the other token");
                hits += 1;
            }
        }
        assert!(hits >= 950, "redraw recovered only {hits}/1000 negatives");
    }

    #[test]
    fn sample_excluding_gives_up_on_one_token_vocab() {
        let seqs: Vec<Vec<&str>> = vec![vec!["solo"; 5]];
        let v = Vocab::build(seqs, 1, 0.0);
        let t = NegativeTable::with_size(&v, 64);
        let mut state = 7u64;
        assert_eq!(t.sample_excluding(|| xorshift(&mut state), 0), None);
    }

    #[test]
    fn rebuild_policy_fires_on_growth_and_large_drift_only() {
        let seqs: Vec<Vec<&str>> = vec![vec!["a"; 8], vec!["b"; 4], vec!["c"]];
        let mut v = Vocab::build(seqs, 1, 0.0);
        let t = NegativeTable::from_vocab(&v);
        assert!(!t.needs_rebuild(&v), "fresh table is current");
        // Count drift below 25%: tolerated.
        v.grow(vec![vec!["a", "b"]], 1, 0.0);
        assert!(!t.needs_rebuild(&v), "2/13 drift tolerated");
        // Any appended token forces a rebuild (it has no slots).
        v.grow(vec![vec!["d"]], 1, 0.0);
        assert!(t.needs_rebuild(&v), "new token is unsampleable");
        let t = NegativeTable::from_vocab(&v);
        assert!(!t.needs_rebuild(&v));
        // Pure count drift past 25% forces a rebuild too.
        v.grow(vec![vec!["a"; 6]], 1, 0.0);
        assert!(t.needs_rebuild(&v), "mass is stale");
    }

    #[test]
    fn empty_table_needs_no_rebuild_for_empty_vocab() {
        let v = Vocab::build(Vec::<Vec<&str>>::new(), 1, 0.0);
        let t = NegativeTable::from_vocab(&v);
        assert!(!t.needs_rebuild(&v));
    }

    #[test]
    fn sample_wraps_random_values() {
        let v = vocab_with_counts();
        let t = NegativeTable::with_size(&v, 64);
        // Any u64 is a valid input.
        let _ = t.sample(u64::MAX);
        let _ = t.sample(0);
    }
}
