//! The online trainer's corpus: a decayed reservoir of recent sessions.
//!
//! An always-on observer cannot retrain on its full history — the point
//! of the incremental path (DESIGN.md §14) is to fold *recent* traffic
//! into the live model between serve ticks. This buffer keeps a bounded,
//! deterministic sample of the session stream with a tunable recency
//! bias: at `bias = 1.0` it is classic Algorithm R (a uniform reservoir);
//! below 1.0 the effective population shrinks, so later sessions replace
//! earlier ones more aggressively and the sample tilts toward the recent
//! past. All replacement decisions come from the same xorshift64* stream
//! the trainer uses, seeded at construction, so a given push sequence
//! always yields the same buffer contents — a requirement for the
//! schedule-level golden replay.

use crate::model::next_random;

/// Bounded, seeded, recency-biased reservoir of training sessions.
#[derive(Debug, Clone)]
pub struct CorpusBuffer {
    capacity: usize,
    bias: f64,
    rng: u64,
    sessions: Vec<Vec<String>>,
    pushed: u64,
}

impl CorpusBuffer {
    /// Uniform-reservoir bias: every session ever pushed is equally
    /// likely to be retained.
    pub const UNIFORM: f64 = 1.0;

    /// Create a buffer holding at most `capacity` sessions.
    ///
    /// `bias` in `(0, 1]` controls the recency tilt: the replacement
    /// probability for a full buffer is `capacity / (capacity + overflow
    /// × bias)` where `overflow` counts the pushes beyond capacity, so
    /// smaller bias keeps that probability high for longer and favors
    /// late arrivals.
    ///
    /// # Panics
    /// Panics on `capacity == 0` or a bias outside `(0, 1]`.
    pub fn new(capacity: usize, bias: f64, seed: u64) -> Self {
        assert!(capacity > 0, "corpus buffer capacity must be positive");
        assert!(
            bias > 0.0 && bias <= 1.0,
            "bias must be in (0, 1], got {bias}"
        );
        Self {
            capacity,
            bias,
            rng: seed | 1,
            sessions: Vec::new(),
            pushed: 0,
        }
    }

    /// Offer one session to the reservoir.
    pub fn push(&mut self, session: Vec<String>) {
        self.pushed += 1;
        if self.sessions.len() < self.capacity {
            self.sessions.push(session);
            return;
        }
        let overflow = (self.pushed - self.capacity as u64) as f64;
        let p = self.capacity as f64 / (self.capacity as f64 + overflow * self.bias);
        // Two draws, in a fixed order: accept, then slot. Drawing the
        // slot unconditionally would also work but would burn stream
        // state on rejected pushes; matching word2vec's habit we draw
        // lazily, and the acceptance draw uses the high 32 bits.
        let accept = (next_random(&mut self.rng) >> 32) as f64 / (1u64 << 32) as f64;
        if accept < p {
            let slot = (next_random(&mut self.rng) % self.capacity as u64) as usize;
            self.sessions[slot] = session;
        }
    }

    /// The retained sessions, in slot order (deterministic for a given
    /// push sequence).
    pub fn sessions(&self) -> &[Vec<String>] {
        &self.sessions
    }

    /// How many sessions were ever offered.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Current number of retained sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(i: u64) -> Vec<String> {
        vec![format!("h{i}.example"), format!("h{}.example", i + 1)]
    }

    #[test]
    fn fills_to_capacity_in_order() {
        let mut b = CorpusBuffer::new(4, CorpusBuffer::UNIFORM, 7);
        for i in 0..4 {
            b.push(session(i));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.sessions()[2][0], "h2.example");
        assert_eq!(b.pushed(), 4);
    }

    #[test]
    fn same_seed_same_pushes_same_buffer() {
        let mut a = CorpusBuffer::new(8, 0.5, 42);
        let mut b = CorpusBuffer::new(8, 0.5, 42);
        for i in 0..200 {
            a.push(session(i));
            b.push(session(i));
        }
        assert_eq!(a.sessions(), b.sessions());
        let mut c = CorpusBuffer::new(8, 0.5, 1042);
        for i in 0..200 {
            c.push(session(i));
        }
        assert_ne!(
            a.sessions(),
            c.sessions(),
            "different seed, different sample"
        );
    }

    #[test]
    fn stays_bounded_under_heavy_pushing() {
        let mut b = CorpusBuffer::new(16, CorpusBuffer::UNIFORM, 1);
        for i in 0..10_000 {
            b.push(session(i));
        }
        assert_eq!(b.len(), 16);
        assert_eq!(b.pushed(), 10_000);
    }

    #[test]
    fn stronger_bias_retains_more_recent_sessions() {
        // Push 0..N through a uniform and a recency-biased reservoir;
        // the biased one must end up with a higher mean session index.
        let n = 5_000u64;
        let mean_index = |bias: f64| -> f64 {
            let mut b = CorpusBuffer::new(32, bias, 9);
            for i in 0..n {
                b.push(session(i));
            }
            let sum: u64 = b
                .sessions()
                .iter()
                .map(|s| s[0][1..s[0].len() - 8].parse::<u64>().unwrap())
                .sum();
            sum as f64 / b.len() as f64
        };
        let uniform = mean_index(CorpusBuffer::UNIFORM);
        let biased = mean_index(0.05);
        assert!(
            biased > uniform + n as f64 / 10.0,
            "recency bias too weak: {biased} vs {uniform}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CorpusBuffer::new(0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "bias must be in (0, 1]")]
    fn out_of_range_bias_panics() {
        let _ = CorpusBuffer::new(4, 0.0, 1);
    }
}
