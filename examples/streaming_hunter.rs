//! Finding mirror sites by embedding similarity.
//!
//! Section 6.2 of the paper observes that sports-streaming hostnames
//! (rojadirecta.me, arenavision2018.tk, …) cluster tightly in embedding
//! space even when they were never co-requested, and speculates the
//! technique "could be used to identify websites hosting illegal streaming
//! [...] as those services frequently move to new hostnames in order to
//! evade justice".
//!
//! This example plays that analyst workflow: start from ONE known
//! streaming site, query the embedding space, and measure how many of the
//! returned neighbors are other sites of the same ground-truth topic —
//! without using the ontology at all.
//!
//! ```text
//! cargo run --release --example streaming_hunter
//! ```

use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof::synth::{HostKind, TraceConfig};

fn main() {
    println!("hostprof streaming_hunter — embedding-space mirror discovery\n");

    // More days = better embeddings (see the embed_quality sweep).
    let cfg = ScenarioConfig {
        trace: TraceConfig {
            days: 8,
            ..TraceConfig::default()
        },
        ..ScenarioConfig::tiny()
    };
    let s = Scenario::generate(&cfg);
    let pipeline = s.pipeline();
    let mut sequences = Vec::new();
    for day in 0..s.trace.days() {
        sequences.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&sequences).expect("trace has traffic");

    // The analyst's seed: the most popular Sports site (our stand-in for
    // rojadirecta-style streaming hosts).
    let hierarchy = s.world.hierarchy();
    let sports = hierarchy
        .top_ids()
        .find(|t| hierarchy.top_name(*t) == "Sports")
        .expect("Sports topic exists");
    let seed = s
        .world
        .hosts()
        .iter()
        .filter(|h| {
            h.kind == HostKind::Site
                && h.top_topic == Some(sports)
                && embeddings.vector(&h.name).is_some()
        })
        .max_by(|a, b| a.popularity.partial_cmp(&b.popularity).unwrap())
        .expect("a sports site was browsed");

    println!("seed hostname: {} (topic: Sports)\n", seed.name);
    println!("nearest neighbors in embedding space:");
    println!("  {:<36} {:>8}  ground-truth topic", "hostname", "cosine");

    let neighbors = embeddings.most_similar(&seed.name, 15);
    let mut same_topic = 0usize;
    let mut judged = 0usize;
    for (name, sim) in &neighbors {
        let topic = s
            .world
            .host_id_by_name(name)
            .map(|id| s.world.host(id))
            .and_then(|h| h.top_topic)
            .map(|t| hierarchy.top_name(t).to_string())
            .unwrap_or_else(|| "-".into());
        let mark = if topic == "Sports" {
            "◄ mirror candidate"
        } else {
            ""
        };
        if topic != "-" {
            judged += 1;
            if topic == "Sports" {
                same_topic += 1;
            }
        }
        println!("  {name:<36} {sim:>8.3}  {topic:<26} {mark}");
    }

    let sports_sites = s
        .world
        .hosts()
        .iter()
        .filter(|h| h.kind == HostKind::Site && h.top_topic == Some(sports))
        .count();
    let base_rate = sports_sites as f64 / s.world.config().num_sites as f64;
    println!(
        "\nhit rate: {same_topic}/{judged} same-topic (random baseline ≈ {:.0}%)",
        base_rate * 100.0
    );
    println!("the embedding finds topical siblings with no label, no URL, no page content —");
    println!("only co-request structure observed from encrypted traffic");
}
