//! Offline in-tree subset of the `rand` crate (0.8 API).
//!
//! The workspace builds in a sealed container without crates.io access, so
//! the APIs the codebase uses are vendored with **bit-compatible sampling
//! algorithms** (PCG32-based `seed_from_u64`, widening-multiply integer
//! ranges, 53-bit float conversion, fixed-point Bernoulli) so that seeded
//! streams match what the real `rand 0.8` + `rand_chacha 0.3` pair would
//! produce and the repo's statistically-tuned tests keep their meaning.

use std::ops::{Range, RangeInclusive};

/// The core of every generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the PCG32 expander used by
    /// `rand_core 0.6`, so `seed_from_u64(n)` produces the same generator
    /// state as the real crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable from raw bits with the `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_u32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! impl_standard_u64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_u32!(u8, u16, u32, i8, i16, i32);
impl_standard_u64!(u64, i64, usize, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // High bit of a u32, like rand's Standard for bool.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit multiply conversion: uniform in [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply helper: `(hi, lo)` of `x * y`.
trait WideningMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

macro_rules! impl_wmul {
    ($t:ty, $wide:ty, $bits:expr) => {
        impl WideningMul for $t {
            #[inline]
            fn wmul(self, other: Self) -> (Self, Self) {
                let tmp = (self as $wide) * (other as $wide);
                ((tmp >> $bits) as $t, tmp as $t)
            }
        }
    };
}
impl_wmul!(u32, u64, 32);
impl_wmul!(u64, u128, 64);
impl_wmul!(usize, u128, 64);

macro_rules! impl_int_range {
    ($t:ty, $unsigned:ty, $large:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_int::<$t, $unsigned, $large, R>(self.start, self.end - 1, rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start() <= self.end(),
                    "cannot sample empty inclusive range"
                );
                sample_inclusive_int::<$t, $unsigned, $large, R>(*self.start(), *self.end(), rng)
            }
        }

        impl RangeSampler<$unsigned, $large> for $t {
            #[inline]
            fn to_unsigned_offset(self, low: Self) -> $unsigned {
                self.wrapping_sub(low) as $unsigned
            }
            #[inline]
            fn from_unsigned_offset(low: Self, offset: $large) -> Self {
                low.wrapping_add(offset as $unsigned as $t)
            }
        }
    };
}

/// Per-type glue for the shared widening-multiply rejection sampler.
trait RangeSampler<U, L>: Copy {
    fn to_unsigned_offset(self, low: Self) -> U;
    fn from_unsigned_offset(low: Self, offset: L) -> Self;
}

#[inline]
fn sample_inclusive_int<T, U, L, R>(low: T, high: T, rng: &mut R) -> T
where
    T: RangeSampler<U, L>,
    U: Copy + Into<L>,
    L: Copy + StandardSample + WideningMul + PartialOrd + std::ops::Shl<u32, Output = L> + LargeInt,
    R: RngCore + ?Sized,
{
    let range: L = high.to_unsigned_offset(low).into();
    let range = range.wrapping_add_one();
    if range.is_zero() {
        // Full integer range.
        return T::from_unsigned_offset(low, L::standard_sample(rng));
    }
    // Lemire's widening-multiply method with the same zone computation as
    // rand 0.8 (`(range << lz) - 1`).
    let zone = (range << range.leading_zeros()).wrapping_sub_one();
    loop {
        let v = L::standard_sample(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return T::from_unsigned_offset(low, hi);
        }
    }
}

/// The few integer primitives the generic sampler needs.
trait LargeInt: Copy {
    fn wrapping_add_one(self) -> Self;
    fn wrapping_sub_one(self) -> Self;
    fn is_zero(self) -> bool;
    fn leading_zeros(self) -> u32;
}

macro_rules! impl_large_int {
    ($($t:ty),*) => {$(
        impl LargeInt for $t {
            #[inline]
            fn wrapping_add_one(self) -> Self { self.wrapping_add(1) }
            #[inline]
            fn wrapping_sub_one(self) -> Self { self.wrapping_sub(1) }
            #[inline]
            fn is_zero(self) -> bool { self == 0 }
            #[inline]
            fn leading_zeros(self) -> u32 { <$t>::leading_zeros(self) }
        }
    )*};
}
impl_large_int!(u32, u64, usize);

impl_int_range!(u8, u8, u32);
impl_int_range!(u16, u16, u32);
impl_int_range!(u32, u32, u32);
impl_int_range!(u64, u64, u64);
impl_int_range!(usize, usize, usize);
impl_int_range!(i8, u8, u32);
impl_int_range!(i16, u16, u32);
impl_int_range!(i32, u32, u32);
impl_int_range!(i64, u64, u64);
impl_int_range!(isize, usize, usize);

macro_rules! impl_float_range {
    ($t:ty, $uty:ty, $discard:expr, $bias:expr, $mant:expr) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty float range");
                let mut scale = high - low;
                loop {
                    // Uniform in [1, 2), then shift to [0, 1): rand 0.8's
                    // exponent trick, keeping identical rounding.
                    let bits = <$uty>::standard_raw(rng) >> $discard;
                    let value1_2 = <$t>::from_bits(($bias << $mant) | bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding landed on `high`; tighten the scale by one
                    // ULP and retry (rand's edge-case handling).
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    };
}

/// Raw-word helper so float ranges draw the same words rand would.
trait StandardRaw {
    fn standard_raw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
impl StandardRaw for u32 {
    fn standard_raw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardRaw for u64 {
    fn standard_raw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl_float_range!(f32, u32, 9u32, 127u32, 23);
impl_float_range!(f64, u64, 12u64, 1023u64, 52);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value with the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Uses rand 0.8's 64-bit fixed-point comparison so seeded streams
    /// match the real crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` namespace (kept minimal).
pub mod rngs {
    /// A small-state PCG64-ish generator for tests and tools that do not
    /// need ChaCha streams.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
        inc: u64,
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 16];
        fn from_seed(seed: Self::Seed) -> Self {
            let state = u64::from_le_bytes(seed[..8].try_into().unwrap());
            let inc = u64::from_le_bytes(seed[8..].try_into().unwrap()) | 1;
            Self { state, inc }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64-style output over a Weyl sequence.
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state ^ self.inc.rotate_left(23);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let a = rng.gen_range(3..17u32);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0..=5u64);
            assert!(b <= 5);
            let c = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&c));
            let f = rng.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = Counter(1);
        let xs: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Counter(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn seed_expander_matches_rand_core_pcg32() {
        // Spot-check the PCG32 expansion is deterministic and spreads bits.
        struct Raw([u8; 32]);
        impl SeedableRng for Raw {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Raw(seed)
            }
        }
        impl RngCore for Raw {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        let a = Raw::seed_from_u64(42).0;
        let b = Raw::seed_from_u64(42).0;
        let c = Raw::seed_from_u64(43).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().any(|&x| x != 0));
    }
}
