//! Fault-injection overhead: cost of mutating a stream with `net::chaos`
//! and of the hardened observer absorbing hostile input. The "line rate"
//! claim (§4.1) has to hold on a messy tap, not just on pristine traffic —
//! these benches keep the adversarial path honest alongside `sni_parse`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hostprof_net::{chaos, ChaosConfig, RequestEvent, SniObserver, TrafficSynthesizer};

fn mixed_stream(connections: u64) -> Vec<hostprof_net::Packet> {
    let synth = TrafficSynthesizer::default();
    let events: Vec<RequestEvent> = (0..connections)
        .map(|i| RequestEvent {
            t_ms: i * 20,
            client: (i % 50) as u32,
            hostname: format!("host{}.bench.example.com", i % 97),
        })
        .collect();
    synth.synthesize(&events)
}

fn bench_chaos_apply(c: &mut Criterion) {
    let stream = mixed_stream(500);
    let bytes: u64 = stream.iter().map(|p| p.payload.len() as u64).sum();
    let mut g = c.benchmark_group("chaos");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("apply_balanced_500_conns", |b| {
        b.iter(|| chaos::apply(black_box(&ChaosConfig::with_seed(7)), black_box(&stream)))
    });
    g.bench_function("apply_aggressive_500_conns", |b| {
        b.iter(|| chaos::apply(black_box(&ChaosConfig::aggressive(7)), black_box(&stream)))
    });
    g.finish();
}

fn bench_observer_under_chaos(c: &mut Criterion) {
    let stream = mixed_stream(500);
    let clean_bytes: u64 = stream.iter().map(|p| p.payload.len() as u64).sum();
    let mutated = chaos::apply(&ChaosConfig::aggressive(7), &stream);
    let mut g = c.benchmark_group("observer_chaos");
    g.throughput(Throughput::Bytes(clean_bytes));
    // Baseline: the same stream without mutation, for overhead comparison.
    g.bench_function("clean_stream_500_conns", |b| {
        b.iter(|| {
            let mut obs = SniObserver::new();
            obs.process_stream(black_box(&stream));
            obs.observations().len()
        })
    });
    g.bench_function("mutated_stream_500_conns", |b| {
        b.iter(|| {
            let mut obs = SniObserver::new();
            obs.process_stream(black_box(&mutated.packets));
            obs.observations().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_chaos_apply, bench_observer_under_chaos);
criterion_main!(benches);
