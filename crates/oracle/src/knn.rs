//! Naive exact cosine k-nearest-neighbor scan (§4.3).
//!
//! The production path pre-normalizes rows, runs a cache-tiled SIMD scan
//! and keeps candidates in packed-u64 heaps. The oracle scores every row
//! with a sequential dot product and sorts the whole list — O(V log V)
//! per query, obviously exact. Tie-break matches production: equal
//! similarity → lower row index first.

/// Euclidean norm of `v`, accumulated left to right in f32.
pub fn norm(v: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for &x in v {
        s += x * x;
    }
    s.sqrt()
}

/// The `n` rows most cosine-similar to `query`.
///
/// `rows` is a row-major `len × dim` matrix of *raw* (unnormalized)
/// vectors. Zero-norm rows can match nothing and are skipped; a
/// zero-norm query matches nothing at all. Returns `(row_index,
/// similarity)` sorted by similarity descending, ties by index
/// ascending.
pub fn nearest(rows: &[f32], dim: usize, query: &[f32], n: usize) -> Vec<(u32, f32)> {
    assert_eq!(query.len(), dim, "query dimensionality mismatch");
    assert_eq!(rows.len() % dim.max(1), 0, "ragged row matrix");
    let qn = norm(query);
    if qn <= f32::EPSILON || n == 0 {
        return Vec::new();
    }
    let qhat: Vec<f32> = query.iter().map(|&x| x / qn).collect();

    let mut scored: Vec<(u32, f32)> = Vec::new();
    for (i, row) in rows.chunks_exact(dim).enumerate() {
        let rn = norm(row);
        if rn <= f32::EPSILON {
            continue;
        }
        let mut sim = 0.0f32;
        for d in 0..dim {
            sim += qhat[d] * (row[d] / rn);
        }
        scored.push((i as u32, sim));
    }
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(n);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors_with_index_tiebreak() {
        // Four 2-d rows: two identical directions (indices 1 and 2).
        let rows = [1.0f32, 0.0, 0.0, 1.0, 0.0, 2.0, -1.0, 0.0];
        let got = nearest(&rows, 2, &[0.0, 1.0], 3);
        assert_eq!(got.len(), 3);
        // Both index 1 and 2 have cosine 1.0; the lower index wins.
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        assert!((got[0].1 - 1.0).abs() < 1e-6);
        assert_eq!(got[2].0, 0); // orthogonal, cosine 0
    }

    #[test]
    fn zero_rows_and_zero_queries_match_nothing() {
        let rows = [0.0f32, 0.0, 1.0, 1.0];
        assert_eq!(nearest(&rows, 2, &[0.0, 0.0], 5), vec![]);
        let got = nearest(&rows, 2, &[1.0, 1.0], 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn matches_production_knn_bit_for_bit_at_dim_3() {
        use hostprof_embed::{EmbeddingSet, Vocab};
        // Deterministic ragtag vectors via a tiny LCG.
        let dim = 3;
        let nrows = 40;
        let mut state = 0x00c0_ffeeu64;
        let mut rows = Vec::with_capacity(nrows * dim);
        for _ in 0..nrows * dim {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rows.push(((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5);
        }
        let seqs = [(0..nrows).map(|i| format!("h{i}")).collect::<Vec<_>>()];
        let vocab = Vocab::build(seqs.iter().map(|s| s.iter().map(|t| t.as_str())), 1, 0.0);
        let embeddings = EmbeddingSet::new(dim, vocab, rows.clone());
        let query = [0.3f32, -0.2, 0.7];
        let prod = embeddings.nearest_to_vector(&query, 7);
        let oracle = nearest(&rows, dim, &query, 7);
        assert_eq!(prod.len(), oracle.len());
        for (p, o) in prod.iter().zip(&oracle) {
            assert_eq!(p.0, o.0, "neighbor index diverged");
            assert_eq!(p.1.to_bits(), o.1.to_bits(), "similarity bits diverged");
        }
    }
}
