//! TLS ClientHello codec.
//!
//! The observer's entire visibility into an HTTPS connection is the
//! ClientHello: the `server_name` (SNI) extension leaks the hostname even
//! though everything after the handshake is encrypted (paper §1, §7.2).
//! This module builds and parses ClientHello messages at the byte level:
//!
//! * [`ClientHello::encode`] produces a complete TLS record
//!   (record header → handshake header → body → extensions);
//! * [`ClientHello::parse`] inverts it, strictly and panic-free;
//! * [`extract_sni`] is the observer's zero-copy fast path: it walks the
//!   record and returns the server name as a borrowed `&str` without
//!   building the full structure — this is what makes line-rate profiling
//!   plausible (§4.1 "allowing traffic analysis at line rate").
//!
//! TLS 1.3's `encrypted_client_hello` (ECH) is modeled by the
//! [`ext::ENCRYPTED_CLIENT_HELLO`] extension: when a client sends ECH the
//! real name is hidden and [`extract_sni`] correctly reports nothing —
//! reproducing the paper's countermeasure discussion (§7.4).

use crate::error::ParseError;
use crate::wire::{Reader, Writer};

/// TLS extension type codes used here.
pub mod ext {
    /// `server_name` (RFC 6066).
    pub const SERVER_NAME: u16 = 0;
    /// `application_layer_protocol_negotiation` (RFC 7301).
    pub const ALPN: u16 = 16;
    /// `supported_versions` (RFC 8446).
    pub const SUPPORTED_VERSIONS: u16 = 43;
    /// `encrypted_client_hello` (draft-ietf-tls-esni).
    pub const ENCRYPTED_CLIENT_HELLO: u16 = 0xfe0d;
}

/// TLS record content type for handshake messages.
const CONTENT_HANDSHAKE: u8 = 22;
/// Handshake message type for ClientHello.
const HS_CLIENT_HELLO: u8 = 1;
/// The legacy record/body version fields (TLS 1.0 / TLS 1.2 as used on the
/// modern web).
const LEGACY_RECORD_VERSION: u16 = 0x0301;
const LEGACY_BODY_VERSION: u16 = 0x0303;

/// A raw extension: type code plus opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// Extension type code (see [`ext`]).
    pub ext_type: u16,
    /// Opaque extension body.
    pub data: Vec<u8>,
}

/// A parsed / buildable ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// `legacy_version` of the handshake body (0x0303 on the wire today).
    pub version: u16,
    /// The 32-byte client random.
    pub random: [u8; 32],
    /// Legacy session id (0–32 bytes).
    pub session_id: Vec<u8>,
    /// Offered cipher suites.
    pub cipher_suites: Vec<u16>,
    /// Legacy compression methods (always `[0]` in practice).
    pub compression: Vec<u8>,
    /// Extensions in wire order.
    pub extensions: Vec<Extension>,
}

impl ClientHello {
    /// A realistic ClientHello for `server_name`, with a deterministic
    /// random derived from the name (keeps traffic synthesis reproducible
    /// without threading an RNG through every packet).
    pub fn for_hostname(server_name: &str) -> Self {
        let mut random = [0u8; 32];
        let h = crate::wire::fnv1a(server_name.as_bytes());
        for (i, chunk) in random.chunks_mut(8).enumerate() {
            let v = h.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            chunk.copy_from_slice(&v.to_be_bytes());
        }
        let sni_body = encode_sni_extension(server_name);
        Self {
            version: LEGACY_BODY_VERSION,
            random,
            session_id: vec![0xab; 32],
            cipher_suites: vec![0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f],
            compression: vec![0],
            extensions: vec![
                Extension {
                    ext_type: ext::SERVER_NAME,
                    data: sni_body,
                },
                Extension {
                    ext_type: ext::SUPPORTED_VERSIONS,
                    data: vec![0x02, 0x03, 0x04],
                },
            ],
        }
    }

    /// An ECH-protected ClientHello: the outer message carries only an
    /// `encrypted_client_hello` blob, no readable `server_name`.
    pub fn with_ech(payload_len: usize) -> Self {
        let mut ch = Self::for_hostname("ech.invalid");
        ch.extensions = vec![Extension {
            ext_type: ext::ENCRYPTED_CLIENT_HELLO,
            data: vec![0xec; payload_len.clamp(16, 512)],
        }];
        ch
    }

    /// The server name carried by the `server_name` extension, if any.
    pub fn sni(&self) -> Option<&str> {
        self.extensions
            .iter()
            .find(|e| e.ext_type == ext::SERVER_NAME)
            .and_then(|e| parse_sni_extension(&e.data).ok().flatten())
    }

    /// Whether the hello hides its name behind ECH.
    pub fn has_ech(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| e.ext_type == ext::ENCRYPTED_CLIENT_HELLO)
    }

    /// Serialize the *handshake message* (type + length + body), without
    /// the record layer. QUIC carries exactly this inside CRYPTO frames.
    ///
    /// # Panics
    /// Panics when a field exceeds its wire-format bound (session id over
    /// 32 bytes, an extension body over 65 535 bytes) — silently
    /// truncating a length field would emit a mis-framed record.
    pub fn encode_handshake(&self) -> Vec<u8> {
        assert!(
            self.session_id.len() <= 32,
            "session_id exceeds the 32-byte wire limit"
        );
        for e in &self.extensions {
            assert!(
                e.data.len() <= u16::MAX as usize,
                "extension {:#06x} body exceeds the u16 wire limit",
                e.ext_type
            );
        }
        let mut w = Writer::new();
        w.put_u8(HS_CLIENT_HELLO);
        let hs_len = w.reserve_len(3);
        w.put_u16(self.version);
        w.put_bytes(&self.random);
        w.put_u8(self.session_id.len() as u8);
        w.put_bytes(&self.session_id);
        w.put_u16((self.cipher_suites.len() * 2) as u16);
        for cs in &self.cipher_suites {
            w.put_u16(*cs);
        }
        w.put_u8(self.compression.len() as u8);
        w.put_bytes(&self.compression);
        let ext_len = w.reserve_len(2);
        for e in &self.extensions {
            w.put_u16(e.ext_type);
            w.put_u16(e.data.len() as u16);
            w.put_bytes(&e.data);
        }
        w.patch_len(ext_len);
        w.patch_len(hs_len);
        w.into_bytes()
    }

    /// Serialize as a complete TLS record — what a TCP observer sees as the
    /// first client payload of an HTTPS flow.
    ///
    /// # Panics
    /// As [`ClientHello::encode_handshake`], plus when the whole handshake
    /// exceeds the record layer's u16 length field.
    pub fn encode(&self) -> Vec<u8> {
        let hs = self.encode_handshake();
        assert!(
            hs.len() <= u16::MAX as usize,
            "handshake exceeds a single record's u16 length"
        );
        let mut w = Writer::new();
        w.put_u8(CONTENT_HANDSHAKE);
        w.put_u16(LEGACY_RECORD_VERSION);
        w.put_u16(hs.len() as u16);
        w.put_bytes(&hs);
        w.into_bytes()
    }

    /// Parse a complete TLS record containing a ClientHello.
    pub fn parse(record: &[u8]) -> Result<Self, ParseError> {
        let mut r = Reader::new(record);
        let content = r.u8()?;
        if content != CONTENT_HANDSHAKE {
            return Err(ParseError::WrongType);
        }
        let rec_version = r.u16()?;
        if rec_version >> 8 != 0x03 {
            return Err(ParseError::UnsupportedVersion);
        }
        let rec_len = r.u16()? as usize;
        let mut hs = r.sub(rec_len)?;
        let ch = Self::parse_handshake_reader(&mut hs)?;
        if !hs.is_empty() {
            return Err(ParseError::TrailingBytes);
        }
        Ok(ch)
    }

    /// Parse a bare handshake message (as carried in QUIC CRYPTO frames).
    pub fn parse_handshake(bytes: &[u8]) -> Result<Self, ParseError> {
        let mut r = Reader::new(bytes);
        let ch = Self::parse_handshake_reader(&mut r)?;
        if !r.is_empty() {
            return Err(ParseError::TrailingBytes);
        }
        Ok(ch)
    }

    fn parse_handshake_reader(r: &mut Reader<'_>) -> Result<Self, ParseError> {
        let msg_type = r.u8()?;
        if msg_type != HS_CLIENT_HELLO {
            return Err(ParseError::NotClientHello);
        }
        let body_len = r.u24()? as usize;
        let mut b = r.sub(body_len)?;
        let version = b.u16()?;
        if version >> 8 != 0x03 {
            return Err(ParseError::UnsupportedVersion);
        }
        let mut random = [0u8; 32];
        random.copy_from_slice(b.take(32)?);
        let sid_len = b.u8()? as usize;
        if sid_len > 32 {
            return Err(ParseError::BadLength);
        }
        let session_id = b.take(sid_len)?.to_vec();
        let cs_len = b.u16()? as usize;
        if !cs_len.is_multiple_of(2) {
            return Err(ParseError::BadLength);
        }
        let mut cs = b.sub(cs_len)?;
        let mut cipher_suites = Vec::with_capacity(cs_len / 2);
        while !cs.is_empty() {
            cipher_suites.push(cs.u16()?);
        }
        let comp_len = b.u8()? as usize;
        let compression = b.take(comp_len)?.to_vec();
        let mut extensions = Vec::new();
        if !b.is_empty() {
            let ext_total = b.u16()? as usize;
            let mut e = b.sub(ext_total)?;
            while !e.is_empty() {
                let ext_type = e.u16()?;
                let len = e.u16()? as usize;
                extensions.push(Extension {
                    ext_type,
                    data: e.take(len)?.to_vec(),
                });
            }
            if !b.is_empty() {
                return Err(ParseError::TrailingBytes);
            }
        }
        Ok(Self {
            version,
            random,
            session_id,
            cipher_suites,
            compression,
            extensions,
        })
    }
}

/// Encode the body of a `server_name` extension (RFC 6066 §3).
pub fn encode_sni_extension(server_name: &str) -> Vec<u8> {
    let mut w = Writer::new();
    let list_len = w.reserve_len(2);
    w.put_u8(0); // name_type = host_name
    w.put_u16(server_name.len() as u16);
    w.put_bytes(server_name.as_bytes());
    w.patch_len(list_len);
    w.into_bytes()
}

/// Parse the body of a `server_name` extension; returns the first
/// `host_name` entry.
pub fn parse_sni_extension(data: &[u8]) -> Result<Option<&str>, ParseError> {
    let mut r = Reader::new(data);
    let list_len = r.u16()? as usize;
    let mut l = r.sub(list_len)?;
    while !l.is_empty() {
        let name_type = l.u8()?;
        let len = l.u16()? as usize;
        let name = l.take(len)?;
        if name_type == 0 {
            let s = std::str::from_utf8(name).map_err(|_| ParseError::InvalidHostname)?;
            if !s.bytes().all(|b| b.is_ascii_graphic()) {
                return Err(ParseError::InvalidHostname);
            }
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// The observer's zero-copy fast path: walk a TLS record and return the SNI
/// hostname as a slice borrowed from the input buffer.
///
/// ```
/// use hostprof_net::tls::{ClientHello, extract_sni};
/// let record = ClientHello::for_hostname("booking.com").encode();
/// assert_eq!(extract_sni(&record).unwrap(), Some("booking.com"));
/// ```
///
/// Returns `Ok(None)` for well-formed ClientHellos without a readable
/// `server_name` (e.g. ECH), and an error for anything that is not a
/// ClientHello record.
pub fn extract_sni(record: &[u8]) -> Result<Option<&str>, ParseError> {
    let mut r = Reader::new(record);
    if r.u8()? != CONTENT_HANDSHAKE {
        return Err(ParseError::WrongType);
    }
    if r.u16()? >> 8 != 0x03 {
        return Err(ParseError::UnsupportedVersion);
    }
    let rec_len = r.u16()? as usize;
    let mut hs = r.sub(rec_len)?;
    if hs.u8()? != HS_CLIENT_HELLO {
        return Err(ParseError::NotClientHello);
    }
    let body_len = hs.u24()? as usize;
    let mut b = hs.sub(body_len)?;
    b.u16()?; // version
    b.take(32)?; // random
    let sid = b.u8()? as usize;
    b.take(sid)?;
    let cs = b.u16()? as usize;
    b.take(cs)?;
    let comp = b.u8()? as usize;
    b.take(comp)?;
    if b.is_empty() {
        return Ok(None);
    }
    let ext_total = b.u16()? as usize;
    let mut e = b.sub(ext_total)?;
    while !e.is_empty() {
        let ext_type = e.u16()?;
        let len = e.u16()? as usize;
        let data = e.take(len)?;
        if ext_type == ext::SERVER_NAME {
            return parse_sni_extension(data);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let ch = ClientHello::for_hostname("booking.com");
        let bytes = ch.encode();
        let back = ClientHello::parse(&bytes).unwrap();
        assert_eq!(ch, back);
        assert_eq!(back.sni(), Some("booking.com"));
    }

    #[test]
    fn handshake_roundtrip_without_record_layer() {
        let ch = ClientHello::for_hostname("api.bkng.azureish.com");
        let hs = ch.encode_handshake();
        let back = ClientHello::parse_handshake(&hs).unwrap();
        assert_eq!(back.sni(), Some("api.bkng.azureish.com"));
    }

    #[test]
    fn extract_sni_matches_full_parse_and_borrows() {
        let ch = ClientHello::for_hostname("espn.com");
        let bytes = ch.encode();
        let sni = extract_sni(&bytes).unwrap().unwrap();
        assert_eq!(sni, "espn.com");
        // Borrowed from input: pointer lies inside `bytes`.
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(range.contains(&(sni.as_ptr() as usize)));
    }

    #[test]
    fn ech_hides_the_hostname() {
        let ch = ClientHello::with_ech(64);
        assert!(ch.has_ech());
        assert_eq!(ch.sni(), None);
        let bytes = ch.encode();
        assert_eq!(extract_sni(&bytes).unwrap(), None);
    }

    #[test]
    fn non_handshake_records_are_rejected() {
        let ch = ClientHello::for_hostname("x.com");
        let mut bytes = ch.encode();
        bytes[0] = 23; // application_data
        assert_eq!(ClientHello::parse(&bytes), Err(ParseError::WrongType));
        assert_eq!(extract_sni(&bytes), Err(ParseError::WrongType));
    }

    #[test]
    fn truncation_never_panics_and_errors() {
        let ch = ClientHello::for_hostname("truncation-victim.example");
        let bytes = ch.encode();
        for cut in 0..bytes.len() {
            let r = ClientHello::parse(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
            let _ = extract_sni(&bytes[..cut]);
        }
    }

    #[test]
    fn server_hello_like_message_is_not_client_hello() {
        let ch = ClientHello::for_hostname("x.com");
        let mut bytes = ch.encode();
        bytes[5] = 2; // handshake type = ServerHello
        assert_eq!(ClientHello::parse(&bytes), Err(ParseError::NotClientHello));
    }

    #[test]
    fn deterministic_random_per_hostname() {
        let a = ClientHello::for_hostname("a.com");
        let b = ClientHello::for_hostname("a.com");
        let c = ClientHello::for_hostname("b.com");
        assert_eq!(a.random, b.random);
        assert_ne!(a.random, c.random);
    }

    #[test]
    fn sni_extension_with_non_ascii_is_invalid() {
        let mut body = encode_sni_extension("ok.com");
        let n = body.len();
        body[n - 1] = 0xff;
        assert_eq!(parse_sni_extension(&body), Err(ParseError::InvalidHostname));
    }

    #[test]
    #[should_panic(expected = "session_id exceeds")]
    fn oversized_session_id_panics_instead_of_misframing() {
        let mut ch = ClientHello::for_hostname("x.com");
        ch.session_id = vec![0; 300];
        let _ = ch.encode();
    }

    #[test]
    #[should_panic(expected = "u16 wire limit")]
    fn oversized_extension_panics_instead_of_misframing() {
        let mut ch = ClientHello::for_hostname("x.com");
        ch.extensions.push(Extension {
            ext_type: 0x1234,
            data: vec![0; 70_000],
        });
        let _ = ch.encode();
    }

    #[test]
    fn trailing_bytes_after_record_are_rejected() {
        let ch = ClientHello::for_hostname("x.com");
        let hs = ch.encode_handshake();
        let mut bytes = Vec::new();
        bytes.push(22);
        bytes.extend_from_slice(&0x0301u16.to_be_bytes());
        bytes.extend_from_slice(&((hs.len() + 1) as u16).to_be_bytes());
        bytes.extend_from_slice(&hs);
        bytes.push(0);
        assert_eq!(ClientHello::parse(&bytes), Err(ParseError::TrailingBytes));
    }
}
