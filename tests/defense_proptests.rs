//! Differential property tests for the defense transforms (DESIGN.md
//! §15): 500 seeded cases per property, production `DefensePlan` vs the
//! naive `oracle::defense` twin. Same homemade persistence scheme as
//! `differential_proptests.rs`: every case derives from a printable
//! 16-hex-digit seed, failures panic with that seed, and
//! `tests/regressions/defense_proptests.txt` holds previously failing
//! seeds (`cc <seed> # note` lines) replayed *first* on every run.
//!
//! Four properties, one per defense invariant:
//!
//! 1. **Differential** — the full trace transform and every per-event
//!    wire decision match the naive reference exactly (the transform is
//!    integer/string-valued; there is no tolerance).
//! 2. **Identity points** — `ech@0`, `dummy@0`, `pad@0`, `adaptive@0`,
//!    `doh@0` and `nat@1` are bit-level no-ops, down to the lowered
//!    packet bytes and the NAT source address.
//! 3. **Padding never drops** — every real event survives any defense,
//!    in trace order, and injected cover only ever uses catalog
//!    hostnames at strictly-later timestamps.
//! 4. **Nested sweeps** — ECH site sets and DoH client sets only grow
//!    along their adoption axes, so recovery is monotone by
//!    construction.

use hostprof::defense::{Defense, DefensePlan, HostCatalog};
use hostprof::net::{RequestEvent, TrafficSynthesizer, WireOverride};
use hostprof_oracle::defense::diff_transform;

const CASES: usize = 500;

/// splitmix64: the per-case parameter stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Case seed `i` of a property's deterministic 500-seed schedule.
fn case_seed(property: u64, i: usize) -> u64 {
    let mut s = property
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64);
    splitmix(&mut s)
}

/// Previously failing seeds, replayed before the fresh schedule.
/// Line format: `cc 0123456789abcdef # what broke`.
fn regression_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/defense_proptests.txt"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("regression seed file {path} unreadable: {e}"));
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex = rest.split_whitespace().next().unwrap_or("");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|e| panic!("bad regression seed {hex:?} in {path}: {e}"));
        seeds.push(seed);
    }
    assert!(
        !seeds.is_empty(),
        "no `cc <seed>` entries in {path} — the regression net is gone"
    );
    seeds
}

/// All seeds a property runs: regressions first, then the schedule.
fn schedule(property: u64) -> Vec<u64> {
    let mut seeds = regression_seeds();
    seeds.extend((0..CASES).map(|i| case_seed(property, i)));
    seeds
}

/// A random popularity catalog: `n` hosts with hash-drawn popularities
/// (ties happen — 1-in-8 rows copy the previous popularity, exercising
/// the host-id tiebreak).
fn catalog(rng: &mut u64, n: usize) -> HostCatalog {
    let mut pops = Vec::with_capacity(n);
    for i in 0..n {
        let p = if i > 0 && splitmix(rng).is_multiple_of(8) {
            pops[i - 1]
        } else {
            (splitmix(rng) >> 11) as f64 / (1u64 << 53) as f64
        };
        pops.push(p);
    }
    HostCatalog::from_hosts((0..n).map(|i| (i as u32, format!("host{i}.test"), pops[i])))
}

/// A random event stream over `n_hosts` hostnames and `n_clients`
/// clients. Roughly one event in six lands on an out-of-catalog
/// hostname (rank lookups must not assume membership), and bursts of
/// equal timestamps exercise sort stability.
fn events(rng: &mut u64, n_hosts: usize, n_clients: u32) -> Vec<RequestEvent> {
    let len = 5 + (splitmix(rng) % 60) as usize;
    let mut t = 0u64;
    (0..len)
        .map(|_| {
            if !splitmix(rng).is_multiple_of(3) {
                t += splitmix(rng) % 500;
            }
            let hostname = if splitmix(rng).is_multiple_of(6) {
                format!("offworld{}.test", splitmix(rng) % 9)
            } else {
                format!("host{}.test", splitmix(rng) % n_hosts.max(1) as u64)
            };
            RequestEvent {
                t_ms: t,
                client: (splitmix(rng) % n_clients.max(1) as u64) as u32,
                hostname,
            }
        })
        .collect()
}

/// A random defense at a random (non-identity-biased) intensity.
fn any_defense(rng: &mut u64) -> Defense {
    let u = (splitmix(rng) >> 11) as f64 / (1u64 << 53) as f64;
    match splitmix(rng) % 6 {
        0 => Defense::Ech { adoption: u },
        1 => Defense::Dummy { rate: u * 4.0 },
        2 => Defense::PadConstant {
            pad_per_event: (splitmix(rng) % 6) as u32,
        },
        3 => Defense::PadAdaptive { intensity: u * 4.0 },
        4 => Defense::Nat {
            users_per_ip: 1 + (splitmix(rng) % 8) as u32,
        },
        _ => Defense::Doh { adoption: u },
    }
}

// ---------------------------------------------------------------------
// Property 1: production transform + wire decisions vs the oracle twin.
// ---------------------------------------------------------------------

#[test]
fn defense_transform_matches_oracle_on_500_seeded_cases() {
    for seed in schedule(0x00de_f311) {
        let mut rng = seed;
        let n_hosts = 2 + (splitmix(&mut rng) % 40) as usize;
        let c = catalog(&mut rng, n_hosts);
        let n_clients = 1 + (splitmix(&mut rng) % 10) as u32;
        let evs = events(&mut rng, n_hosts, n_clients);
        let defense = any_defense(&mut rng);
        let plan = DefensePlan::new(defense, c, splitmix(&mut rng));

        let report = diff_transform(&plan, &evs);
        assert!(
            report.is_clean(),
            "{defense:?} diverged — add `cc {seed:016x}` to \
             tests/regressions/defense_proptests.txt\n{}",
            report.summary()
        );
        assert!(report.items_checked > 0, "nothing compared for {seed:016x}");
    }
}

// ---------------------------------------------------------------------
// Property 2: identity points are bit-level no-ops, down to the wire.
// ---------------------------------------------------------------------

#[test]
fn identity_points_are_packet_level_noops_on_500_seeded_cases() {
    let synth = TrafficSynthesizer::default();
    for seed in schedule(0x00de_f1de) {
        let mut rng = seed;
        let n_hosts = 2 + (splitmix(&mut rng) % 30) as usize;
        let c = catalog(&mut rng, n_hosts);
        let n_clients = 1 + (splitmix(&mut rng) % 8) as u32;
        let evs = events(&mut rng, n_hosts, n_clients);
        let plan_seed = splitmix(&mut rng);
        let cc = format!("add `cc {seed:016x}` to tests/regressions/defense_proptests.txt");
        for d in [
            Defense::Ech { adoption: 0.0 },
            Defense::Dummy { rate: 0.0 },
            Defense::PadConstant { pad_per_event: 0 },
            Defense::PadAdaptive { intensity: 0.0 },
            Defense::Doh { adoption: 0.0 },
            Defense::Nat { users_per_ip: 1 },
        ] {
            assert!(d.is_identity(), "{d:?}");
            let plan = DefensePlan::new(d, c.clone(), plan_seed);
            assert_eq!(plan.transform(&evs), evs, "{d:?} moved the trace — {cc}");
            let defended = plan.synthesizer(&synth);
            for ev in &evs {
                let ov = plan.wire_override(ev.client, &ev.hostname);
                assert_eq!(ov, WireOverride::default(), "{d:?} wire override — {cc}");
                assert_eq!(
                    synth.addressing.client_ip(ev.client),
                    defended.addressing.client_ip(ev.client),
                    "{d:?} moved client {} — {cc}",
                    ev.client
                );
                // Bit-level: the lowered packets are byte-identical to
                // the undefended path.
                assert_eq!(
                    defended.packets_for_host_with(ev.t_ms, ev.client, &ev.hostname, ov),
                    synth.packets_for_host(ev.t_ms, ev.client, &ev.hostname),
                    "{d:?} perturbed the wire bytes — {cc}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property 3: padding injects, never drops — real events survive any
// defense as an in-order subsequence, cover stays in-catalog and
// strictly later than the event it covers.
// ---------------------------------------------------------------------

#[test]
fn defenses_never_drop_or_reorder_real_events_on_500_seeded_cases() {
    for seed in schedule(0x00de_fad5) {
        let mut rng = seed;
        let n_hosts = 2 + (splitmix(&mut rng) % 40) as usize;
        let c = catalog(&mut rng, n_hosts);
        let n_clients = 1 + (splitmix(&mut rng) % 10) as u32;
        let evs = events(&mut rng, n_hosts, n_clients);
        let defense = any_defense(&mut rng);
        let plan = DefensePlan::new(defense, c, splitmix(&mut rng));
        let cc = format!("add `cc {seed:016x}` to tests/regressions/defense_proptests.txt");

        let out = plan.transform(&evs);
        assert!(
            out.len() >= evs.len(),
            "{defense:?} shrank the trace — {cc}"
        );
        assert!(
            out.windows(2).all(|w| w[0].t_ms <= w[1].t_ms),
            "{defense:?} broke time order — {cc}"
        );
        // Real events survive, in order, as a subsequence.
        let mut it = out.iter();
        for ev in &evs {
            assert!(it.any(|o| o == ev), "{defense:?} dropped {ev:?} — {cc}");
        }
        // Injected cover: in-catalog hostnames, strictly after the
        // earliest real event (offsets are strictly forward in time).
        if out.len() > evs.len() {
            let mut real = std::collections::HashMap::<(u64, u32, &str), usize>::new();
            for ev in &evs {
                *real.entry((ev.t_ms, ev.client, &ev.hostname)).or_default() += 1;
            }
            let t0 = evs.iter().map(|e| e.t_ms).min().unwrap_or(0);
            for o in &out {
                match real.get_mut(&(o.t_ms, o.client, o.hostname.as_str())) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => {
                        assert!(
                            plan.catalog().rank_of(&o.hostname).is_some(),
                            "{defense:?} injected out-of-catalog {o:?} — {cc}"
                        );
                        assert!(
                            o.t_ms > t0,
                            "{defense:?} injected cover at/before the trace start — {cc}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property 4: ECH site sets and DoH client sets are nested along their
// adoption sweeps — no host or client ever leaves the set as adoption
// grows, and the endpoints cover nothing/everything.
// ---------------------------------------------------------------------

#[test]
fn adoption_sweeps_are_nested_on_500_seeded_cases() {
    for seed in schedule(0x00de_f5e7) {
        let mut rng = seed;
        let n_hosts = 2 + (splitmix(&mut rng) % 40) as usize;
        let c = catalog(&mut rng, n_hosts);
        let n_clients = 1 + (splitmix(&mut rng) % 40) as u32;
        let plan_seed = splitmix(&mut rng);
        let cc = format!("add `cc {seed:016x}` to tests/regressions/defense_proptests.txt");

        let mut prev_hidden = vec![false; n_hosts];
        let mut prev_doh = vec![false; n_clients as usize];
        for step in 0..=8 {
            let adoption = step as f64 / 8.0;
            let ech = DefensePlan::new(Defense::Ech { adoption }, c.clone(), plan_seed);
            let doh = DefensePlan::new(Defense::Doh { adoption }, c.clone(), plan_seed);
            for (i, prev) in prev_hidden.iter_mut().enumerate() {
                let hidden = ech.ech_hidden(&format!("host{i}.test"));
                assert!(
                    !*prev || hidden,
                    "host {i} left the ECH set at {adoption} — {cc}"
                );
                *prev = hidden;
            }
            for cl in 0..n_clients {
                let migrated = doh.doh_migrated(cl);
                assert!(
                    !prev_doh[cl as usize] || migrated,
                    "client {cl} left the DoH set at {adoption} — {cc}"
                );
                prev_doh[cl as usize] = migrated;
            }
        }
        assert!(
            prev_hidden.iter().all(|&h| h),
            "full ECH adoption missed a site — {cc}"
        );
        assert!(
            prev_doh.iter().all(|&m| m),
            "full DoH adoption missed a client — {cc}"
        );
    }
}
