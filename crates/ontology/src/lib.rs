//! # hostprof-ontology
//!
//! A synthetic stand-in for the Google Adwords Display Planner ontology used
//! by the paper *User Profiling by Network Observers* (CoNEXT '21).
//!
//! The paper queried the Display Planner for the topics of ~50 K hostnames and
//! obtained **1397** categories organized in a hierarchy of varying depth.
//! To harmonize the hierarchy, only categories up to the **second level** were
//! kept, yielding **328** categories (the set `C` of Section 4.1). Each
//! labeled hostname `h ∈ H_L` carries a category vector
//! `c^h = [c^h_1, …, c^h_C]` with `c^h_i ∈ [0, 1]` — explicitly *not* a
//! probability distribution (footnote 2 of the paper).
//!
//! This crate provides:
//!
//! * [`Hierarchy`] — a deterministic category hierarchy with 34 top-level
//!   topics (the ones visible in Figure 6), exactly 328 level-≤2 categories
//!   after harmonization, and 1397 nodes in total;
//! * [`CategoryVector`] — sparse `[0,1]`-weighted category vectors with the
//!   similarity/distance operations the profiling pipeline needs;
//! * [`Ontology`] — the partial hostname → category-vector labeling
//!   (the paper's `H_L`, covering only ~10.6 % of hostnames);
//! * [`Blocklist`] — tracker/advertiser hostname lists modeled after the
//!   three lists the paper used (adaway.org, hosts-file.net, yoyo.org),
//!   used to filter profiling-noise hostnames (Section 5.4).

pub mod blocklist;
pub mod category;
pub mod hierarchy;
pub mod ontology;
pub mod vector;

pub use blocklist::{Blocklist, BlocklistProvider};
pub use category::{CategoryId, TopCategoryId};
pub use hierarchy::{Hierarchy, HARMONIZED_CATEGORIES, TOP_CATEGORIES, TOTAL_HIERARCHY_NODES};
pub use ontology::{CoverageStats, Ontology};
pub use vector::CategoryVector;
