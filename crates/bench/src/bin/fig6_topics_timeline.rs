//! E4 — Figure 6: daily topic shares.
//!
//! The paper stacks, per day, the top-level-topic shares of (a) visited
//! hostnames, (b) ads served by ad-networks and (c) ads selected by the
//! eavesdropper, using only items Google Adwords could label. The shape
//! claims to reproduce: (a) is dominated by a stable block of
//! Online-Communities-style topics (the core hosts generate most labeled
//! connections); (b) and (c) have *different* topic mixes from (a) and
//! from each other.

use hostprof::scenario::Scenario;
use hostprof_ads::{experiment::to_percent_shares, CtrExperiment, ExperimentConfig};
use hostprof_bench::{header, row, write_results, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Results {
    scale: String,
    topic_names: Vec<String>,
    /// `[day][topic]` percentage shares, profiled days only.
    visits_pct: Vec<Vec<f64>>,
    original_ads_pct: Vec<Vec<f64>>,
    eaves_ads_pct: Vec<Vec<f64>>,
}

/// Mean share per topic over days, descending.
fn mean_shares(daily: &[Vec<f64>]) -> Vec<(usize, f64)> {
    if daily.is_empty() {
        return Vec::new();
    }
    let days = daily.len() as f64;
    let n = daily[0].len();
    let mut mean: Vec<(usize, f64)> = (0..n)
        .map(|t| (t, daily.iter().map(|d| d[t]).sum::<f64>() / days))
        .collect();
    mean.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    mean
}

fn print_top(label: &str, names: &[String], daily: &[Vec<f64>]) {
    println!("\n  {label} — mean share of top topics across profiled days:");
    let mut bar_shares = Vec::new();
    for (t, share) in mean_shares(daily).into_iter().take(8) {
        if share > 0.0 {
            println!("    {:<32} {share:>5.1}%", names[t]);
            bar_shares.push((names[t].clone(), share));
        }
    }
    // The figure itself, one stacked bar per stream (first letter = topic).
    println!(
        "    [{}]",
        hostprof_bench::chart::stacked_bar(&bar_shares, 60)
    );
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let config = ExperimentConfig {
        pipeline: s.config.pipeline.clone(),
        ..ExperimentConfig::default()
    };
    let result = CtrExperiment::new(&s.world, &s.population, &s.trace, &s.ads, config).run();

    let names: Vec<String> = s
        .world
        .hierarchy()
        .top_ids()
        .map(|t| s.world.hierarchy().top_name(t).to_string())
        .collect();

    // Drop the warm-up day (all zeros) before normalizing.
    let visits = to_percent_shares(&result.daily_topics_visits[1..]);
    let original = to_percent_shares(&result.daily_topics_original[1..]);
    let eaves = to_percent_shares(&result.daily_topics_eaves[1..]);

    header(&format!(
        "Figure 6 — topics per day (scale: {}, {} profiled days)",
        scale.label(),
        visits.len()
    ));
    print_top("(a) websites visited", &names, &visits);
    print_top("(b) regular ads received", &names, &original);
    print_top("(c) eavesdropper-selected ads", &names, &eaves);

    // Stability of (a): mean absolute day-to-day change of the top topic.
    let top_topic = mean_shares(&visits)[0].0;
    let mut drift = 0.0;
    for w in visits.windows(2) {
        drift += (w[1][top_topic] - w[0][top_topic]).abs();
    }
    let drift = drift / (visits.len().max(2) - 1) as f64;
    println!();
    row(
        "day-to-day drift of top visit topic",
        format!("{drift:.2} pp"),
    );
    println!("\n  paper: visit topics are prominent and stable across time; ad topic mixes");
    println!("  (b) and (c) differ from (a) and from each other");

    write_results(
        "fig6_topics_timeline",
        &Fig6Results {
            scale: scale.label().to_string(),
            topic_names: names,
            visits_pct: visits,
            original_ads_pct: original,
            eaves_ads_pct: eaves,
        },
    );
}
