//! The differential driver: replay one seeded synthetic world through
//! the oracle and the production pipeline, stage by stage, and report
//! every disagreement with a typed [`Mismatch`].
//!
//! Stage plan (pipeline order):
//!
//! 1. **sni** — encode TLS/QUIC hellos for real world hostnames, run
//!    both parsers over intact, ECH'd, and truncated bytes.
//! 2. **window** — per (user, day) last-request session windows:
//!    `Trace::window` + `Session::from_window` vs the naive scan.
//! 3. **train** — full skipgram training at dim 3, one thread: oracle
//!    weights must equal production weights *bit for bit*, for both the
//!    scalar and the SIMD kernel (identical at dim 3 by construction).
//! 4. **knn** — session-vector queries through the tiled scan vs the
//!    naive O(V) sort, exact index and similarity-bit equality.
//! 5. **profile** — Eq. 3/4 profiles, ids exact, importances ≤ 1e-5
//!    (observed deltas are 0 ulp; the tolerance is the spec).
//! 6. **stats** — paired t-test over per-session profile statistics,
//!    Welford/Simpson vs two-pass/continued-fraction.
//!
//! The optional embedding perturbation exists so tests can prove the
//! driver *fails loudly*: nudging one weight must surface as knn/profile
//! mismatches, not silence.

use crate::{diff, knn, profile, sgd, sni, stats, window, DiffReport, Mismatch, Stage};
use hostprof_core::{Profiler, ProfilerConfig, Session};
use hostprof_embed::{EmbeddingSet, KernelChoice, Sharding, SkipGram, SkipGramConfig};
use hostprof_net::quic::InitialPacket;
use hostprof_net::tls::ClientHello;
use hostprof_synth::{
    Population, PopulationConfig, Trace, TraceConfig, UserId, World, WorldConfig,
};

const DAY_MS: u64 = 86_400_000;
const SESSION_WINDOW_MS: u64 = 20 * 60_000; // the paper's T = 20 min

/// Differential run parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Master seed; mixed into world/population/trace seeds.
    pub seed: u64,
    /// Optional sabotage: add `delta` to flat embedding element `index`
    /// on the *production* side after training. Used by tests to assert
    /// stage-attributed failure.
    pub perturb_embedding: Option<(usize, f32)>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            perturb_embedding: None,
        }
    }
}

/// Mix the run seed into a sub-generator seed without colliding streams.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 31;
    x
}

/// Run every differential stage on one seeded world.
pub fn differential_run(cfg: &DriverConfig) -> DiffReport {
    let mut report = DiffReport::default();

    // A tiny but fully-featured world: real ontology coverage, real
    // blocklist, two days of traffic from a dozen users.
    let mut wc = WorldConfig::tiny();
    wc.seed = mix(cfg.seed, 1);
    let mut pc = PopulationConfig::tiny();
    pc.num_users = 12;
    pc.seed = mix(cfg.seed, 2);
    let mut tc = TraceConfig::tiny();
    tc.days = 2;
    tc.seed = mix(cfg.seed, 3);

    let world = World::generate(&wc);
    let population = Population::generate(&world, &pc);
    let trace = Trace::generate(&world, &population, &tc);

    check_sni(&mut report, &world, &trace);
    let sessions = check_windows(&mut report, &world, &population, &trace);
    // From here on the oracle pipeline continues from the *oracle's*
    // trained weights and production from its own: bit-identical after a
    // clean train stage, divergent the moment production drifts (which
    // is exactly what the perturbation tests exercise).
    if let Some((embeddings, oracle_flat)) = check_training(&mut report, &world, &trace, cfg) {
        check_knn(&mut report, &embeddings, &oracle_flat, &sessions);
        let profiles = check_profiles(&mut report, &world, &embeddings, &oracle_flat, &sessions);
        check_stats(&mut report, &profiles);
    }
    report
}

/// Stage 1: SNI recovery from encoded, hidden, and truncated hellos.
fn check_sni(report: &mut DiffReport, world: &World, trace: &Trace) {
    // Hostnames actually observed in the trace, first-seen order.
    let mut names: Vec<&str> = Vec::new();
    for req in trace.requests() {
        let h = world.hostname(req.host);
        if !names.contains(&h) {
            names.push(h);
        }
        if names.len() >= 24 {
            break;
        }
    }

    for &name in &names {
        let record = ClientHello::for_hostname(name).encode();
        let prod = hostprof_net::tls::extract_sni(&record)
            .ok()
            .flatten()
            .map(str::to_string);
        let oracle = sni::tls_sni(&record);
        compare_names(report, format!("tls:{name}"), &prod, &oracle, Some(name));

        // Truncations must agree too — and never invent a name.
        for cut in [7usize, 13, record.len() / 2, record.len() - 1] {
            let cut = cut.min(record.len());
            let prod = hostprof_net::tls::extract_sni(&record[..cut])
                .ok()
                .flatten()
                .map(str::to_string);
            let oracle = sni::tls_sni(&record[..cut]);
            compare_names(report, format!("tls:{name}@{cut}"), &prod, &oracle, None);
        }

        let datagram = InitialPacket::for_hostname(name).encode();
        let prod = hostprof_net::quic::extract_sni_from_quic(&datagram)
            .ok()
            .flatten();
        let oracle = sni::quic_sni(&datagram);
        compare_names(report, format!("quic:{name}"), &prod, &oracle, Some(name));

        for cut in [9usize, 30, 45] {
            let cut = cut.min(datagram.len());
            let prod = hostprof_net::quic::extract_sni_from_quic(&datagram[..cut])
                .ok()
                .flatten();
            let oracle = sni::quic_sni(&datagram[..cut]);
            compare_names(report, format!("quic:{name}@{cut}"), &prod, &oracle, None);
        }
    }

    // ECH hides the name from both parsers.
    let ech = ClientHello::with_ech(96).encode();
    let prod = hostprof_net::tls::extract_sni(&ech)
        .ok()
        .flatten()
        .map(str::to_string);
    let oracle = sni::tls_sni(&ech);
    compare_names(report, "tls:ech".into(), &prod, &oracle, None);
}

fn compare_names(
    report: &mut DiffReport,
    item: String,
    prod: &Option<String>,
    oracle: &Option<String>,
    expect: Option<&str>,
) {
    if prod != oracle {
        report.check_failed(Mismatch {
            stage: Stage::Sni,
            item,
            max_abs: 0.0,
            max_ulp: 0,
            detail: format!("production {prod:?} vs oracle {oracle:?}"),
        });
        return;
    }
    if let Some(want) = expect {
        if oracle.as_deref() != Some(want) {
            report.check_failed(Mismatch {
                stage: Stage::Sni,
                item,
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!("both sides recovered {oracle:?}, expected {want:?}"),
            });
            return;
        }
    }
    report.check_ok();
}

/// Stage 2: per-(user, day) session windows. Returns the production
/// sessions for downstream stages.
fn check_windows(
    report: &mut DiffReport,
    world: &World,
    population: &Population,
    trace: &Trace,
) -> Vec<Session> {
    let blocklist = world.blocklist();
    let mut sessions = Vec::new();
    for u in 0..population.users().len() as u32 {
        let user = UserId(u);
        let timeline: Vec<(u64, String)> = trace
            .user_requests(user)
            .map(|r| (r.t_ms, world.hostname(r.host).to_string()))
            .collect();
        for day in 0..trace.days() {
            let lo = day as u64 * DAY_MS;
            let hi = lo + DAY_MS;
            let Some(&(end_ms, _)) = timeline.iter().rev().find(|&&(t, _)| t >= lo && t < hi)
            else {
                continue;
            };

            let ids = trace.window(user, end_ms, SESSION_WINDOW_MS);
            let names: Vec<&str> = ids.iter().map(|&id| world.hostname(id)).collect();
            let session = Session::from_window(names.iter().copied(), Some(blocklist));

            let oracle = window::session_window(&timeline, end_ms, SESSION_WINDOW_MS, &|h| {
                blocklist.is_blocked(h)
            });

            if session.hostnames() != oracle.as_slice() {
                report.check_failed(Mismatch {
                    stage: Stage::Window,
                    item: format!("user{u}/day{day}"),
                    max_abs: 0.0,
                    max_ulp: 0,
                    detail: format!(
                        "production {:?} vs oracle {:?}",
                        session.hostnames(),
                        oracle
                    ),
                });
            } else {
                report.check_ok();
            }
            sessions.push(session);
        }
    }
    sessions
}

/// The pinned trainer hyperparameters both sides run with.
fn train_config(seed: u64, kernel: KernelChoice) -> SkipGramConfig {
    SkipGramConfig {
        dim: 3,
        window: 2,
        negatives: 3,
        epochs: 2,
        learning_rate: 0.025,
        min_count: 1,
        subsample: 0.0,
        threads: 1,
        seed,
        kernel,
        sharding: Sharding::Static,
    }
}

/// Stage 3: full training trajectories, bit-for-bit, scalar and SIMD.
/// Returns the production embeddings plus the oracle's own flat weight
/// matrix for the downstream oracle stages.
fn check_training(
    report: &mut DiffReport,
    world: &World,
    trace: &Trace,
    cfg: &DriverConfig,
) -> Option<(EmbeddingSet, Vec<f32>)> {
    let mut corpus: Vec<Vec<String>> = Vec::new();
    for day in 0..trace.days() {
        for (_, hosts) in trace.daily_sequences(day) {
            corpus.push(
                hosts
                    .iter()
                    .map(|&h| world.hostname(h).to_string())
                    .collect(),
            );
        }
    }

    let train_seed = mix(cfg.seed, 4);
    let oracle_cfg = sgd::SgdConfig {
        dim: 3,
        window: 2,
        negatives: 3,
        epochs: 2,
        learning_rate: 0.025,
        min_count: 1,
        subsample: 0.0,
        seed: train_seed,
    };
    let oracle = sgd::train(&corpus, &oracle_cfg);

    let mut production = None;
    for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
        let label = if kernel == KernelChoice::Scalar {
            "scalar"
        } else {
            "simd"
        };
        let prod = SkipGram::train(&corpus, &train_config(train_seed, kernel)).ok();
        match (&oracle, &prod) {
            (None, None) => report.check_ok(),
            (Some(om), Some(pm)) => {
                compare_model(report, label, om, pm);
            }
            _ => report.check_failed(Mismatch {
                stage: Stage::Train,
                item: format!("{label}:trainability"),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!(
                    "oracle trained: {}, production trained: {}",
                    oracle.is_some(),
                    prod.is_some()
                ),
            }),
        }
        production = prod;
    }

    let model = production?;
    let oracle_flat = oracle.as_ref().map(|om| om.input.clone())?;
    let mut embeddings = model.into_embeddings();
    if let Some((index, delta)) = cfg.perturb_embedding {
        embeddings = perturb(embeddings, index, delta);
    }
    Some((embeddings, oracle_flat))
}

fn compare_model(report: &mut DiffReport, label: &str, oracle: &sgd::OracleModel, prod: &SkipGram) {
    if oracle.vocab.tokens.len() != prod.vocab().len() {
        report.check_failed(Mismatch {
            stage: Stage::Train,
            item: format!("{label}:vocab"),
            max_abs: 0.0,
            max_ulp: 0,
            detail: format!(
                "vocab size {} vs {}",
                prod.vocab().len(),
                oracle.vocab.tokens.len()
            ),
        });
        return;
    }
    for idx in 0..prod.vocab().len() as u32 {
        let token = prod.vocab().token(idx);
        if oracle.vocab.tokens[idx as usize] != token {
            report.check_failed(Mismatch {
                stage: Stage::Train,
                item: format!("{label}:vocab[{idx}]"),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!(
                    "token order: production {token:?} vs oracle {:?}",
                    oracle.vocab.tokens[idx as usize]
                ),
            });
            continue;
        }
        report.check_ok();
        for (matrix, prod_row, oracle_row) in [
            ("input", prod.vector(idx), oracle.input_row(idx)),
            ("context", prod.context_vector(idx), oracle.context_row(idx)),
        ] {
            let d = diff::compare_f32_slices(prod_row, oracle_row);
            if d.identical() {
                report.check_ok();
            } else {
                report.check_failed(Mismatch {
                    stage: Stage::Train,
                    item: format!("{label}:{matrix}[{token}]"),
                    max_abs: d.max_abs,
                    max_ulp: d.max_ulp,
                    detail: format!("weight row diverged at dim {}", d.worst_index),
                });
            }
        }
    }
}

/// Clone-and-modify one flat embedding element (production side only).
fn perturb(embeddings: EmbeddingSet, index: usize, delta: f32) -> EmbeddingSet {
    let dim = embeddings.dim();
    let mut flat = flatten(&embeddings);
    if let Some(x) = flat.get_mut(index) {
        *x += delta;
    }
    EmbeddingSet::new(dim, embeddings.vocab().clone(), flat)
}

/// Row-major copy of all raw embedding vectors.
fn flatten(embeddings: &EmbeddingSet) -> Vec<f32> {
    let mut flat = Vec::with_capacity(embeddings.len() * embeddings.dim());
    for idx in 0..embeddings.len() as u32 {
        flat.extend_from_slice(embeddings.vector_by_index(idx));
    }
    flat
}

const N_NEIGHBORS: usize = 10;

/// Stage 4: session-vector kNN queries, exact index + similarity bits.
/// Each side builds its query from its own weights.
fn check_knn(
    report: &mut DiffReport,
    embeddings: &EmbeddingSet,
    oracle_flat: &[f32],
    sessions: &[Session],
) {
    let dim = embeddings.dim();
    let prod_flat = flatten(embeddings);
    for (si, session) in sessions.iter().enumerate() {
        let hosts: Vec<profile::SessionHost> = session
            .hostnames()
            .iter()
            .map(|h| profile::SessionHost {
                vocab_idx: embeddings.vocab().get(h),
                categories: None,
            })
            .collect();
        let Some(oracle_query) = profile::mean_session_vector(&hosts, oracle_flat, dim) else {
            continue;
        };
        let prod_query = profile::mean_session_vector(&hosts, &prod_flat, dim)
            .unwrap_or_else(|| oracle_query.clone());
        let prod = embeddings.nearest_to_vector(&prod_query, N_NEIGHBORS);
        let oracle = knn::nearest(oracle_flat, dim, &oracle_query, N_NEIGHBORS);
        if prod.len() != oracle.len() {
            report.check_failed(Mismatch {
                stage: Stage::Knn,
                item: format!("session{si}"),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!("{} neighbors vs {}", prod.len(), oracle.len()),
            });
            continue;
        }
        let mut worst_abs = 0.0f64;
        let mut worst_ulp = 0u64;
        let mut bad = None;
        for (rank, (&(pi, ps), &(oi, os))) in prod.iter().zip(&oracle).enumerate() {
            if pi != oi {
                bad = Some(format!(
                    "rank {rank}: index {pi} (sim {ps}) vs {oi} (sim {os})"
                ));
                break;
            }
            worst_abs = worst_abs.max(((ps as f64) - (os as f64)).abs());
            worst_ulp = worst_ulp.max(diff::ulp_distance_f32(ps, os));
        }
        if bad.is_none() && worst_ulp > 0 {
            bad = Some("similarity bits diverged".into());
        }
        match bad {
            Some(detail) => report.check_failed(Mismatch {
                stage: Stage::Knn,
                item: format!("session{si}"),
                max_abs: worst_abs,
                max_ulp: worst_ulp,
                detail,
            }),
            None => report.check_ok(),
        }
    }
}

/// Eq. 4 importance tolerance from the issue spec.
const EQ4_TOLERANCE: f64 = 1e-5;

/// Stage 5: Eq. 3/4 session profiles. Returns production profiles for
/// the stats stage.
fn check_profiles(
    report: &mut DiffReport,
    world: &World,
    embeddings: &EmbeddingSet,
    oracle_flat: &[f32],
    sessions: &[Session],
) -> Vec<hostprof_core::SessionProfile> {
    let ontology = world.ontology();
    let profiler = Profiler::new(
        embeddings,
        ontology,
        ProfilerConfig {
            n_neighbors: N_NEIGHBORS,
            ..Default::default()
        },
    );

    // The oracle's labeled table: category vector per vocabulary row.
    let labeled: Vec<Option<Vec<(u16, f32)>>> = (0..embeddings.len() as u32)
        .map(|idx| {
            ontology
                .lookup(embeddings.vocab().token(idx))
                .map(|cats| cats.iter().map(|(c, w)| (c.0, w)).collect())
        })
        .collect();

    let mut profiles = Vec::new();
    for (si, session) in sessions.iter().enumerate() {
        let hosts: Vec<profile::SessionHost> = session
            .hostnames()
            .iter()
            .map(|h| profile::SessionHost {
                vocab_idx: embeddings.vocab().get(h),
                categories: ontology
                    .lookup(h)
                    .map(|cats| cats.iter().map(|(c, w)| (c.0, w)).collect()),
            })
            .collect();

        let prod = profiler.profile(session);
        let oracle = profile::profile(&hosts, oracle_flat, embeddings.dim(), &labeled, N_NEIGHBORS);
        match (&prod, &oracle) {
            (None, None) => report.check_ok(),
            (Some(p), Some(o)) => compare_profile(report, si, p, o),
            _ => report.check_failed(Mismatch {
                stage: Stage::Profile,
                item: format!("session{si}"),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!(
                    "profiled: production {}, oracle {}",
                    prod.is_some(),
                    oracle.is_some()
                ),
            }),
        }
        if let Some(p) = prod {
            profiles.push(p);
        }
    }
    profiles
}

fn compare_profile(
    report: &mut DiffReport,
    si: usize,
    prod: &hostprof_core::SessionProfile,
    oracle: &profile::OracleProfile,
) {
    let item = format!("session{si}");
    if prod.labeled_in_session != oracle.labeled_in_session
        || prod.labeled_neighbors != oracle.labeled_neighbors
    {
        report.check_failed(Mismatch {
            stage: Stage::Profile,
            item,
            max_abs: 0.0,
            max_ulp: 0,
            detail: format!(
                "contribution counts: production ({}, {}) vs oracle ({}, {})",
                prod.labeled_in_session,
                prod.labeled_neighbors,
                oracle.labeled_in_session,
                oracle.labeled_neighbors
            ),
        });
        return;
    }
    let sv = diff::compare_f32_slices(&prod.session_vector, &oracle.session_vector);
    if !sv.identical() {
        report.check_failed(Mismatch {
            stage: Stage::Profile,
            item,
            max_abs: sv.max_abs,
            max_ulp: sv.max_ulp,
            detail: "session vector diverged".into(),
        });
        return;
    }
    let prod_cats: Vec<(u16, f32)> = prod.categories.iter().map(|(c, w)| (c.0, w)).collect();
    let prod_ids: Vec<u16> = prod_cats.iter().map(|&(c, _)| c).collect();
    let oracle_ids: Vec<u16> = oracle.categories.iter().map(|&(c, _)| c).collect();
    if prod_ids != oracle_ids {
        report.check_failed(Mismatch {
            stage: Stage::Profile,
            item,
            max_abs: 0.0,
            max_ulp: 0,
            detail: format!("category ids: production {prod_ids:?} vs oracle {oracle_ids:?}"),
        });
        return;
    }
    let mut max_abs = 0.0f64;
    let mut max_ulp = 0u64;
    for (&(_, pw), &(_, ow)) in prod_cats.iter().zip(&oracle.categories) {
        max_abs = max_abs.max(((pw as f64) - (ow as f64)).abs());
        max_ulp = max_ulp.max(diff::ulp_distance_f32(pw, ow));
    }
    if max_abs > EQ4_TOLERANCE {
        report.check_failed(Mismatch {
            stage: Stage::Profile,
            item,
            max_abs,
            max_ulp,
            detail: format!("Eq. 4 importance beyond {EQ4_TOLERANCE:e}"),
        });
    } else {
        report.check_ok();
    }
}

/// Stage 6: paired t-test over per-session profile statistics.
fn check_stats(report: &mut DiffReport, profiles: &[hostprof_core::SessionProfile]) {
    // Paired per-session statistics with genuine spread: peak category
    // importance vs mean importance.
    let a: Vec<f64> = profiles
        .iter()
        .map(|p| {
            p.categories
                .iter()
                .map(|(_, w)| w as f64)
                .fold(0.0, f64::max)
        })
        .collect();
    let b: Vec<f64> = profiles
        .iter()
        .map(|p| {
            let (n, sum) = p
                .categories
                .iter()
                .fold((0usize, 0.0f64), |(n, s), (_, w)| (n + 1, s + w as f64));
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        })
        .collect();

    let prod = hostprof_stats::paired_t_test(&a, &b);
    let oracle = stats::paired_t_test(&a, &b);
    match (prod, oracle) {
        (None, None) => report.check_ok(),
        (Some(p), Some(o)) => {
            let t_err = (p.t - o.t).abs() / p.t.abs().max(1.0);
            let p_err = (p.p - o.p).abs();
            if t_err > 1e-12 || p_err > 1e-9 || p.df != o.df {
                report.check_failed(Mismatch {
                    stage: Stage::Stats,
                    item: "paired-t".into(),
                    max_abs: t_err.max(p_err),
                    max_ulp: diff::ulp_distance_f64(p.p, o.p),
                    detail: format!(
                        "t {} vs {}, p {} vs {}, df {} vs {}",
                        p.t, o.t, p.p, o.p, p.df, o.df
                    ),
                });
            } else {
                report.check_ok();
            }
        }
        (p, o) => report.check_failed(Mismatch {
            stage: Stage::Stats,
            item: "paired-t".into(),
            max_abs: 0.0,
            max_ulp: 0,
            detail: format!(
                "testability: production {}, oracle {}",
                p.is_some(),
                o.is_some()
            ),
        }),
    }

    // Welford moments vs the production two-pass descriptive stats.
    for (name, xs) in [("peak", &a), ("mean", &b)] {
        let mut w = stats::Welford::default();
        for &x in xs {
            w.push(x);
        }
        let mean_err = (w.mean() - hostprof_stats::descriptive::mean(xs)).abs();
        let var_err = (w.sample_variance() - hostprof_stats::descriptive::variance(xs)).abs();
        if mean_err > 1e-12 || var_err > 1e-12 {
            report.check_failed(Mismatch {
                stage: Stage::Stats,
                item: format!("welford:{name}"),
                max_abs: mean_err.max(var_err),
                max_ulp: 0,
                detail: "Welford moments diverged from two-pass".into(),
            });
        } else {
            report.check_ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_run_is_clean_on_a_seed() {
        let report = differential_run(&DriverConfig::default());
        assert!(
            report.items_checked > 100,
            "too few comparisons: {}",
            report.items_checked
        );
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn perturbed_embedding_fails_with_stage_attribution() {
        let report = differential_run(&DriverConfig {
            seed: 1,
            perturb_embedding: Some((5, 1e-3)),
        });
        assert!(!report.is_clean(), "perturbation went unnoticed");
        // The sabotage is applied after training, so train must stay
        // clean and the damage must surface downstream.
        assert_eq!(report.mismatches_in(Stage::Train), 0);
        assert!(
            report.mismatches_in(Stage::Knn) + report.mismatches_in(Stage::Profile) > 0,
            "{}",
            report.summary()
        );
    }
}
