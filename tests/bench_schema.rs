//! Schema validation for the committed benchmark artifacts under
//! `results/`. The bench binaries serialize these by hand-rolled struct;
//! this test pins the contract so a field rename or unit change in the
//! bench code can't silently rot the committed numbers (or the plots
//! and README claims derived from them).

use serde::Deserialize;

#[derive(Deserialize)]
struct ProfilingBench {
    scale: String,
    hardware_threads: usize,
    sessions: usize,
    vocabulary: usize,
    dim: usize,
    n_neighbors: usize,
    seed_loop_sessions_per_sec: f64,
    single_query_sessions_per_sec: f64,
    throughput: Vec<ProfilingRow>,
    best_speedup_at_4_threads: f64,
}

#[derive(Deserialize)]
struct ProfilingRow {
    threads: usize,
    batch_size: usize,
    sessions_per_sec: f64,
    speedup_vs_seed: f64,
}

#[derive(Deserialize)]
struct SkipgramBench {
    scale: String,
    hardware_threads: usize,
    // Presence and type are the contract; the value is machine-dependent.
    #[allow(dead_code)]
    avx2_fma: bool,
    sequences: usize,
    tokens: usize,
    dim: usize,
    throughput: Vec<SkipgramRow>,
    single_thread_kernel_speedup: f64,
    sharding: ShardingBench,
}

#[derive(Deserialize)]
struct SkipgramRow {
    threads: usize,
    kernel: String,
    tokens_per_sec: f64,
    speedup_vs_scalar_1t: f64,
}

#[derive(Deserialize)]
struct ShardingBench {
    skewed_sequences: usize,
    skewed_tokens: usize,
    threads: usize,
    static_makespan_tokens: u64,
    balanced_makespan_tokens: u64,
    simulated_balance_ratio: f64,
    measured_static_tokens_per_sec: f64,
    measured_balanced_tokens_per_sec: f64,
}

#[derive(Deserialize)]
struct KnnBench {
    scale: String,
    rows: usize,
    dim: usize,
    k: usize,
    nlists: usize,
    queries: usize,
    build_seconds: f64,
    recall_target: f64,
    speedup_target: f64,
    target_met: bool,
    exact: KnnLatency,
    sweep: Vec<KnnSweepRow>,
}

#[derive(Deserialize)]
struct KnnLatency {
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
    queries_per_sec: f64,
}

#[derive(Deserialize)]
struct KnnSweepRow {
    nprobe: usize,
    recall_at_k: f64,
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
    queries_per_sec: f64,
    speedup_vs_exact: f64,
}

#[derive(Deserialize)]
struct ServingBench {
    scale: String,
    users: usize,
    lanes: usize,
    profiler_threads: usize,
    target_pps: f64,
    sim_duration_s: u64,
    mean_gap_ms: u64,
    packets: u64,
    observations: u64,
    ticks: u64,
    reports: u64,
    sessions_profiled: u64,
    profiles_emitted: u64,
    late_dropped: u64,
    peak_resident_events: usize,
    sustained_pps: f64,
    ingest_seconds: f64,
    wall_seconds: f64,
    report_latency_ms: ServingLatency,
    peak_rss_kb: u64,
    taxonomy_invariant_ok: bool,
}

#[derive(Deserialize)]
struct ServingLatency {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    max_ms: f64,
}

fn read(name: &str) -> String {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn bench_profiling_json_matches_schema() {
    let b: ProfilingBench =
        serde_json::from_str(&read("bench_profiling.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.hardware_threads >= 1);
    assert!(b.sessions > 0 && b.vocabulary > 0 && b.dim > 0 && b.n_neighbors > 0);
    assert!(b.seed_loop_sessions_per_sec > 0.0);
    assert!(b.single_query_sessions_per_sec > 0.0);
    assert!(!b.throughput.is_empty());
    for row in &b.throughput {
        assert!(row.threads >= 1);
        assert!(row.batch_size >= 1);
        assert!(row.sessions_per_sec > 0.0, "non-positive throughput");
        assert!(row.speedup_vs_seed > 0.0);
    }
    assert!(b.best_speedup_at_4_threads > 0.0);
    // The headline number must actually come from the 4-thread rows.
    let best4 = b
        .throughput
        .iter()
        .filter(|r| r.threads == 4)
        .map(|r| r.speedup_vs_seed)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (b.best_speedup_at_4_threads - best4).abs() < 1e-9,
        "best_speedup_at_4_threads {} != max over 4-thread rows {best4}",
        b.best_speedup_at_4_threads
    );
}

#[test]
fn bench_knn_json_matches_schema() {
    let b: KnnBench = serde_json::from_str(&read("bench_knn.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.rows > 0 && b.dim > 0 && b.k > 0 && b.nlists > 0 && b.queries > 0);
    assert!(b.build_seconds > 0.0);
    assert!(b.recall_target > 0.0 && b.recall_target <= 1.0);
    assert!(b.speedup_target >= 1.0);
    let e = &b.exact;
    assert!(e.p50_ms > 0.0 && e.p95_ms > 0.0 && e.mean_ms > 0.0);
    assert!(e.p50_ms <= e.p95_ms, "p50 must not exceed p95");
    assert!(e.queries_per_sec > 0.0);
    assert!(!b.sweep.is_empty());
    let mut met = false;
    for (i, r) in b.sweep.iter().enumerate() {
        assert!(r.nprobe >= 1 && r.nprobe <= b.nlists);
        if i > 0 {
            assert!(r.nprobe > b.sweep[i - 1].nprobe, "sweep must ascend");
        }
        assert!((0.0..=1.0).contains(&r.recall_at_k), "recall out of range");
        assert!(r.p50_ms > 0.0 && r.p95_ms > 0.0 && r.mean_ms > 0.0);
        assert!(r.p50_ms <= r.p95_ms);
        assert!(r.queries_per_sec > 0.0 && r.speedup_vs_exact > 0.0);
        met |= r.recall_at_k >= b.recall_target && r.speedup_vs_exact >= b.speedup_target;
    }
    assert_eq!(b.target_met, met, "target_met must match the sweep rows");
    // The sweep always ends exhaustive, where IVF is bit-identical to the
    // exact scan — recall below 1.0 there means the index is broken.
    let last = b.sweep.last().unwrap();
    assert_eq!(last.nprobe, b.nlists, "sweep must end at nprobe == nlists");
    assert!(
        (last.recall_at_k - 1.0).abs() < 1e-12,
        "exhaustive probing must have recall 1.0, got {}",
        last.recall_at_k
    );
    // The committed artifact is the paper-scale run and must back the
    // README's headline claim: >= 0.95 recall@1000 at >= 10x throughput
    // on a million-hostname vocabulary.
    if b.scale == "default" {
        assert!(b.rows >= 1_000_000, "default scale is the 1M-row ablation");
        assert!(
            b.target_met,
            "committed default-scale run must meet the recall/speedup target"
        );
    }
}

#[test]
fn bench_serving_json_matches_schema() {
    let b: ServingBench =
        serde_json::from_str(&read("bench_serving.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.users > 0 && b.lanes >= 1 && b.profiler_threads >= 1);
    assert!(b.target_pps > 0.0 && b.sim_duration_s > 0);
    assert!(b.mean_gap_ms >= 2, "calibration hit the clamp floor");
    assert!(b.packets > 0);
    assert!(
        b.observations > 0 && b.observations <= b.packets,
        "at most one observation per packet"
    );
    assert!(b.ticks > 0);
    assert!(
        b.reports <= b.ticks,
        "reports are the subset of ticks that profiled someone"
    );
    assert!(b.sessions_profiled > 0);
    assert!(
        b.profiles_emitted <= b.sessions_profiled,
        "a session profiles at most once per tick"
    );
    // The generator delivers in order; an in-order stream can never
    // outrun the watermark.
    assert_eq!(b.late_dropped, 0, "in-order ingest late-dropped events");
    assert!(b.peak_resident_events > 0);
    assert!(b.sustained_pps > 0.0);
    assert!(b.ingest_seconds > 0.0 && b.ingest_seconds <= b.wall_seconds);
    let l = &b.report_latency_ms;
    assert!(l.p50_ms > 0.0 && l.mean_ms > 0.0);
    assert!(l.p50_ms <= l.p95_ms && l.p95_ms <= l.p99_ms && l.p99_ms <= l.max_ms);
    assert!(b.peak_rss_kb > 0, "VmHWM must be readable where this runs");
    assert!(b.taxonomy_invariant_ok, "merged lane taxonomy broke");
}

#[test]
fn bench_skipgram_json_matches_schema() {
    let b: SkipgramBench =
        serde_json::from_str(&read("bench_skipgram.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.hardware_threads >= 1);
    assert!(b.sequences > 0 && b.tokens > 0 && b.dim > 0);
    assert!(!b.throughput.is_empty());
    for row in &b.throughput {
        assert!(row.threads >= 1);
        assert!(
            row.kernel == "scalar" || row.kernel == "simd",
            "unknown kernel {:?}",
            row.kernel
        );
        assert!(row.tokens_per_sec > 0.0);
        assert!(row.speedup_vs_scalar_1t > 0.0);
    }
    // The scalar 1-thread row is the speedup baseline by definition.
    let baseline = b
        .throughput
        .iter()
        .find(|r| r.threads == 1 && r.kernel == "scalar")
        .expect("scalar 1-thread baseline row missing");
    assert!((baseline.speedup_vs_scalar_1t - 1.0).abs() < 1e-9);
    assert!(b.single_thread_kernel_speedup > 0.0);

    let s = &b.sharding;
    assert!(s.skewed_sequences > 0 && s.skewed_tokens > 0 && s.threads >= 1);
    assert!(s.static_makespan_tokens > 0 && s.balanced_makespan_tokens > 0);
    assert!(
        s.balanced_makespan_tokens <= s.static_makespan_tokens,
        "balanced sharding must not worsen the simulated makespan"
    );
    assert!(s.simulated_balance_ratio >= 1.0);
    assert!(s.measured_static_tokens_per_sec > 0.0);
    assert!(s.measured_balanced_tokens_per_sec > 0.0);
}
