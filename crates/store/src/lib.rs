//! # hostprof-store
//!
//! Columnar, interned trace storage (DESIGN.md §13) — the memory-lean
//! representation that makes a 10⁶-user synthetic world tractable in one
//! process.
//!
//! The batch pipeline historically carried observations as per-event
//! `String` hostnames inside per-user `Vec`s of structs. At a few hundred
//! users that is fine; at a million users the allocator overhead and
//! pointer chasing dominate, and the "production-scale" claim stops being
//! credible. This crate replaces that shape with three pieces:
//!
//! * [`HostInterner`] — a global append-only hostname table. Every
//!   distinct hostname is stored **once** in a contiguous byte arena and
//!   addressed by a dense `u32` id; lookups go through a hash index that
//!   stores ids, not copies of the strings.
//! * [`TraceColumns`] — structure-of-arrays observation storage:
//!   parallel `timestamps` / `host id` / `wire-byte count` columns laid
//!   out user-major, with a CSR offset table giving each user's
//!   observation range. Timestamps are `u32` milliseconds (a ~49-day
//!   horizon, checked at build time), so one observation costs 12 bytes
//!   flat — no per-event allocation at all. The user-id column of the
//!   conceptual `(t, user, host, bytes)` quadruple is delta-encoded by
//!   the offset table rather than materialized.
//! * [`TraceAccess`] — the accessor trait through which the batch
//!   profiler and the serving engine read a trace without knowing its
//!   representation, so the legacy materialized path and the columnar
//!   path stay interchangeable (and golden replay stays byte-identical).
//!
//! [`flat`] provides the mmap-friendly on-disk layout (aligned
//! little-endian sections behind a table of contents) shared by
//! [`TraceColumns`] and the embedding store.

pub mod access;
pub mod columns;
pub mod flat;
pub mod intern;

pub use access::TraceAccess;
pub use columns::{TraceColumns, TraceColumnsBuilder};
pub use flat::{FlatError, FlatReader, FlatWriter};
pub use intern::HostInterner;
