//! # hostprof-bench
//!
//! The benchmark harness: one binary per paper figure / in-text result
//! (see `DESIGN.md` §4 for the experiment index) plus Criterion
//! micro-benches for the performance-sensitive paths.
//!
//! Every binary:
//!
//! * honors `HOSTPROF_SCALE` = `tiny` | `small` | `default` (default:
//!   `small`) so the same code runs in seconds for smoke tests and at full
//!   scale for the recorded results;
//! * prints a human-readable report that mirrors what the paper's figure
//!   or table shows;
//! * writes machine-readable JSON to `results/<experiment>.json` so
//!   `EXPERIMENTS.md` numbers are regenerable.

pub mod chart;

use hostprof::scenario::ScenarioConfig;
use serde::Serialize;
use std::path::PathBuf;

/// Scale selected via the `HOSTPROF_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast smoke scale.
    Tiny,
    /// Minutes-fast evaluation scale (the recorded EXPERIMENTS.md runs).
    Small,
    /// The full laptop-scale model of the paper's deployment.
    Default,
}

impl Scale {
    /// Read `HOSTPROF_SCALE`, defaulting to [`Scale::Small`].
    pub fn from_env() -> Self {
        match std::env::var("HOSTPROF_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("default") | Ok("full") => Scale::Default,
            _ => Scale::Small,
        }
    }

    /// The scenario configuration for this scale.
    pub fn scenario(self) -> ScenarioConfig {
        match self {
            Scale::Tiny => ScenarioConfig::tiny(),
            Scale::Small => ScenarioConfig::small(),
            Scale::Default => ScenarioConfig::paper_month(),
        }
    }

    /// Human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Default => "default",
        }
    }
}

/// Write an experiment's JSON record to `results/<name>.json` (created
/// next to the workspace root; best effort — printing is the primary
/// output).
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

fn results_dir() -> PathBuf {
    // The workspace root is two levels up from this crate at build time,
    // but binaries run from arbitrary cwd; prefer CARGO_MANIFEST_DIR's
    // grandparent and fall back to ./results.
    let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"));
    from_manifest.unwrap_or_else(|| PathBuf::from("results"))
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Print a `label: value` row with aligned columns.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // from_env reads the process env; just check the mapping logic via
        // scenario shapes.
        assert_eq!(Scale::Tiny.scenario().trace.days, 2);
        assert_eq!(Scale::Small.scenario().trace.days, 12);
        assert_eq!(Scale::Default.scenario().trace.days, 30);
    }

    #[test]
    fn results_dir_is_stable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
