//! The partial hostname → category labeling (the paper's `H_L`).
//!
//! Google Adwords classified only **10.6 %** of the ~470 K hostnames the
//! paper's users visited (Section 4), and the authors obtained labels for
//! roughly 50 K hostnames overall (Section 5.4). [`Ontology`] models exactly
//! that artifact: a lookup from hostname to [`CategoryVector`] that covers
//! only a subset of the hostname universe, plus coverage accounting.

use crate::vector::CategoryVector;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A partial mapping from hostnames to category vectors.
///
/// Hostnames are stored lowercase; lookups are case-insensitive so the
/// observer-side pipeline never misses a label because of wire-format
/// casing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ontology {
    labels: HashMap<String, CategoryVector>,
}

/// Coverage accounting for a hostname universe (reproduces the Section 4
/// "Google Adwords classifies only 10.6 % of the hostnames" measurement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Number of hostnames in the queried universe.
    pub universe: usize,
    /// Number of those with a (non-empty) label.
    pub labeled: usize,
}

impl CoverageStats {
    /// Fraction of the universe that is labeled, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.universe == 0 {
            0.0
        } else {
            self.labeled as f64 / self.universe as f64
        }
    }
}

impl Ontology {
    /// An ontology with no labels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the label for `hostname`. Empty vectors are
    /// treated as "no label" and remove any existing entry, so that
    /// [`Ontology::is_labeled`] and coverage statistics stay meaningful.
    pub fn insert(&mut self, hostname: &str, categories: CategoryVector) {
        let key = hostname.to_ascii_lowercase();
        if categories.is_empty() {
            self.labels.remove(&key);
        } else {
            self.labels.insert(key, categories);
        }
    }

    /// Look up the label of a hostname.
    pub fn lookup(&self, hostname: &str) -> Option<&CategoryVector> {
        if hostname.chars().any(|c| c.is_ascii_uppercase()) {
            self.labels.get(&hostname.to_ascii_lowercase())
        } else {
            self.labels.get(hostname)
        }
    }

    /// Whether the hostname is in `H_L`.
    pub fn is_labeled(&self, hostname: &str) -> bool {
        self.lookup(hostname).is_some()
    }

    /// Number of labeled hostnames (`|H_L|`).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no hostname is labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate over `(hostname, categories)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CategoryVector)> {
        self.labels.iter().map(|(h, v)| (h.as_str(), v))
    }

    /// Coverage of a hostname universe: how many of `universe`'s hostnames
    /// this ontology labels. Duplicate hostnames in the input are counted
    /// once, mirroring how the paper counts unique hostnames.
    pub fn coverage<'a, I>(&self, universe: I) -> CoverageStats
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut seen = std::collections::HashSet::new();
        let mut labeled = 0usize;
        for h in universe {
            let key = h.to_ascii_lowercase();
            if seen.insert(key.clone()) && self.labels.contains_key(&key) {
                labeled += 1;
            }
        }
        CoverageStats {
            universe: seen.len(),
            labeled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::CategoryId;

    fn cv(id: u16) -> CategoryVector {
        CategoryVector::singleton(CategoryId(id))
    }

    #[test]
    fn insert_and_lookup_are_case_insensitive() {
        let mut o = Ontology::new();
        o.insert("Booking.COM", cv(1));
        assert!(o.is_labeled("booking.com"));
        assert!(o.is_labeled("BOOKING.com"));
        assert_eq!(o.lookup("booking.com").unwrap().get(CategoryId(1)), 1.0);
    }

    #[test]
    fn empty_vector_removes_label() {
        let mut o = Ontology::new();
        o.insert("a.com", cv(1));
        assert_eq!(o.len(), 1);
        o.insert("a.com", CategoryVector::empty());
        assert!(!o.is_labeled("a.com"));
        assert!(o.is_empty());
    }

    #[test]
    fn coverage_counts_unique_hostnames() {
        let mut o = Ontology::new();
        o.insert("a.com", cv(1));
        o.insert("b.com", cv(2));
        let stats = o.coverage(["a.com", "a.com", "c.com", "d.com", "B.COM"]);
        assert_eq!(stats.universe, 4);
        assert_eq!(stats.labeled, 2);
        assert!((stats.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_empty_universe_is_zero() {
        let o = Ontology::new();
        let stats = o.coverage(std::iter::empty());
        assert_eq!(stats.universe, 0);
        assert_eq!(stats.fraction(), 0.0);
    }
}
