//! Exact-vs-IVF differential mode: what does approximate nearest-neighbor
//! search *cost* the profiler?
//!
//! The IVF-flat index trades recall for throughput. Recall loss is not an
//! end in itself — what matters is how much the dropped neighbors perturb
//! the paper's downstream quantities. This module measures the full error
//! propagation chain on one seeded synthetic world, stage-attributed like
//! every other oracle report:
//!
//! * **knn** — recall@N of the IVF retrieval against the exact scan, per
//!   session (a session below the configured floor is a mismatch);
//! * **profile** — the induced divergence in the Eq. 3/4 category
//!   importances (max-abs and L1 across the category union);
//! * **ctr** — the end-to-end CTR gap between two complete ad-replacement
//!   experiments that differ *only* in the profiler's index.
//!
//! With `nprobe == nlists` (exhaustive probing) every stage must report
//! exactly zero divergence — IVF scans the same candidates with the same
//! kernel, so the whole chain is bit-identical. The conformance tests pin
//! both that and the loud-failure direction (a starved `nprobe` must
//! surface as attributed mismatches, not silence).

use crate::driver::mix;
use crate::{DiffReport, Mismatch, Stage};
use hostprof_ads::{AdDatabase, CtrExperiment, ExperimentConfig};
use hostprof_core::{PipelineConfig, Profiler, ProfilerConfig, Session};
use hostprof_embed::{
    EmbeddingSet, IndexConfig, KernelChoice, KnnScratch, Sharding, SkipGram, SkipGramConfig,
};
use hostprof_synth::{
    Population, PopulationConfig, Trace, TraceConfig, UserId, World, WorldConfig,
};

const DAY_MS: u64 = 86_400_000;
const SESSION_WINDOW_MS: u64 = 20 * 60_000;

/// Parameters of one exact-vs-IVF differential run.
#[derive(Debug, Clone)]
pub struct AnnConfig {
    /// Master seed; mixed into world/population/trace/train/index seeds.
    pub seed: u64,
    /// IVF inverted-list count (0 = auto √rows).
    pub nlists: usize,
    /// IVF lists probed per query; `nprobe >= nlists` is exhaustive.
    pub nprobe: usize,
    /// `N`: neighbors retrieved per session query.
    pub n_neighbors: usize,
    /// Recall@N below this floor is a `knn` mismatch.
    pub recall_floor: f64,
    /// Eq. 4 importance max-abs divergence above this is a `profile`
    /// mismatch.
    pub importance_tolerance: f64,
    /// Absolute eavesdropper-CTR gap above this is a `ctr` mismatch.
    pub ctr_tolerance: f64,
    /// Run the (comparatively slow) paired CTR experiments. The recall and
    /// profile stages always run.
    pub with_ctr: bool,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            nlists: 8,
            nprobe: 2,
            n_neighbors: 10,
            recall_floor: 1.0,
            importance_tolerance: 0.0,
            ctr_tolerance: 0.0,
            with_ctr: false,
        }
    }
}

impl AnnConfig {
    /// Exhaustive-probing configuration: every divergence tolerance at
    /// zero, because none is possible.
    pub fn exhaustive(seed: u64, nlists: usize) -> Self {
        Self {
            seed,
            nlists,
            nprobe: nlists,
            ..Default::default()
        }
    }
}

/// Aggregated outcome of one differential run. `diff` carries the
/// stage-attributed mismatches; the numeric fields summarize the error
/// propagation chain even when everything stayed within tolerance.
#[derive(Debug, Clone)]
pub struct AnnReport {
    /// Stage-attributed comparisons and mismatches.
    pub diff: DiffReport,
    /// Sessions with a session vector (i.e. actually compared).
    pub sessions_compared: usize,
    /// Mean recall@N across compared sessions.
    pub mean_recall: f64,
    /// Worst per-session recall@N.
    pub min_recall: f64,
    /// Largest per-category importance delta across all sessions.
    pub max_importance_abs: f64,
    /// Mean L1 distance between exact and IVF category importances.
    pub mean_importance_l1: f64,
    /// `(eavesdropper CTR, original CTR)` of the exact-index experiment
    /// (zeros when `with_ctr` was off).
    pub exact_ctr: (f64, f64),
    /// Same for the IVF-index experiment.
    pub ivf_ctr: (f64, f64),
    /// `|exact eaves CTR − IVF eaves CTR|`.
    pub ctr_gap: f64,
}

impl AnnReport {
    /// Multi-line human-readable summary, propagation chain first.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "ann differential: {} sessions, recall@N mean {:.4} min {:.4}, \
             Eq.3/4 max-abs {:.3e} mean-L1 {:.3e}, ctr gap {:.3e}\n",
            self.sessions_compared,
            self.mean_recall,
            self.min_recall,
            self.max_importance_abs,
            self.mean_importance_l1,
            self.ctr_gap
        );
        out.push_str(&self.diff.summary());
        out
    }
}

/// Train production embeddings for the differential world. Unlike the
/// bit-exactness driver (dim 3), this uses a moderately wide model so the
/// coarse quantizer has geometry to work with.
fn train_embeddings(corpus: &[Vec<String>], seed: u64) -> Option<EmbeddingSet> {
    let cfg = SkipGramConfig {
        dim: 16,
        window: 2,
        negatives: 3,
        epochs: 2,
        learning_rate: 0.025,
        min_count: 1,
        subsample: 0.0,
        threads: 1,
        seed,
        kernel: KernelChoice::Auto,
        sharding: Sharding::Static,
    };
    SkipGram::train(corpus, &cfg)
        .ok()
        .map(SkipGram::into_embeddings)
}

/// Run the exact-vs-IVF differential on one seeded synthetic world.
pub fn ann_differential_run(cfg: &AnnConfig) -> AnnReport {
    let mut report = DiffReport::default();

    let mut wc = WorldConfig::tiny();
    wc.seed = mix(cfg.seed, 11);
    let mut pc = PopulationConfig::tiny();
    pc.num_users = 12;
    pc.seed = mix(cfg.seed, 12);
    let mut tc = TraceConfig::tiny();
    tc.days = 2;
    tc.seed = mix(cfg.seed, 13);

    let world = World::generate(&wc);
    let population = Population::generate(&world, &pc);
    let trace = Trace::generate(&world, &population, &tc);

    // Per-(user, day) last-request sessions, as in the bit-exactness
    // driver.
    let blocklist = world.blocklist();
    let mut sessions: Vec<Session> = Vec::new();
    for u in 0..population.users().len() as u32 {
        let user = UserId(u);
        for day in 0..trace.days() {
            let lo = day as u64 * DAY_MS;
            let hi = lo + DAY_MS;
            let Some(end_ms) = trace
                .user_requests(user)
                .map(|r| r.t_ms)
                .filter(|&t| t >= lo && t < hi)
                .last()
            else {
                continue;
            };
            let ids = trace.window(user, end_ms, SESSION_WINDOW_MS);
            let names: Vec<&str> = ids.iter().map(|&id| world.hostname(id)).collect();
            sessions.push(Session::from_window(names.iter().copied(), Some(blocklist)));
        }
    }

    let mut corpus: Vec<Vec<String>> = Vec::new();
    for day in 0..trace.days() {
        for (_, hosts) in trace.daily_sequences(day) {
            corpus.push(
                hosts
                    .iter()
                    .map(|&h| world.hostname(h).to_string())
                    .collect(),
            );
        }
    }

    let ivf_index = IndexConfig::Ivf {
        nlists: cfg.nlists,
        nprobe: cfg.nprobe,
        seed: mix(cfg.seed, 14),
    };
    let mut mean_recall = 0.0f64;
    let mut min_recall = 1.0f64;
    let mut compared = 0usize;
    let mut max_importance_abs = 0.0f64;
    let mut importance_l1_sum = 0.0f64;

    if let Some(embeddings) = train_embeddings(&corpus, mix(cfg.seed, 15)) {
        let ontology = world.ontology();
        let exact = Profiler::new(
            &embeddings,
            ontology,
            ProfilerConfig {
                n_neighbors: cfg.n_neighbors,
                ..Default::default()
            },
        );
        let ivf = Profiler::new(
            &embeddings,
            ontology,
            ProfilerConfig {
                n_neighbors: cfg.n_neighbors,
                index: ivf_index,
                ..Default::default()
            },
        );

        let mut scratch = KnnScratch::new();
        for (si, session) in sessions.iter().enumerate() {
            let Some(sv) = exact
                .profile(session)
                .map(|p| p.session_vector)
                .filter(|v| !v.is_empty())
            else {
                continue;
            };
            compared += 1;

            // Stage knn: recall@N of the IVF retrieval.
            let truth = embeddings.nearest_to_vector_with(&sv, cfg.n_neighbors, &mut scratch);
            let approx = embeddings.nearest_to_vector_with_index(
                &sv,
                cfg.n_neighbors,
                ivf.index(),
                &mut scratch,
            );
            let mut truth_ids: Vec<u32> = truth.iter().map(|&(i, _)| i).collect();
            truth_ids.sort_unstable();
            let hits = approx
                .iter()
                .filter(|&&(i, _)| truth_ids.binary_search(&i).is_ok())
                .count();
            let recall = if truth.is_empty() {
                1.0
            } else {
                hits as f64 / truth.len() as f64
            };
            mean_recall += recall;
            min_recall = min_recall.min(recall);
            if recall + f64::EPSILON < cfg.recall_floor {
                report.check_failed(Mismatch {
                    stage: Stage::Knn,
                    item: format!("session{si}"),
                    max_abs: cfg.recall_floor - recall,
                    max_ulp: 0,
                    detail: format!(
                        "recall@{} = {recall:.4} below floor {:.4} ({hits}/{} neighbors kept)",
                        cfg.n_neighbors,
                        cfg.recall_floor,
                        truth.len()
                    ),
                });
            } else {
                report.check_ok();
            }

            // Stage profile: Eq. 3/4 importance divergence.
            let (abs, l1) = match (exact.profile(session), ivf.profile(session)) {
                (Some(pe), Some(pi)) => importance_divergence(&pe.categories, &pi.categories),
                (None, None) => (0.0, 0.0),
                (pe, pi) => {
                    report.check_failed(Mismatch {
                        stage: Stage::Profile,
                        item: format!("session{si}"),
                        max_abs: 1.0,
                        max_ulp: 0,
                        detail: format!("profiled: exact {}, ivf {}", pe.is_some(), pi.is_some()),
                    });
                    continue;
                }
            };
            max_importance_abs = max_importance_abs.max(abs);
            importance_l1_sum += l1;
            if abs > cfg.importance_tolerance {
                report.check_failed(Mismatch {
                    stage: Stage::Profile,
                    item: format!("session{si}"),
                    max_abs: abs,
                    max_ulp: 0,
                    detail: format!(
                        "Eq. 3/4 importance diverged by {abs:.3e} (L1 {l1:.3e}) under IVF \
                         nprobe={}/{}",
                        cfg.nprobe, cfg.nlists
                    ),
                });
            } else {
                report.check_ok();
            }
        }
    }

    // Stage ctr: two full experiments differing only in the index.
    let mut exact_ctr = (0.0, 0.0);
    let mut ivf_ctr = (0.0, 0.0);
    let mut ctr_gap = 0.0;
    if cfg.with_ctr {
        let mut ctr_tc = TraceConfig::tiny();
        ctr_tc.days = 3;
        ctr_tc.seed = mix(cfg.seed, 16);
        let ctr_trace = Trace::generate(&world, &population, &ctr_tc);
        let ads = AdDatabase::generate(&world, 600, mix(cfg.seed, 17));

        let experiment = |index: IndexConfig| {
            let mut pipeline = PipelineConfig {
                skipgram: SkipGramConfig {
                    epochs: 3,
                    dim: 24,
                    subsample: 0.0,
                    ..SkipGramConfig::default()
                },
                ..PipelineConfig::default()
            };
            pipeline.profiler.index = index;
            let config = ExperimentConfig {
                pipeline,
                profile_threads: 1,
                seed: mix(cfg.seed, 18),
                ..Default::default()
            };
            let result = CtrExperiment::new(&world, &population, &ctr_trace, &ads, config).run();
            (result.eaves_ctr(), result.orig_ctr())
        };
        exact_ctr = experiment(IndexConfig::Exact);
        ivf_ctr = experiment(ivf_index);
        ctr_gap = (exact_ctr.0 - ivf_ctr.0).abs();
        let orig_gap = (exact_ctr.1 - ivf_ctr.1).abs();
        if ctr_gap > cfg.ctr_tolerance || orig_gap > cfg.ctr_tolerance {
            report.check_failed(Mismatch {
                stage: Stage::Ctr,
                item: "experiment".into(),
                max_abs: ctr_gap.max(orig_gap),
                max_ulp: 0,
                detail: format!(
                    "eaves CTR {:.5} vs {:.5}, orig CTR {:.5} vs {:.5} under IVF nprobe={}/{}",
                    exact_ctr.0, ivf_ctr.0, exact_ctr.1, ivf_ctr.1, cfg.nprobe, cfg.nlists
                ),
            });
        } else {
            report.check_ok();
        }
    }

    AnnReport {
        diff: report,
        sessions_compared: compared,
        mean_recall: if compared == 0 {
            1.0
        } else {
            mean_recall / compared as f64
        },
        min_recall: if compared == 0 { 1.0 } else { min_recall },
        max_importance_abs,
        mean_importance_l1: if compared == 0 {
            0.0
        } else {
            importance_l1_sum / compared as f64
        },
        exact_ctr,
        ivf_ctr,
        ctr_gap,
    }
}

/// `(max-abs, L1)` distance between two category-importance vectors over
/// the union of their category ids.
fn importance_divergence(
    a: &hostprof_ontology::CategoryVector,
    b: &hostprof_ontology::CategoryVector,
) -> (f64, f64) {
    let mut ids: Vec<u16> = a.iter().map(|(c, _)| c.0).collect();
    ids.extend(b.iter().map(|(c, _)| c.0));
    ids.sort_unstable();
    ids.dedup();
    let mut max_abs = 0.0f64;
    let mut l1 = 0.0f64;
    for id in ids {
        let av = a.get(hostprof_ontology::CategoryId(id)) as f64;
        let bv = b.get(hostprof_ontology::CategoryId(id)) as f64;
        let d = (av - bv).abs();
        max_abs = max_abs.max(d);
        l1 += d;
    }
    (max_abs, l1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive probing is the zero of the whole propagation chain:
    /// recall 1.0 on every session, bit-identical profiles, bit-identical
    /// CTR — a clean report with zero tolerances.
    #[test]
    fn exhaustive_probing_reports_zero_divergence_end_to_end() {
        let report = ann_differential_run(&AnnConfig {
            with_ctr: true,
            ..AnnConfig::exhaustive(7, 6)
        });
        assert!(report.sessions_compared > 4, "{}", report.summary());
        assert_eq!(report.mean_recall, 1.0, "{}", report.summary());
        assert_eq!(report.min_recall, 1.0);
        assert_eq!(report.max_importance_abs, 0.0);
        assert_eq!(report.mean_importance_l1, 0.0);
        assert_eq!(report.ctr_gap, 0.0);
        assert_eq!(report.exact_ctr, report.ivf_ctr);
        assert!(report.diff.is_clean(), "{}", report.summary());
    }

    /// A starved probe budget must fail loudly with stage attribution —
    /// recall loss at knn, its propagation at profile.
    #[test]
    fn starved_nprobe_surfaces_stage_attributed_divergence() {
        let report = ann_differential_run(&AnnConfig {
            seed: 7,
            nlists: 16,
            nprobe: 1,
            ..Default::default()
        });
        assert!(report.sessions_compared > 4);
        assert!(
            report.min_recall < 1.0,
            "nprobe=1/16 kept full recall: {}",
            report.summary()
        );
        assert!(!report.diff.is_clean());
        assert!(
            report.diff.mismatches_in(Stage::Knn) > 0,
            "{}",
            report.summary()
        );
        // Recall loss that touches labeled neighbors must show up as
        // Eq. 3/4 divergence (tolerance 0 here).
        assert!(
            report.max_importance_abs > 0.0,
            "no importance divergence despite recall loss: {}",
            report.summary()
        );
        assert!(report.diff.mismatches_in(Stage::Profile) > 0);
    }

    /// The report's aggregates are internally consistent.
    #[test]
    fn report_aggregates_are_consistent() {
        let report = ann_differential_run(&AnnConfig {
            seed: 3,
            nlists: 8,
            nprobe: 4,
            recall_floor: 0.0,
            importance_tolerance: 1.0,
            ..Default::default()
        });
        assert!(report.mean_recall >= report.min_recall);
        assert!((0.0..=1.0).contains(&report.mean_recall));
        assert!(report.max_importance_abs >= 0.0);
        // With loose tolerances nothing fails, but everything is counted.
        assert!(report.diff.is_clean(), "{}", report.summary());
        assert_eq!(
            report.diff.items_checked,
            report.sessions_compared * 2,
            "one knn + one profile comparison per session"
        );
    }
}
