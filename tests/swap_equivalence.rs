//! Hot-swap equivalence properties (DESIGN.md §14): 500 seeded cases
//! per property, the versioned [`ServeEngine`] vs quiesced single-version
//! runs.
//!
//! The versioned serving contract is that a tick profiled *concurrently*
//! with a hot swap is bit-identical to what a fully quiesced engine
//! pinned to whichever version won the race would have produced at that
//! boundary. Equivalently: one atomic load pins the whole
//! {weights, labeled tables, kNN index} bundle for the tick, so a reader
//! can never observe a torn triple — if it could, its profiles would
//! match *no* pure version, and these properties would catch it.
//!
//! * **Property 1 (deterministic swap point)** — publish version 2 after
//!   a seed-chosen packet; every tick must match, bit for bit, the
//!   same-boundary tick of a quiesced engine pinned to the version the
//!   tick reports serving (`TickReport::model_seq`).
//! * **Property 2 (truly concurrent swapper)** — a second thread
//!   publishes a chain of versions while the ingest thread streams, with
//!   no synchronization beyond the versioned handle itself. Ticks must
//!   report a monotonically non-decreasing `model_seq` within the
//!   published range, and every tick must still match its version's
//!   quiesced run. The ingest thread never blocks on the swapper
//!   (`VersionedModel::load` is one atomic read).
//!
//! Both properties sweep lanes {1, 2, 4} × profiling threads {1, 2}.
//! Failure persistence follows `differential_proptests.rs`: cases are
//! printable 16-hex-digit seeds, failures print the seed, and
//! `tests/regressions/swap_equivalence.txt` is replayed first.

use hostprof::embed::{EmbeddingSet, Vocab};
use hostprof::net::{Packet, RequestEvent, TrafficSynthesizer};
use hostprof::ontology::{CategoryId, CategoryVector, Ontology};
use hostprof::profiling::{
    BatchProfiler, ModelVersion, Profiler, ProfilerConfig, ServeConfig, ServeEngine,
    SessionProfile, TickReport, VersionedModel,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const CASES: usize = 500;

/// splitmix64: the per-case parameter stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Case seed `i` of a property's deterministic 500-seed schedule.
fn case_seed(property: u64, i: usize) -> u64 {
    let mut s = property
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64);
    splitmix(&mut s)
}

/// Previously failing seeds, replayed before the fresh schedule.
/// Line format: `cc 0123456789abcdef # what broke`.
fn regression_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/swap_equivalence.txt"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("regression seed file {path} unreadable: {e}"));
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex = rest.split_whitespace().next().unwrap_or("");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|e| panic!("bad regression seed {hex:?} in {path}: {e}"));
        seeds.push(seed);
    }
    assert!(
        !seeds.is_empty(),
        "no `cc <seed>` entries in {path} — the regression net is gone"
    );
    seeds
}

/// All seeds a property runs: regressions first, then the schedule.
fn schedule(property: u64) -> Vec<u64> {
    let mut seeds = regression_seeds();
    seeds.extend((0..CASES).map(|i| case_seed(property, i)));
    seeds
}

// ---------------------------------------------------------------------
// Fixture: a family of model versions over the same vocabulary, each
// version's weights drawn from a salt-keyed stream so any cross-version
// contamination in a profile is a bit-level mismatch against every pure
// version.
// ---------------------------------------------------------------------

const DIM: usize = 4;

fn ontology() -> Ontology {
    let mut ontology = Ontology::new();
    for i in 0..6u16 {
        ontology.insert(
            &format!("h{i}.example"),
            CategoryVector::from_pairs(vec![
                (CategoryId(i % 4), 1.0),
                (CategoryId(4 + i % 3), 0.4),
            ]),
        );
    }
    ontology
}

/// Version `salt`'s embeddings: same 12-host vocabulary, weights from a
/// stream keyed by the salt.
fn embeddings_for(salt: u64) -> EmbeddingSet {
    let hosts: Vec<String> = (0..12).map(|i| format!("h{i}.example")).collect();
    let vocab = Vocab::build(std::iter::once(hosts.iter().map(String::as_str)), 1, 0.0);
    let mut state = 0x5a17_0000 ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let vectors: Vec<f32> = (0..vocab.len() * DIM)
        .map(|_| (splitmix(&mut state) >> 40) as f32 / (1u64 << 23) as f32 - 1.0)
        .collect();
    EmbeddingSet::new(DIM, vocab, vectors)
}

/// One case's workload: in-order requests over several report intervals.
fn workload(rng: &mut u64) -> Vec<Packet> {
    let synth = TrafficSynthesizer::default();
    let nusers = 2 + splitmix(rng) % 4;
    let nreqs = 30 + (splitmix(rng) % 60) as usize;
    let mut t = 0u64;
    let mut packets = Vec::new();
    for _ in 0..nreqs {
        t += splitmix(rng) % 60_000;
        let client = (splitmix(rng) % nusers) as u32;
        let hostname = format!("h{}.example", splitmix(rng) % 12);
        packets.extend(synth.packets_for(&RequestEvent {
            t_ms: t,
            client,
            hostname,
        }));
    }
    packets
}

struct CaseParams {
    lanes: usize,
    threads: usize,
    n_neighbors: usize,
}

impl CaseParams {
    fn draw(rng: &mut u64) -> Self {
        Self {
            lanes: [1, 2, 4][(splitmix(rng) % 3) as usize],
            threads: 1 + (splitmix(rng) % 2) as usize,
            n_neighbors: 1 + (splitmix(rng) % 6) as usize,
        }
    }

    fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            lanes: self.lanes,
            session_window_ms: 1_200_000,
            report_interval_ms: 300_000,
            ..ServeConfig::default()
        }
    }

    fn profiler_config(&self) -> ProfilerConfig {
        ProfilerConfig {
            n_neighbors: self.n_neighbors,
            ..ProfilerConfig::default()
        }
    }
}

/// Bit-exact fingerprint of one tick's payload (everything except
/// `compute_micros`, which is wall clock).
type TickFp = (u64, Vec<(u32, u64, Option<ProfileFp>)>);
type ProfileFp = (Vec<u32>, Vec<(u16, u32)>, usize, usize);

fn profile_fp(p: &SessionProfile) -> ProfileFp {
    (
        p.session_vector.iter().map(|v| v.to_bits()).collect(),
        p.categories
            .iter()
            .map(|(c, w)| (c.0, w.to_bits()))
            .collect(),
        p.labeled_in_session,
        p.labeled_neighbors,
    )
}

fn tick_fp(t: &TickReport) -> TickFp {
    (
        t.boundary,
        t.entries
            .iter()
            .map(|e| (e.user, e.anchor, e.profile.as_ref().map(profile_fp)))
            .collect(),
    )
}

/// Quiesced reference: the same stream through a fixed engine pinned to
/// one version's embeddings, keyed by tick boundary.
fn quiesced_ticks(
    packets: &[Packet],
    params: &CaseParams,
    embeddings: &EmbeddingSet,
    ontology: &Ontology,
) -> std::collections::BTreeMap<u64, TickFp> {
    let profiler = Profiler::new(embeddings, ontology, params.profiler_config());
    let mut engine = ServeEngine::new(
        params.serve_config(),
        BatchProfiler::new(profiler, params.threads),
        None,
    );
    let mut ticks = Vec::new();
    for pkt in packets {
        ticks.extend(engine.ingest_packet(pkt));
    }
    ticks.extend(engine.flush());
    ticks.iter().map(|t| (t.boundary, tick_fp(t))).collect()
}

/// Assert every versioned tick equals the same-boundary tick of the
/// quiesced run for the version it reports serving.
fn assert_ticks_match_quiesced(
    ticks: &[TickReport],
    references: &std::collections::BTreeMap<u64, std::collections::BTreeMap<u64, TickFp>>,
    seed: u64,
    what: &str,
) {
    for t in ticks {
        let quiesced = references.get(&t.model_seq).unwrap_or_else(|| {
            panic!(
                "{what}: tick at {} served unpublished version {} — add \
                 `cc {seed:016x}` to tests/regressions/swap_equivalence.txt",
                t.boundary, t.model_seq
            )
        });
        let want = quiesced.get(&t.boundary).unwrap_or_else(|| {
            panic!(
                "{what}: no quiesced tick at boundary {} — add `cc {seed:016x}` \
                 to tests/regressions/swap_equivalence.txt",
                t.boundary
            )
        });
        assert_eq!(
            &tick_fp(t),
            want,
            "{what}: tick at {} (version {}) diverged from the quiesced run — \
             possible torn weights/kNN bundle; add `cc {seed:016x}` to \
             tests/regressions/swap_equivalence.txt",
            t.boundary,
            t.model_seq
        );
    }
}

// ---------------------------------------------------------------------
// Property 1: a swap at a deterministic, seed-chosen packet index. Every
// tick must be bit-identical to the quiesced engine of whichever version
// it reports, and the version must flip from 1 to 2 exactly once.
// ---------------------------------------------------------------------

#[test]
fn deterministic_swap_matches_quiesced_runs_on_500_seeded_cases() {
    let ontology = ontology();
    let ont = Arc::new(ontology.clone());
    for seed in schedule(0x5a17_0001) {
        let mut rng = seed;
        let params = CaseParams::draw(&mut rng);
        let packets = workload(&mut rng);
        let swap_at = (splitmix(&mut rng) as usize) % packets.len().max(1);

        let e1 = embeddings_for(1);
        let e2 = embeddings_for(2);
        let references: std::collections::BTreeMap<_, _> = [
            (1u64, quiesced_ticks(&packets, &params, &e1, &ontology)),
            (2u64, quiesced_ticks(&packets, &params, &e2, &ontology)),
        ]
        .into_iter()
        .collect();

        let model = VersionedModel::new(ModelVersion::build(
            1,
            e1.clone(),
            Arc::clone(&ont),
            params.profiler_config(),
        ));
        let mut engine =
            ServeEngine::with_versioned(params.serve_config(), &model, params.threads, None);
        let mut ticks = Vec::new();
        for (i, pkt) in packets.iter().enumerate() {
            if i == swap_at {
                model.publish(ModelVersion::build(
                    2,
                    e2.clone(),
                    Arc::clone(&ont),
                    params.profiler_config(),
                ));
            }
            ticks.extend(engine.ingest_packet(pkt));
        }
        ticks.extend(engine.flush());

        let seqs: Vec<u64> = ticks.iter().map(|t| t.model_seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] <= w[1]),
            "version went backwards across ticks ({seqs:?}) — add \
             `cc {seed:016x}` to tests/regressions/swap_equivalence.txt"
        );
        assert_ticks_match_quiesced(
            &ticks,
            &references,
            seed,
            &format!("swap@{swap_at}, {} lanes", params.lanes),
        );
    }
}

// ---------------------------------------------------------------------
// Property 2: a swapper thread racing the ingest thread for real. The
// tick/publish interleaving is nondeterministic, but the contract must
// hold for every interleaving: monotone versions within the published
// range, each tick bit-identical to its version's quiesced run.
// ---------------------------------------------------------------------

#[test]
fn concurrent_swaps_match_quiesced_runs_on_500_seeded_cases() {
    let ontology = ontology();
    let ont = Arc::new(ontology.clone());
    for seed in schedule(0x5a17_0002) {
        let mut rng = seed;
        let params = CaseParams::draw(&mut rng);
        let packets = workload(&mut rng);
        let n_versions = 2 + splitmix(&mut rng) % 3; // publish 2..=4 on top of v1

        let references: std::collections::BTreeMap<_, _> = (1..=n_versions)
            .map(|v| {
                (
                    v,
                    quiesced_ticks(&packets, &params, &embeddings_for(v), &ontology),
                )
            })
            .collect();

        let model = VersionedModel::new(ModelVersion::build(
            1,
            embeddings_for(1),
            Arc::clone(&ont),
            params.profiler_config(),
        ));
        let done = AtomicBool::new(false);
        let ticks = std::thread::scope(|scope| {
            let swapper = scope.spawn(|| {
                // Publish the chain as fast as the builder can, yielding
                // between versions so the race lands at different ticks on
                // different runs — the contract must hold for all of them.
                for v in 2..=n_versions {
                    model.publish(ModelVersion::build(
                        v,
                        embeddings_for(v),
                        Arc::clone(&ont),
                        params.profiler_config(),
                    ));
                    std::thread::yield_now();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
            });
            let mut engine =
                ServeEngine::with_versioned(params.serve_config(), &model, params.threads, None);
            let mut ticks = Vec::new();
            for pkt in &packets {
                ticks.extend(engine.ingest_packet(pkt));
            }
            ticks.extend(engine.flush());
            done.store(true, Ordering::Release);
            swapper.join().expect("swapper panicked");
            ticks
        });

        let seqs: Vec<u64> = ticks.iter().map(|t| t.model_seq).collect();
        assert!(
            seqs.iter().all(|&s| s >= 1 && s <= n_versions),
            "tick served a version outside the published range ({seqs:?}) — \
             add `cc {seed:016x}` to tests/regressions/swap_equivalence.txt"
        );
        assert!(
            seqs.windows(2).all(|w| w[0] <= w[1]),
            "version went backwards across ticks ({seqs:?}) — add \
             `cc {seed:016x}` to tests/regressions/swap_equivalence.txt"
        );
        assert_ticks_match_quiesced(
            &ticks,
            &references,
            seed,
            &format!("concurrent swaps, {} lanes", params.lanes),
        );
    }
}
