//! The accessor trait through which the batch profiler and the serving
//! engine read a trace without knowing its representation.
//!
//! Two implementations exist: [`TraceColumns`](crate::TraceColumns) (the
//! columnar form, in this crate) and the legacy materialized
//! `Trace`-plus-`World` adapter (in `hostprof-synth`, which owns both
//! types). Host ids are opaque `u32`s scoped to the implementation —
//! consumers resolve them through [`TraceAccess::host_name`] and never
//! compare ids across implementations.

/// Read-only trace access: per-user time-ordered host sequences.
///
/// Window semantics are the paper's (and `Trace::window`'s): half-open
/// `(end − duration, end]`, except that a window whose start falls at or
/// before the epoch keeps the request stamped exactly 0. Span semantics
/// are half-open `[start, end)` — the daily-corpus bucketing.
pub trait TraceAccess {
    /// Number of users the trace covers (indexed population size).
    fn num_users(&self) -> usize;

    /// Total observations stored.
    fn num_events(&self) -> usize;

    /// Simulated days the trace spans.
    fn days(&self) -> u32;

    /// Resolve a host id to its hostname.
    fn host_name(&self, host: u32) -> &str;

    /// Append the hosts `user` contacted in `(end_ms − duration_ms,
    /// end_ms]` to `out`, time order, duplicates preserved.
    fn window_hosts(&self, user: u32, end_ms: u64, duration_ms: u64, out: &mut Vec<u32>);

    /// Append the hosts `user` contacted in `[start_ms, end_ms)` to
    /// `out`, time order, duplicates preserved.
    fn span_hosts(&self, user: u32, start_ms: u64, end_ms: u64, out: &mut Vec<u32>);

    /// The time of `user`'s last event in `[start_ms, end_ms)`, if any —
    /// the session anchor for a day-end profile.
    fn last_time_in(&self, user: u32, start_ms: u64, end_ms: u64) -> Option<u64>;
}
