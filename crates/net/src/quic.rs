//! Simplified QUIC Initial packets.
//!
//! The paper (§7.2) notes that QUIC leaks the requested hostname exactly
//! like HTTPS: the ClientHello travels in the CRYPTO frames of the Initial
//! packet. Real Initial packets are "protected", but the keys are derived
//! from the *public* Destination Connection ID (RFC 9001 §5.2), so **any
//! on-path observer can decrypt them** — the protection exists only to stop
//! casual middlebox ossification, not eavesdroppers. We therefore model the
//! Initial payload in the clear; the observer-visible information is
//! identical, and we skip only the keying ceremony (documented substitution,
//! DESIGN.md §2).
//!
//! Layout implemented here (RFC 9000 subset):
//!
//! ```text
//! first byte   0b1100_0000 (long header, Initial)
//! version      u32
//! dcid         u8 length + bytes (≤ 20)
//! scid         u8 length + bytes (≤ 20)
//! token        varint length + bytes
//! length       varint (remaining payload bytes)
//! payload      frames: PADDING (0x00), PING (0x01), CRYPTO (0x06)
//! ```

use crate::error::ParseError;
use crate::tls::ClientHello;
use crate::wire::{Reader, Writer};

/// QUIC v1 version number.
pub const QUIC_V1: u32 = 0x0000_0001;

/// Frame type codes handled by the observer.
mod frame {
    pub const PADDING: u64 = 0x00;
    pub const PING: u64 = 0x01;
    pub const CRYPTO: u64 = 0x06;
}

/// Encode a QUIC variable-length integer (RFC 9000 §16).
pub fn encode_varint(w: &mut Vec<u8>, v: u64) {
    match v {
        0..=0x3f => w.push(v as u8),
        0x40..=0x3fff => w.extend_from_slice(&(0x4000u16 | v as u16).to_be_bytes()),
        0x4000..=0x3fff_ffff => w.extend_from_slice(&(0x8000_0000u32 | v as u32).to_be_bytes()),
        _ => {
            assert!(v <= 0x3fff_ffff_ffff_ffff, "varint out of range");
            w.extend_from_slice(&(0xc000_0000_0000_0000u64 | v).to_be_bytes());
        }
    }
}

/// Decode a QUIC variable-length integer from the front of a buffer;
/// returns the value and the number of bytes consumed. Non-minimal
/// encodings are accepted, as RFC 9000 §16 requires of receivers.
pub fn decode_varint(bytes: &[u8]) -> Result<(u64, usize), ParseError> {
    let mut r = Reader::new(bytes);
    let v = read_varint(&mut r)?;
    Ok((v, bytes.len() - r.remaining()))
}

/// Decode a QUIC variable-length integer.
pub(crate) fn read_varint(r: &mut Reader<'_>) -> Result<u64, ParseError> {
    let first = r.u8()?;
    let prefix = first >> 6;
    let mut v = (first & 0x3f) as u64;
    let extra = match prefix {
        0 => 0,
        1 => 1,
        2 => 3,
        _ => 7,
    };
    for _ in 0..extra {
        v = (v << 8) | r.u8()? as u64;
    }
    Ok(v)
}

/// Coarse classification of a QUIC datagram's first packet — lets the
/// observer skip non-Initial long-header packets (Version Negotiation,
/// Retry, Handshake, 0-RTT) without flagging them as parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuicPacketKind {
    /// Client/server Initial — the only packet that can leak SNI.
    Initial,
    /// 0-RTT long-header packet.
    ZeroRtt,
    /// Handshake long-header packet.
    Handshake,
    /// Retry long-header packet.
    Retry,
    /// Version Negotiation (version field 0).
    VersionNegotiation,
    /// Short-header (1-RTT) packet.
    ShortHeader,
}

/// Classify a datagram's first byte(s) without a full parse.
pub fn classify(bytes: &[u8]) -> Result<QuicPacketKind, ParseError> {
    let mut r = Reader::new(bytes);
    let first = r.u8()?;
    if first & 0b1000_0000 == 0 {
        return Ok(QuicPacketKind::ShortHeader);
    }
    let version = r.u32()?;
    if version == 0 {
        return Ok(QuicPacketKind::VersionNegotiation);
    }
    Ok(match (first >> 4) & 0b11 {
        0b00 => QuicPacketKind::Initial,
        0b01 => QuicPacketKind::ZeroRtt,
        0b10 => QuicPacketKind::Handshake,
        _ => QuicPacketKind::Retry,
    })
}

/// A simplified Initial packet carrying a TLS handshake in CRYPTO frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialPacket {
    /// QUIC version (always [`QUIC_V1`] here).
    pub version: u32,
    /// Destination connection id.
    pub dcid: Vec<u8>,
    /// Source connection id.
    pub scid: Vec<u8>,
    /// Reassembled CRYPTO stream (the TLS handshake bytes).
    pub crypto: Vec<u8>,
}

impl InitialPacket {
    /// Build an Initial for a ClientHello to `server_name`, with
    /// deterministic connection ids derived from the name.
    pub fn for_hostname(server_name: &str) -> Self {
        let ch = ClientHello::for_hostname(server_name);
        let mut dcid = vec![0u8; 8];
        dcid.copy_from_slice(&ch.random[..8]);
        let mut scid = vec![0u8; 8];
        scid.copy_from_slice(&ch.random[8..16]);
        Self {
            version: QUIC_V1,
            dcid,
            scid,
            crypto: ch.encode_handshake(),
        }
    }

    /// Serialize to wire bytes. The CRYPTO stream is emitted as a single
    /// frame at offset 0, padded to at least 1200 bytes as RFC 9000 §8.1
    /// requires for client Initials.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.crypto.len() + 16);
        encode_varint(&mut payload, frame::CRYPTO);
        encode_varint(&mut payload, 0); // offset
        encode_varint(&mut payload, self.crypto.len() as u64);
        payload.extend_from_slice(&self.crypto);

        let mut w = Writer::new();
        w.put_u8(0b1100_0000);
        w.put_u32(self.version);
        w.put_u8(self.dcid.len() as u8);
        w.put_bytes(&self.dcid);
        w.put_u8(self.scid.len() as u8);
        w.put_bytes(&self.scid);
        let mut head = w.into_bytes();
        encode_varint(&mut head, 0); // token length

        // Pad the datagram to ≥ 1200 bytes with PADDING frames.
        let framed_so_far = head.len();
        let min_total = 1200usize;
        let mut pad = 0usize;
        // length field size depends on payload size; compute after padding
        // decision using the 2-byte varint form (always sufficient here).
        let base = framed_so_far + 2 + payload.len();
        if base < min_total {
            pad = min_total - base;
        }
        payload.extend(std::iter::repeat_n(0u8, pad));

        let mut out = head;
        encode_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Parse an Initial packet, reassembling CRYPTO frames (which may
    /// appear out of order at arbitrary offsets).
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        let mut r = Reader::new(bytes);
        let first = r.u8()?;
        if first & 0b1000_0000 == 0 {
            return Err(ParseError::NotLongHeader);
        }
        // Long-header packet type bits 00 = Initial; the observer only
        // inspects Initials.
        if (first >> 4) & 0b11 != 0 {
            return Err(ParseError::WrongType);
        }
        let version = r.u32()?;
        if version != QUIC_V1 {
            return Err(ParseError::UnsupportedVersion);
        }
        let dcid_len = r.u8()? as usize;
        if dcid_len > 20 {
            return Err(ParseError::BadLength);
        }
        let dcid = r.take(dcid_len)?.to_vec();
        let scid_len = r.u8()? as usize;
        if scid_len > 20 {
            return Err(ParseError::BadLength);
        }
        let scid = r.take(scid_len)?.to_vec();
        let token_len = read_varint(&mut r)? as usize;
        r.take(token_len)?;
        let payload_len = read_varint(&mut r)? as usize;
        let mut p = r.sub(payload_len)?;

        // Reassemble CRYPTO frames.
        let mut segments: Vec<(u64, Vec<u8>)> = Vec::new();
        while !p.is_empty() {
            let ftype = read_varint(&mut p)?;
            match ftype {
                frame::PADDING | frame::PING => {}
                frame::CRYPTO => {
                    let offset = read_varint(&mut p)?;
                    let len = read_varint(&mut p)? as usize;
                    segments.push((offset, p.take(len)?.to_vec()));
                }
                _ => return Err(ParseError::WrongType),
            }
        }
        segments.sort_by_key(|(off, _)| *off);
        let mut crypto = Vec::new();
        for (off, seg) in segments {
            if off as usize != crypto.len() {
                return Err(ParseError::BadLength);
            }
            crypto.extend_from_slice(&seg);
        }
        Ok(Self {
            version,
            dcid,
            scid,
            crypto,
        })
    }

    /// Parse the carried TLS handshake as a ClientHello.
    pub fn client_hello(&self) -> Result<ClientHello, ParseError> {
        ClientHello::parse_handshake(&self.crypto)
    }
}

/// Observer fast path: hostname from a QUIC Initial datagram.
pub fn extract_sni_from_quic(bytes: &[u8]) -> Result<Option<String>, ParseError> {
    let pkt = InitialPacket::parse(bytes)?;
    let ch = pkt.client_hello()?;
    Ok(ch.sni().map(str::to_string))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_all_widths() {
        for &v in &[
            0u64,
            0x3f,
            0x40,
            0x3fff,
            0x4000,
            0x3fff_ffff,
            0x4000_0000,
            0x3fff_ffff_ffff_ffff,
        ] {
            let mut buf = Vec::new();
            encode_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(read_varint(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn initial_roundtrips_and_carries_sni() {
        let pkt = InitialPacket::for_hostname("hotels.com");
        let bytes = pkt.encode();
        assert!(bytes.len() >= 1200, "client Initials are padded to 1200B");
        let back = InitialPacket::parse(&bytes).unwrap();
        assert_eq!(back.dcid, pkt.dcid);
        assert_eq!(back.crypto, pkt.crypto);
        assert_eq!(back.client_hello().unwrap().sni(), Some("hotels.com"));
        assert_eq!(
            extract_sni_from_quic(&bytes).unwrap().as_deref(),
            Some("hotels.com")
        );
    }

    #[test]
    fn classify_distinguishes_packet_kinds() {
        let initial = InitialPacket::for_hostname("x.com").encode();
        assert_eq!(classify(&initial), Ok(QuicPacketKind::Initial));
        assert_eq!(
            classify(&[0x40u8, 0, 0, 0, 0]),
            Ok(QuicPacketKind::ShortHeader)
        );
        // Version Negotiation: long header with version 0.
        assert_eq!(
            classify(&[0b1100_0000, 0, 0, 0, 0]),
            Ok(QuicPacketKind::VersionNegotiation)
        );
        // Handshake packet type bits 10.
        assert_eq!(
            classify(&[0b1110_0000, 0, 0, 0, 1]),
            Ok(QuicPacketKind::Handshake)
        );
        assert_eq!(
            classify(&[0b1111_0000, 0, 0, 0, 1]),
            Ok(QuicPacketKind::Retry)
        );
        assert_eq!(
            classify(&[0b1101_0000, 0, 0, 0, 1]),
            Ok(QuicPacketKind::ZeroRtt)
        );
        assert_eq!(classify(&[]), Err(ParseError::Truncated));
    }

    #[test]
    fn short_header_packets_are_rejected() {
        let bytes = [0x40u8; 64];
        assert_eq!(InitialPacket::parse(&bytes), Err(ParseError::NotLongHeader));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let pkt = InitialPacket::for_hostname("x.com");
        let mut bytes = pkt.encode();
        bytes[1..5].copy_from_slice(&0xdead_beefu32.to_be_bytes());
        assert_eq!(
            InitialPacket::parse(&bytes),
            Err(ParseError::UnsupportedVersion)
        );
    }

    #[test]
    fn oversized_cid_is_rejected() {
        let pkt = InitialPacket::for_hostname("x.com");
        let mut bytes = pkt.encode();
        bytes[5] = 21; // dcid length beyond RFC limit
        assert_eq!(InitialPacket::parse(&bytes), Err(ParseError::BadLength));
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = InitialPacket::for_hostname("truncate.example").encode();
        for cut in 0..bytes.len().min(200) {
            let _ = InitialPacket::parse(&bytes[..cut]);
        }
        // And the tail region around the crypto frame too.
        for cut in bytes.len() - 50..bytes.len() {
            let _ = InitialPacket::parse(&bytes[..cut]);
        }
    }

    #[test]
    fn out_of_order_crypto_segments_reassemble() {
        let ch_bytes = ClientHello::for_hostname("split.example").encode_handshake();
        let mid = ch_bytes.len() / 2;
        // Hand-build a payload with the second segment first.
        let mut payload = Vec::new();
        encode_varint(&mut payload, frame::CRYPTO);
        encode_varint(&mut payload, mid as u64);
        encode_varint(&mut payload, (ch_bytes.len() - mid) as u64);
        payload.extend_from_slice(&ch_bytes[mid..]);
        encode_varint(&mut payload, frame::CRYPTO);
        encode_varint(&mut payload, 0);
        encode_varint(&mut payload, mid as u64);
        payload.extend_from_slice(&ch_bytes[..mid]);

        let mut head = Vec::new();
        head.push(0b1100_0000);
        head.extend_from_slice(&QUIC_V1.to_be_bytes());
        head.push(4);
        head.extend_from_slice(&[1, 2, 3, 4]);
        head.push(0);
        encode_varint(&mut head, 0); // token len
        encode_varint(&mut head, payload.len() as u64);
        head.extend_from_slice(&payload);

        let pkt = InitialPacket::parse(&head).unwrap();
        assert_eq!(pkt.client_hello().unwrap().sni(), Some("split.example"));
    }

    #[test]
    fn gap_in_crypto_stream_is_an_error() {
        let mut payload = Vec::new();
        encode_varint(&mut payload, frame::CRYPTO);
        encode_varint(&mut payload, 10); // offset 10 with nothing before it
        encode_varint(&mut payload, 4);
        payload.extend_from_slice(&[0; 4]);
        let mut head = Vec::new();
        head.push(0b1100_0000);
        head.extend_from_slice(&QUIC_V1.to_be_bytes());
        head.push(0);
        head.push(0);
        encode_varint(&mut head, 0);
        encode_varint(&mut head, payload.len() as u64);
        head.extend_from_slice(&payload);
        assert_eq!(InitialPacket::parse(&head), Err(ParseError::BadLength));
    }
}
