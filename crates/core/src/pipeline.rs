//! The daily retraining pipeline.
//!
//! Section 5.4: "We update our model every day. … we obtain from our
//! database the sequence of hosts visited by all the users during the whole
//! previous day. We use all that sequences to train a new model that we
//! immediately start using to calculate profiles." The extension reports
//! every 10 minutes and each report triggers profiling of the last
//! `T = 20` minutes.
//!
//! [`Pipeline`] packages those operating parameters with the training step
//! (including the Section 5.4 blocklist filtering of tracker hostnames,
//! applied to the *training corpus* as well as to sessions).

use crate::batch::BatchProfiler;
use crate::profiler::{Profiler, ProfilerConfig};
use hostprof_embed::{EmbeddingSet, SkipGram, SkipGramConfig, TrainStats};
use hostprof_ontology::{Blocklist, Ontology};
use serde::{Deserialize, Serialize};

/// Operating parameters of the profiling deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// SKIPGRAM hyperparameters (paper: gensim defaults).
    pub skipgram: SkipGramConfig,
    /// Profiler knobs (paper: N = 1000).
    pub profiler: ProfilerConfig,
    /// Session window `T` in minutes (paper: 20).
    pub session_minutes: u64,
    /// Extension report interval in minutes (paper: 10).
    pub report_minutes: u64,
    /// Mean-center the trained embeddings ("all-but-the-top" step 1).
    /// Laptop-scale corpora develop a strong common direction that
    /// flattens Eq. 3's α-weights; centering restores contrast. Corpora at
    /// the paper's scale don't need it, but it never hurts.
    pub center_embeddings: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            skipgram: SkipGramConfig::default(),
            profiler: ProfilerConfig::default(),
            session_minutes: 20,
            report_minutes: 10,
            center_embeddings: true,
        }
    }
}

impl PipelineConfig {
    /// Session window in milliseconds.
    pub fn session_window_ms(&self) -> u64 {
        self.session_minutes * 60_000
    }

    /// Report interval in milliseconds.
    pub fn report_interval_ms(&self) -> u64 {
        self.report_minutes * 60_000
    }
}

/// The back-end: trains daily models and hands out profilers.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    blocklist: Blocklist,
}

impl Pipeline {
    /// Create with a blocklist (use `Blocklist::new()` to disable
    /// filtering).
    pub fn new(config: PipelineConfig, blocklist: Blocklist) -> Self {
        Self { config, blocklist }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The tracker blocklist.
    pub fn blocklist(&self) -> &Blocklist {
        &self.blocklist
    }

    /// Train one day's model from the previous day's per-user hostname
    /// sequences. Tracker hostnames are filtered out first.
    pub fn train_model<S: AsRef<str>>(&self, sequences: &[Vec<S>]) -> Result<EmbeddingSet, String> {
        self.train_model_with_stats(sequences).map(|(emb, _)| emb)
    }

    /// Like [`Self::train_model`], but also returns the trainer's
    /// throughput/coverage stats for callers that report them (CLI,
    /// benches).
    pub fn train_model_with_stats<S: AsRef<str>>(
        &self,
        sequences: &[Vec<S>],
    ) -> Result<(EmbeddingSet, TrainStats), String> {
        let filtered: Vec<Vec<&str>> = sequences
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|h| h.as_ref())
                    .filter(|h| !self.blocklist.is_blocked(h))
                    .collect()
            })
            .filter(|seq: &Vec<&str>| seq.len() >= 2)
            .collect();
        let model = SkipGram::train(&filtered, &self.config.skipgram)?;
        let stats = *model.train_stats();
        let embeddings = model.into_embeddings();
        let embeddings = if self.config.center_embeddings {
            embeddings.centered()
        } else {
            embeddings
        };
        Ok((embeddings, stats))
    }

    /// A profiler bound to a trained model and an ontology.
    pub fn profiler<'a>(
        &self,
        embeddings: &'a EmbeddingSet,
        ontology: &'a Ontology,
    ) -> Profiler<'a> {
        Profiler::new(embeddings, ontology, self.config.profiler.clone())
    }

    /// A batched profiler over `threads` workers — what the report tick
    /// uses to profile all active users in one call. Produces exactly the
    /// same profiles as [`Self::profiler`], session for session.
    pub fn batch_profiler<'a>(
        &self,
        embeddings: &'a EmbeddingSet,
        ontology: &'a Ontology,
        threads: usize,
    ) -> BatchProfiler<'a> {
        BatchProfiler::new(self.profiler(embeddings, ontology), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use hostprof_ontology::{BlocklistProvider, CategoryId, CategoryVector};

    fn corpus() -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for i in 0..80 {
            let t = format!("travel{}.com", i % 4);
            out.push(vec![
                t.clone(),
                "travel-api.net".into(),
                format!("travel{}.com", (i + 1) % 4),
                "pixel.tracker.net".into(),
            ]);
            out.push(vec![
                format!("sport{}.com", i % 4),
                "sport-cdn.net".into(),
                format!("sport{}.com", (i + 2) % 4),
            ]);
        }
        out
    }

    fn pipeline() -> Pipeline {
        let blocklist =
            Blocklist::from_providers(vec![BlocklistProvider::new("t", ["tracker.net"])]);
        let config = PipelineConfig {
            skipgram: SkipGramConfig::tiny(),
            ..Default::default()
        };
        Pipeline::new(config, blocklist)
    }

    #[test]
    fn training_filters_trackers_out_of_the_vocabulary() {
        let p = pipeline();
        let emb = p.train_model(&corpus()).unwrap();
        assert!(emb.vector("pixel.tracker.net").is_none());
        assert!(emb.vector("travel0.com").is_some());
    }

    #[test]
    fn trained_model_supports_end_to_end_profiling() {
        let p = pipeline();
        let emb = p.train_model(&corpus()).unwrap();
        let mut ontology = Ontology::new();
        for i in 0..4 {
            ontology.insert(
                &format!("travel{i}.com"),
                CategoryVector::singleton(CategoryId(10)),
            );
            ontology.insert(
                &format!("sport{i}.com"),
                CategoryVector::singleton(CategoryId(20)),
            );
        }
        let profiler = p.profiler(&emb, &ontology);
        // The unlabeled API endpoint must inherit the travel label.
        let session = Session::from_window(["travel-api.net"], Some(p.blocklist()));
        let prof = profiler.profile(&session).expect("profile exists");
        assert!(
            prof.categories.get(CategoryId(10)) > prof.categories.get(CategoryId(20)),
            "{:?}",
            prof.categories
        );
    }

    #[test]
    fn window_arithmetic() {
        let c = PipelineConfig::default();
        assert_eq!(c.session_window_ms(), 20 * 60_000);
        assert_eq!(c.report_interval_ms(), 10 * 60_000);
    }

    #[test]
    fn empty_corpus_errors() {
        let p = pipeline();
        assert!(p.train_model(&Vec::<Vec<String>>::new()).is_err());
        // A corpus that is all trackers filters down to nothing.
        let all_blocked = vec![vec![
            "pixel.tracker.net".to_string(),
            "px2.tracker.net".to_string(),
        ]];
        assert!(p.train_model(&all_blocked).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let p = pipeline();
        let a = p.train_model(&corpus()).unwrap();
        let b = p.train_model(&corpus()).unwrap();
        assert_eq!(
            a.cosine("travel0.com", "travel1.com"),
            b.cosine("travel0.com", "travel1.com")
        );
    }
}
