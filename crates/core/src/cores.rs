//! Popularity cores (Figures 2 and 3).
//!
//! "We use 'Core XX' to denote the set of hostnames visited by at least
//! XX % of the users" (Section 6.1). Hostnames inside a core are
//! background noise shared by everyone; what a profiler can discriminate
//! on is the per-user count *outside* the core. The same construction
//! applies to categories (Figure 3).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// The items present in at least `fraction` of the user sets
/// (e.g. `fraction = 0.8` → the paper's Core 80).
///
/// ```
/// use hostprof_core::{core_items, counts_outside_core};
/// use std::collections::HashSet;
/// let users = vec![
///     HashSet::from(["google.com", "espn.com"]),
///     HashSet::from(["google.com", "hotels.com"]),
/// ];
/// let core = core_items(&users, 1.0);
/// assert!(core.contains("google.com"));
/// assert_eq!(counts_outside_core(&users, &core), vec![1, 1]);
/// ```
///
/// # Panics
/// Panics when `fraction` is not in `(0, 1]`.
pub fn core_items<T: Eq + Hash + Clone>(user_sets: &[HashSet<T>], fraction: f64) -> HashSet<T> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "core fraction must be in (0, 1]"
    );
    if user_sets.is_empty() {
        return HashSet::new();
    }
    let mut counts: HashMap<&T, usize> = HashMap::new();
    for set in user_sets {
        for item in set {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    // Guard the ceil against binary-float error: 0.8 × 5 evaluates to
    // 4.000000000000001, whose ceil would wrongly demand 5 users.
    let threshold = ((fraction * user_sets.len() as f64) - 1e-9).ceil() as usize;
    counts
        .into_iter()
        .filter(|(_, c)| *c >= threshold.max(1))
        .map(|(item, _)| item.clone())
        .collect()
}

/// Per-user count of items outside `core`, index-aligned with `user_sets`.
pub fn counts_outside_core<T: Eq + Hash>(
    user_sets: &[HashSet<T>],
    core: &HashSet<T>,
) -> Vec<usize> {
    user_sets
        .iter()
        .map(|set| set.iter().filter(|i| !core.contains(*i)).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets() -> Vec<HashSet<u32>> {
        // Item 0 visited by everyone; item 1 by 3/4; item 2 by 2/4;
        // items 10+u unique per user.
        (0..4u32)
            .map(|u| {
                let mut s: HashSet<u32> = HashSet::from([0, 10 + u]);
                if u < 3 {
                    s.insert(1);
                }
                if u < 2 {
                    s.insert(2);
                }
                s
            })
            .collect()
    }

    #[test]
    fn cores_shrink_as_the_threshold_rises() {
        let s = sets();
        let c100 = core_items(&s, 1.0);
        let c75 = core_items(&s, 0.75);
        let c50 = core_items(&s, 0.5);
        assert_eq!(c100, HashSet::from([0]));
        assert_eq!(c75, HashSet::from([0, 1]));
        assert_eq!(c50, HashSet::from([0, 1, 2]));
        assert!(c100.is_subset(&c75) && c75.is_subset(&c50));
    }

    #[test]
    fn outside_counts_align_with_users() {
        let s = sets();
        let core = core_items(&s, 0.75); // {0, 1}
        let out = counts_outside_core(&s, &core);
        // user 0: {2, 10} → 2; user 1: {2, 11} → 2; user 2: {12} → 1;
        // user 3: {13} → 1.
        assert_eq!(out, vec![2, 2, 1, 1]);
    }

    #[test]
    fn empty_population_has_empty_core() {
        let s: Vec<HashSet<u32>> = Vec::new();
        assert!(core_items(&s, 0.8).is_empty());
        assert!(counts_outside_core(&s, &HashSet::new()).is_empty());
    }

    #[test]
    fn exact_fraction_boundaries_are_not_lost_to_float_error() {
        // 4 of 5 users share item 1; Core 80 must include it even though
        // 0.8 × 5 > 4.0 in f64.
        let s: Vec<HashSet<u32>> = (0..5u32)
            .map(|u| {
                if u < 4 {
                    HashSet::from([1, 10 + u])
                } else {
                    HashSet::from([10 + u])
                }
            })
            .collect();
        assert_eq!(core_items(&s, 0.8), HashSet::from([1]));
    }

    #[test]
    fn fractional_threshold_uses_ceiling() {
        // 3 users, fraction 0.5 → threshold ceil(1.5) = 2 users.
        let s: Vec<HashSet<u32>> = vec![
            HashSet::from([1, 2]),
            HashSet::from([1]),
            HashSet::from([3]),
        ];
        let core = core_items(&s, 0.5);
        assert_eq!(core, HashSet::from([1]));
    }

    #[test]
    #[should_panic(expected = "core fraction")]
    fn zero_fraction_panics() {
        let _ = core_items(&Vec::<HashSet<u32>>::new(), 0.0);
    }
}
