//! Serving-loop load generator: sustained synthetic traffic for N users at
//! a target packet rate, driven through the full `ServeEngine` ingest →
//! window → profile path (DESIGN.md §12).
//!
//! Unlike the figure benches, which replay a finite materialized trace,
//! this binary draws from the lazy `TraceStream` emitter via
//! [`hostprof::serving::run_live`] — the exact driver behind `hostprof
//! serve` — and records what a deployment would care about: sustained
//! ingest throughput, report-tick compute-latency percentiles, peak RSS,
//! and whether the merged lane taxonomy invariant held under load.
//!
//! Writes `results/bench_serving.json` (override with `--out`).
//!
//! ```text
//! loadgen [--users N] [--pps F] [--duration SIM_SECONDS] [--lanes N]
//!         [--threads N] [--scale tiny|small|default|large] [--seed N]
//!         [--out PATH] [--smoke]
//! ```
//!
//! `--pps` targets *packets* per second of simulated time; the request
//! inter-arrival gap is calibrated against a warmup segment of the stream
//! (requests/sec and packets/request are both measured, not assumed).
//! `--smoke` is the CI preset: tiny scale, few users, short horizon.

use hostprof::serving::{run_live, LiveRunConfig};
use hostprof_bench::{header, peak_rss_kb, row, write_results_stamped, write_stamped_at, Scale};
use hostprof_synth::{Population, PopulationConfig, World};
use serde::Serialize;

#[derive(Serialize)]
struct LatencySummary {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    max_ms: f64,
}

#[derive(Serialize)]
struct ServingBenchResults {
    scale: String,
    users: usize,
    lanes: usize,
    profiler_threads: usize,
    target_pps: f64,
    sim_duration_s: u64,
    /// Calibrated per-user think time that hits the target rate.
    mean_gap_ms: u64,
    packets: u64,
    observations: u64,
    ticks: u64,
    reports: u64,
    sessions_profiled: u64,
    profiles_emitted: u64,
    late_dropped: u64,
    peak_resident_events: usize,
    /// Distinct hostnames interned by the windower — the whole universe a
    /// network observer saw, held once.
    interned_hosts: usize,
    /// Heap bytes of the windower's interned hostname table.
    interned_table_bytes: usize,
    /// Packets per wall-second through `ingest_packet` (tick compute
    /// included — it runs inline on the ingest thread).
    sustained_pps: f64,
    ingest_seconds: f64,
    wall_seconds: f64,
    report_latency_ms: LatencySummary,
    peak_rss_kb: u64,
    taxonomy_invariant_ok: bool,
}

struct Args {
    users: usize,
    pps: f64,
    duration_s: u64,
    lanes: usize,
    threads: usize,
    scale: Scale,
    seed: u64,
    out: Option<String>,
}

const USAGE: &str = "usage: loadgen [--users N] [--pps F] [--duration SIM_SECONDS] \
[--lanes N] [--threads N] [--scale tiny|small|default|large] [--seed N] [--out PATH] [--smoke]";

fn parse_args() -> Result<Args, String> {
    // Scale defaults mirror the other bench binaries (HOSTPROF_SCALE,
    // default small); flags override.
    let mut args = Args {
        users: 200,
        pps: 2_000.0,
        duration_s: 7_200,
        lanes: 4,
        threads: 2,
        scale: Scale::from_env(),
        seed: 0x010a_d4e4,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--users" => args.users = value(&mut i, "--users")?.parse().map_err(bad("--users"))?,
            "--pps" => args.pps = value(&mut i, "--pps")?.parse().map_err(bad("--pps"))?,
            "--duration" => {
                args.duration_s = value(&mut i, "--duration")?
                    .parse()
                    .map_err(bad("--duration"))?
            }
            "--lanes" => args.lanes = value(&mut i, "--lanes")?.parse().map_err(bad("--lanes"))?,
            "--threads" => {
                args.threads = value(&mut i, "--threads")?
                    .parse()
                    .map_err(bad("--threads"))?
            }
            "--seed" => args.seed = value(&mut i, "--seed")?.parse().map_err(bad("--seed"))?,
            "--scale" => {
                args.scale = match value(&mut i, "--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "default" | "full" => Scale::Default,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale {other:?}\n{USAGE}")),
                }
            }
            "--out" => args.out = Some(value(&mut i, "--out")?),
            "--smoke" => {
                args.scale = Scale::Tiny;
                args.users = 24;
                args.pps = 400.0;
                args.duration_s = 1_800;
                args.lanes = 2;
                args.threads = 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    if args.users == 0 || args.pps <= 0.0 || args.duration_s == 0 || args.lanes == 0 {
        return Err(format!(
            "--users/--pps/--duration/--lanes must be positive\n{USAGE}"
        ));
    }
    Ok(args)
}

fn bad<E: std::fmt::Display>(flag: &'static str) -> impl Fn(E) -> String {
    move |e| format!("{flag}: {e}\n{USAGE}")
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    let config = args.scale.scenario();
    let world = World::generate(&config.world);
    let population = Population::generate(
        &world,
        &PopulationConfig {
            num_users: args.users,
            ..config.population
        },
    );

    header("serving load generator");
    row("scale", args.scale.label());
    row("users", args.users);
    row("lanes", args.lanes);
    row("target packets/sec (sim)", format!("{:.0}", args.pps));
    row("sim duration", format!("{} s", args.duration_s));

    let report = run_live(
        &world,
        &population,
        &config.pipeline,
        &LiveRunConfig {
            seed: args.seed,
            target_pps: args.pps,
            duration_s: args.duration_s,
            lanes: args.lanes,
            threads: args.threads,
            update_every: None,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    });

    let stats = report.stats;
    let taxonomy_ok = report.taxonomy_invariant_ok();
    let sustained_pps = report.sustained_pps();
    let latency = LatencySummary {
        p50_ms: report.latency_percentile_ms(0.50),
        p95_ms: report.latency_percentile_ms(0.95),
        p99_ms: report.latency_percentile_ms(0.99),
        mean_ms: if report.latencies_ms.is_empty() {
            0.0
        } else {
            report.latencies_ms.iter().sum::<f64>() / report.latencies_ms.len() as f64
        },
        max_ms: report.latencies_ms.last().copied().unwrap_or(0.0),
    };

    row(
        "calibrated mean think time",
        format!("{} ms", report.mean_gap_ms),
    );
    row(
        "warmup packets/request",
        format!("{:.2}", report.packets_per_request),
    );
    row("packets ingested", stats.packets);
    row("observations", stats.observations);
    row("report ticks fired", stats.ticks);
    row("reports with profiles", report.latencies_ms.len());
    row("sessions profiled", stats.sessions_profiled);
    row("late-dropped events", report.late_dropped);
    row("sustained ingest rate", format!("{sustained_pps:.0} pkt/s"));
    row(
        "report latency p50/p95/p99",
        format!(
            "{:.2} / {:.2} / {:.2} ms",
            latency.p50_ms, latency.p95_ms, latency.p99_ms
        ),
    );
    row(
        "interned hostnames",
        format!(
            "{} ({} kB table)",
            report.interned_hosts,
            report.interned_table_bytes / 1024
        ),
    );
    row("peak RSS", format!("{} kB", peak_rss_kb()));
    row(
        "taxonomy invariant",
        if taxonomy_ok { "ok" } else { "VIOLATED" },
    );

    let results = ServingBenchResults {
        scale: args.scale.label().to_string(),
        users: args.users,
        lanes: args.lanes,
        profiler_threads: args.threads,
        target_pps: args.pps,
        sim_duration_s: args.duration_s,
        mean_gap_ms: report.mean_gap_ms,
        packets: stats.packets,
        observations: stats.observations,
        ticks: stats.ticks,
        reports: report.latencies_ms.len() as u64,
        sessions_profiled: stats.sessions_profiled,
        profiles_emitted: stats.profiles_emitted,
        late_dropped: report.late_dropped,
        peak_resident_events: report.peak_resident_events,
        interned_hosts: report.interned_hosts,
        interned_table_bytes: report.interned_table_bytes,
        sustained_pps,
        ingest_seconds: report.ingest_seconds,
        wall_seconds: report.wall_seconds,
        report_latency_ms: latency,
        peak_rss_kb: peak_rss_kb(),
        taxonomy_invariant_ok: taxonomy_ok,
    };
    let headline = format!(
        "{} users, {:.0} pkt/s sustained, p99 {:.2} ms",
        args.users, sustained_pps, results.report_latency_ms.p99_ms
    );
    match &args.out {
        Some(path) => {
            write_stamped_at(std::path::Path::new(path), &results, &headline).unwrap_or_else(|e| {
                eprintln!("loadgen: could not write {path}: {e}");
                std::process::exit(1);
            });
            println!("\n[results written to {path}]");
        }
        None => write_results_stamped("bench_serving", &results, &headline),
    }
    if !taxonomy_ok {
        std::process::exit(1);
    }
}
