//! Deterministic hostname minting.
//!
//! Hostnames in the synthetic world should *look* like the real thing —
//! topical stems for content sites (`flytrips4.com`), infrastructure-ish
//! names for CDNs/APIs (`img3.fastedge.net`, `api.bookstack.cloudnet.com`)
//! and tracker-ish names for the ad-tech universe (`pixel.admetrics.net`).
//! Realism matters only for readability of experiment output; uniqueness
//! and determinism matter for correctness, and both are guaranteed here.

use rand::Rng;
use std::collections::HashSet;

/// Topical stems per top-level topic name (see `Hierarchy::top_name`).
/// Topics without an entry fall back to [`GENERIC_STEMS`].
fn topic_stems(top_name: &str) -> &'static [&'static str] {
    match top_name {
        "Online Communities" => &["forum", "social", "chat", "community", "meet"],
        "Arts & Entertainment" => &["movie", "music", "show", "cinema", "series", "celeb"],
        "People & Society" => &["life", "society", "family", "culture", "belief"],
        "Jobs & Education" => &["jobs", "career", "campus", "course", "learn"],
        "Games" => &["game", "play", "arcade", "quest", "pixelplay"],
        "Internet & Telecom" => &["telecom", "mobile", "broadband", "hosting"],
        "Computers & Electronics" => &["tech", "gadget", "soft", "code", "hardware"],
        "Shopping" => &["shop", "store", "deal", "outlet", "bazaar"],
        "News" => &["news", "daily", "times", "press", "headline"],
        "Business & Industrial" => &["biz", "trade", "industry", "factory", "logistics"],
        "Reference" => &["wiki", "dict", "encyclo", "reference", "define"],
        "Books & Literature" => &["book", "novel", "read", "library", "poem"],
        "Sports" => &["sport", "futbol", "goal", "liga", "stadium"],
        "Travel" => &["travel", "trip", "fly", "hotel", "tour", "booking"],
        "Finance" => &["bank", "invest", "coin", "finance", "credit"],
        "Health" => &["health", "clinic", "medic", "pharma", "wellness"],
        "Real Estate" => &["homes", "estate", "rent", "property", "casa"],
        "Beauty & Fitness" => &["beauty", "fit", "gym", "style", "glow"],
        "Autos & Vehicles" => &["auto", "car", "motor", "drive", "garage"],
        "Science" => &["science", "lab", "research", "physics", "astro"],
        "Hobbies & Leisure" => &["hobby", "craft", "leisure", "collect", "garden"],
        "Food & Drink" => &["food", "recipe", "cook", "taste", "drink"],
        "Law & Government" => &["gov", "law", "legal", "tribunal", "civic"],
        "Pets & Animals" => &["pet", "animal", "vet", "paws", "zoo"],
        "Home & Garden" => &["home", "decor", "garden", "kitchen", "diy"],
        "Sororities & Student Societies" => &["students", "fraternity", "campuslife"],
        "Crime & Mystery Films" => &["noir", "mystery", "detective"],
        "Awards & Prizes" => &["awards", "prize", "trophy"],
        "Reviews & Comparisons" => &["review", "compare", "versus"],
        "DIY & Expert Content" => &["howto", "tutorial", "expert"],
        "Jellies & Preserves" => &["jam", "preserve", "marmalade"],
        "Cooktops & Ovens" => &["oven", "cooktop", "stove"],
        "Clubs & Nightlife" => &["club", "night", "party"],
        "Copiers & Fax" => &["copier", "fax", "printshop"],
        _ => GENERIC_STEMS,
    }
}

const GENERIC_STEMS: &[&str] = &["web", "portal", "online", "site", "hub"];

const SITE_SUFFIXES: &[&str] = &["", "world", "zone", "hub", "now", "plus", "top", "base"];

/// Weighted TLD pool matching the paper's predominantly Spanish-speaking
/// population (see Figure 4's zoomed clusters).
const TLDS: &[(&str, u32)] = &[
    ("com", 50),
    ("es", 14),
    ("net", 8),
    ("org", 6),
    ("com.ve", 5),
    ("com.co", 4),
    ("com.ar", 3),
    ("pe", 3),
    ("mx", 2),
    ("io", 2),
    ("tv", 2),
    ("cat", 1),
];

/// Fixed names for the ultra-popular "core" hosts every user touches
/// (google.com / facebook.com analogues). Topically near-useless for
/// profiling, exactly like the paper's Core-80 hostnames.
pub const CORE_SITE_NAMES: &[&str] = &[
    "searchzilla.com",
    "socialbook.com",
    "videotube.com",
    "mailhub.com",
    "wikiborg.org",
    "tweetly.com",
    "chatterapp.com",
    "shopzon.com",
    "mapsly.com",
    "newsfeed.com",
    "cloudboxx.com",
    "photogrid.com",
    "streamflixx.com",
    "musicfy.com",
    "translately.com",
    "weatherly.com",
    "docsuite.com",
    "calendario.com",
    "paypost.com",
    "msgr.com",
    "pinbook.com",
    "videochat.com",
    "bloghouse.com",
    "qnaplace.com",
    "jobsy.com",
    "marketplaza.com",
    "fotolog.com",
    "livecast.tv",
    "codeforge.io",
    "duolingua.com",
];

/// CDN operator stems; a CDN host looks like `img3.fastedge.net`.
const CDN_OPERATORS: &[&str] = &[
    "fastedge",
    "akamel",
    "cloudfrond",
    "edgecast",
    "cachefly",
    "speedcdn",
    "globedge",
    "statichost",
];
const CDN_PREFIXES: &[&str] = &["cdn", "static", "img", "media", "assets", "cache", "dl"];

/// API hosting platforms; an API host looks like `api.bkng.azureish.com`
/// (the paper's motivating example is `api.bkng.azure.com`).
const API_PLATFORMS: &[&str] = &["azureish", "awsborg", "gcloudy", "cloudnet", "apihost"];

/// Tracker / ad-server stems.
const TRACKER_STEMS: &[&str] = &[
    "doubletap",
    "admetrics",
    "pixeltrk",
    "adnexus",
    "clickcount",
    "audiencelab",
    "beacon",
    "retargetly",
    "bannerx",
    "popserve",
];
const TRACKER_PREFIXES: &[&str] = &["track", "ads", "pixel", "stats", "sync", "bid", "tag"];

/// Mints unique hostnames, deterministically for a given RNG stream.
#[derive(Debug, Default)]
pub struct NameGenerator {
    used: HashSet<String>,
}

impl NameGenerator {
    /// A fresh generator with no names taken.
    pub fn new() -> Self {
        Self::default()
    }

    fn pick_tld<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
        let total: u32 = TLDS.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0..total);
        for (tld, w) in TLDS {
            if x < *w {
                return tld;
            }
            x -= w;
        }
        unreachable!("weights exhausted")
    }

    fn unique(&mut self, candidate: String) -> String {
        if self.used.insert(candidate.clone()) {
            return candidate;
        }
        // Collision: append a counter before the TLD (or at the end for a
        // dotless name handed to `reserve`).
        for n in 2u32.. {
            let alt = match candidate.split_once('.') {
                Some((head, tail)) => format!("{head}{n}.{tail}"),
                None => format!("{candidate}{n}"),
            };
            if self.used.insert(alt.clone()) {
                return alt;
            }
        }
        unreachable!("u32 counter space exhausted")
    }

    /// Reserve an explicit name (used for the fixed core sites).
    ///
    /// Returns the name, made unique if it was already taken.
    pub fn reserve(&mut self, name: &str) -> String {
        self.unique(name.to_ascii_lowercase())
    }

    /// A topical content-site name like `flytrips4.es`.
    pub fn site_name<R: Rng + ?Sized>(&mut self, rng: &mut R, top_name: &str) -> String {
        let stems = topic_stems(top_name);
        let stem = stems[rng.gen_range(0..stems.len())];
        let suffix = SITE_SUFFIXES[rng.gen_range(0..SITE_SUFFIXES.len())];
        let num: u32 = if rng.gen_bool(0.35) {
            rng.gen_range(1..100)
        } else {
            0
        };
        let tld = Self::pick_tld(rng);
        let name = if num > 0 {
            format!("{stem}{suffix}{num}.{tld}")
        } else {
            format!("{stem}{suffix}.{tld}")
        };
        self.unique(name)
    }

    /// A CDN host name like `img3.fastedge.net`.
    pub fn cdn_name<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        let op = CDN_OPERATORS[rng.gen_range(0..CDN_OPERATORS.len())];
        let prefix = CDN_PREFIXES[rng.gen_range(0..CDN_PREFIXES.len())];
        let shard: u32 = rng.gen_range(0..32);
        self.unique(format!("{prefix}{shard}.{op}.net"))
    }

    /// An API endpoint name like `api.bkng.azureish.com`: an opaque service
    /// token under a hosting platform, mirroring the paper's example.
    pub fn api_name<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        let platform = API_PLATFORMS[rng.gen_range(0..API_PLATFORMS.len())];
        // Opaque 4-letter service token, intentionally content-free: the
        // whole point of the paper is that such names carry no topical
        // signal on their own. Re-roll the rare token that spells an
        // English profanity.
        const UNPRINTABLE: [&str; 6] = ["shit", "fuck", "cunt", "dick", "twat", "arse"];
        let token: String = loop {
            let t: String = (0..4)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            if !UNPRINTABLE.contains(&t.as_str()) {
                break t;
            }
        };
        self.unique(format!("api.{token}.{platform}.com"))
    }

    /// A tracker / ad-server name like `pixel.admetrics.net`.
    pub fn tracker_name<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        let stem = TRACKER_STEMS[rng.gen_range(0..TRACKER_STEMS.len())];
        let prefix = TRACKER_PREFIXES[rng.gen_range(0..TRACKER_PREFIXES.len())];
        self.unique(format!("{prefix}.{stem}.net"))
    }

    /// Number of names minted so far.
    pub fn minted(&self) -> usize {
        self.used.len()
    }
}

/// The second-level domain of a hostname, used by the paper for the Figure 4
/// embedding visualization (`mail.google.com` → `google.com`).
///
/// A small list of multi-label public suffixes (`com.ve`, `com.co`, …) is
/// honored so `shop.store.com.ve` maps to `store.com.ve`, not `com.ve`.
pub fn second_level_domain(hostname: &str) -> &str {
    const TWO_LABEL_SUFFIXES: &[&str] = &["com.ve", "com.co", "com.ar", "com.mx", "co.uk"];
    let labels: Vec<&str> = hostname.split('.').collect();
    if labels.len() <= 2 {
        return hostname;
    }
    let last_two = &hostname
        [hostname.len() - labels[labels.len() - 2].len() - labels[labels.len() - 1].len() - 1..];
    let keep = if TWO_LABEL_SUFFIXES.contains(&last_two) {
        3
    } else {
        2
    };
    if labels.len() <= keep {
        return hostname;
    }
    let tail_len: usize = labels[labels.len() - keep..]
        .iter()
        .map(|l| l.len())
        .sum::<usize>()
        + keep
        - 1;
    &hostname[hostname.len() - tail_len..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn names_are_unique_across_kinds() {
        let mut g = NameGenerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut all = HashSet::new();
        for _ in 0..500 {
            assert!(all.insert(g.site_name(&mut rng, "Travel")));
            assert!(all.insert(g.cdn_name(&mut rng)));
            assert!(all.insert(g.api_name(&mut rng)));
            assert!(all.insert(g.tracker_name(&mut rng)));
        }
        assert_eq!(g.minted(), 2000);
    }

    #[test]
    fn reserve_handles_collisions() {
        let mut g = NameGenerator::new();
        assert_eq!(g.reserve("searchzilla.com"), "searchzilla.com");
        assert_eq!(g.reserve("searchzilla.com"), "searchzilla2.com");
        assert_eq!(g.reserve("SEARCHZILLA.com"), "searchzilla3.com");
        // Dotless names (e.g. "localhost") must not panic on collision.
        assert_eq!(g.reserve("localhost"), "localhost");
        assert_eq!(g.reserve("localhost"), "localhost2");
    }

    #[test]
    fn generation_is_deterministic_given_a_seed() {
        let run = || {
            let mut g = NameGenerator::new();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..50)
                .map(|_| g.site_name(&mut rng, "Games"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn api_names_have_the_paper_shape() {
        let mut g = NameGenerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let name = g.api_name(&mut rng);
        assert!(name.starts_with("api."));
        assert_eq!(
            name.split('.').count(),
            4,
            "api.<token>.<platform>.com: {name}"
        );
    }

    #[test]
    fn second_level_domain_extraction() {
        assert_eq!(second_level_domain("mail.google.com"), "google.com");
        assert_eq!(
            second_level_domain("ds-aksb-a.akamaihd.net"),
            "akamaihd.net"
        );
        assert_eq!(second_level_domain("google.com"), "google.com");
        assert_eq!(second_level_domain("a.b.store.com.ve"), "store.com.ve");
        assert_eq!(second_level_domain("localhost"), "localhost");
    }

    #[test]
    fn core_names_are_distinct() {
        let set: HashSet<_> = CORE_SITE_NAMES.iter().collect();
        assert_eq!(set.len(), CORE_SITE_NAMES.len());
        assert!(CORE_SITE_NAMES.len() >= 30);
    }
}
