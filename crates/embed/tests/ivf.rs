//! ANN conformance suite for the IVF-flat index.
//!
//! Two layers of guarantee, matching what the production profiler relies
//! on:
//!
//! 1. **Exhaustive probing is the exact scan.** With `nprobe == nlists`
//!    the index scores the identical candidate set with the identical
//!    kernel, and the packed-key selection is scan-order-independent, so
//!    results must match [`ExactScan`] bit for bit — across dimensions,
//!    `k`, list counts, seeds, and degenerate inputs (zero rows, `k`
//!    larger than the vocabulary). Property-tested, not example-tested.
//!
//! 2. **Partial probing has a pinned recall floor.** On a seeded
//!    50k-row clustered vocabulary, recall@100 at modest `nprobe` must
//!    not regress below a conservative floor. The floor is deliberately
//!    slack (the measured value has margin) so it only trips on real
//!    regressions — a broken coarse quantizer, mis-ranked probes, lost
//!    lists — never on noise, since the whole pipeline is deterministic.

use hostprof_embed::{EmbeddingSet, ExactScan, IvfFlat, IvfParams, KnnScratch, Vocab};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f32(state: &mut u64) -> f32 {
    (splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
}

/// Seeded clustered matrix with a sprinkling of zero rows (every 17th),
/// mirroring hostnames that never earned gradient updates.
fn clustered_set(rows: usize, dim: usize, clusters: usize, seed: u64) -> EmbeddingSet {
    let mut rng = seed;
    let mut centers = Vec::with_capacity(clusters * dim);
    for _ in 0..clusters * dim {
        centers.push(unit_f32(&mut rng));
    }
    let mut vectors = Vec::with_capacity(rows * dim);
    for r in 0..rows {
        if r % 17 == 3 {
            vectors.extend(std::iter::repeat_n(0.0, dim));
            continue;
        }
        let c = (splitmix64(&mut rng) as usize) % clusters.max(1);
        for d in 0..dim {
            vectors.push(centers[c * dim + d] + unit_f32(&mut rng) * 0.4);
        }
    }
    let names: Vec<String> = (0..rows).map(|i| format!("h{i}.example")).collect();
    let vocab = Vocab::build([names.iter().map(String::as_str)], 1, 0.0);
    EmbeddingSet::new(dim, vocab, vectors)
}

fn query(set: &EmbeddingSet, rng: &mut u64) -> Vec<f32> {
    (0..set.dim()).map(|_| unit_f32(rng)).collect()
}

proptest! {
    /// Guarantee 1: exhaustive probing ≡ exact scan, bit for bit. Each
    /// case checks three `k` regimes: 0 (empty result), the sampled `k`,
    /// and `rows + k` (more neighbors requested than the vocabulary has).
    #[test]
    fn exhaustive_probe_matches_exact_scan_bit_for_bit(
        rows in 1usize..400,
        dim in 1usize..24,
        nlists in 1usize..24,
        k in 1usize..40,
        seed in any::<u64>(),
    ) {
        let set = clustered_set(rows, dim, (rows / 16).max(1), seed);
        let ivf = IvfFlat::build(&set, IvfParams { nlists, nprobe: usize::MAX, seed });
        prop_assert_eq!(ivf.nprobe(), ivf.nlists(), "nprobe must clamp to nlists");

        let mut rng = seed ^ 0xabcd_ef01;
        for k in [0, k, rows + k] {
            let q = query(&set, &mut rng);
            let mut s_exact = KnnScratch::new();
            let mut s_ivf = KnnScratch::new();
            let exact = set.nearest_to_vector_with_index(&q, k, &ExactScan, &mut s_exact);
            let approx = set.nearest_to_vector_with_index(&q, k, &ivf, &mut s_ivf);
            prop_assert_eq!(exact.len(), approx.len());
            for (e, a) in exact.iter().zip(&approx) {
                prop_assert_eq!(e.0, a.0, "index order must match");
                prop_assert_eq!(e.1.to_bits(), a.1.to_bits(), "similarity bits must match");
            }
        }
    }

    /// Partial probing returns a subset of the vocabulary with sims that
    /// bit-match the exact scan's score for the same row (the index may
    /// miss neighbors, but must never mis-score one).
    #[test]
    fn partial_probe_scores_are_exact_for_returned_rows(
        rows in 32usize..300,
        dim in 2usize..16,
        nprobe in 1usize..6,
        seed in any::<u64>(),
    ) {
        let set = clustered_set(rows, dim, 8, seed);
        let ivf = IvfFlat::build(&set, IvfParams { nlists: 12, nprobe, seed });
        let mut rng = seed ^ 0x1234_5678;
        let q = query(&set, &mut rng);
        let mut scratch = KnnScratch::new();
        let k = 20;
        let approx = set.nearest_to_vector_with_index(&q, k, &ivf, &mut scratch);
        let exact = set.nearest_to_vector_with_index(&q, rows, &ExactScan, &mut scratch);
        for (row, sim) in &approx {
            let reference = exact
                .iter()
                .find(|(r, _)| r == row)
                .expect("returned row exists in the full ranking");
            prop_assert_eq!(sim.to_bits(), reference.1.to_bits());
        }
        // Best first, ties toward the lower index — same order contract
        // as the exact scan.
        for w in approx.windows(2) {
            let better = w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0);
            prop_assert!(better || w[0].1.total_cmp(&w[1].1).is_gt());
        }
    }
}

/// Guarantee 2: pinned recall floor on a seeded 50k-row vocabulary.
///
/// Measured on this exact seed/geometry: recall@100 ≈ 0.93 at nprobe=8
/// and ≈ 0.98 at nprobe=16 (of 64 lists). The floors below leave margin;
/// the pipeline is fully deterministic, so a trip means a real change in
/// index behaviour, not noise.
#[test]
fn recall_floor_on_seeded_50k_vocabulary() {
    const ROWS: usize = 50_000;
    const DIM: usize = 16;
    const K: usize = 100;
    let set = clustered_set(ROWS, DIM, 192, 0x5eed_f00d);
    let ivf = IvfFlat::build(
        &set,
        IvfParams {
            nlists: 64,
            nprobe: 1,
            seed: 0x5eed_f00d,
        },
    );

    let mut rng = 0xfeed_beefu64;
    let queries: Vec<Vec<f32>> = (0..32).map(|_| query(&set, &mut rng)).collect();
    let mut scratch = KnnScratch::new();
    let truth: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            let mut ids: Vec<u32> = set
                .nearest_to_vector_with_index(q, K, &ExactScan, &mut scratch)
                .iter()
                .map(|&(id, _)| id)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let mut recall_at = |nprobe: usize| -> f64 {
        let probed = ivf.with_nprobe(nprobe);
        let mut total = 0.0;
        for (q, t) in queries.iter().zip(&truth) {
            let got = set.nearest_to_vector_with_index(q, K, &probed, &mut scratch);
            let hits = got
                .iter()
                .filter(|(id, _)| t.binary_search(id).is_ok())
                .count();
            total += hits as f64 / K as f64;
        }
        total / queries.len() as f64
    };

    let r8 = recall_at(8);
    let r16 = recall_at(16);
    let r64 = recall_at(64);
    eprintln!("recall@100: nprobe=8 {r8:.4}, nprobe=16 {r16:.4}, nprobe=64 {r64:.4}");
    assert!(r8 >= 0.80, "recall@100 regressed at nprobe=8: {r8}");
    assert!(r16 >= 0.90, "recall@100 regressed at nprobe=16: {r16}");
    assert!(
        (r64 - 1.0).abs() < 1e-12,
        "exhaustive probing must be perfect: {r64}"
    );
    assert!(
        r8 <= r16 && r16 <= r64,
        "recall must be monotone in nprobe: {r8} {r16} {r64}"
    );
}
