//! E1 — Figure 2: user diversity in hostnames.
//!
//! Reproduces the paper's core/CCDF analysis: "Core XX" is the set of
//! hostnames visited by at least XX % of users; the CCDF shows how many
//! hostnames users visit outside each core. Paper reference points:
//! cores 80/60/40/20 have sizes 30/120/271/639; 75 % of users visit ≥ 217
//! hostnames and 25 % visit ≥ 1015.

use hostprof::scenario::Scenario;
use hostprof_bench::{header, row, write_results, Scale};
use hostprof_core::{core_items, counts_outside_core};
use hostprof_stats::Ccdf;
use serde::Serialize;

#[derive(Serialize)]
struct CoreReport {
    fraction: f64,
    core_size: usize,
    ccdf_points: Vec<(f64, f64)>,
    p75_at_least: f64,
    p25_at_least: f64,
}

#[derive(Serialize)]
struct Fig2Results {
    scale: String,
    active_users: usize,
    unique_hostnames: usize,
    all_domains: CoreReport,
    cores: Vec<CoreReport>,
}

fn report(counts: Vec<usize>, fraction: f64, core_size: usize) -> CoreReport {
    let ccdf = Ccdf::from_counts(counts);
    CoreReport {
        fraction,
        core_size,
        p75_at_least: ccdf.value_at_fraction(0.75).unwrap_or(0.0),
        p25_at_least: ccdf.value_at_fraction(0.25).unwrap_or(0.0),
        ccdf_points: downsample(ccdf.points()),
    }
}

/// Keep the JSON small: at most ~80 curve points.
fn downsample(points: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    let stride = (points.len() / 80).max(1);
    points.into_iter().step_by(stride).collect()
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let stats = s.trace.stats();

    // Per-user distinct-host sets, restricted to active users (the paper's
    // population is people who actually browsed).
    let sets: Vec<_> = s
        .trace
        .user_host_sets()
        .into_iter()
        .filter(|set| !set.is_empty())
        .collect();

    header(&format!(
        "Figure 2 — user diversity, hostnames (scale: {})",
        scale.label()
    ));
    row("active users", sets.len());
    row("unique hostnames", stats.unique_hosts);

    let all_counts: Vec<usize> = sets.iter().map(|s| s.len()).collect();
    let all = report(all_counts, 0.0, 0);
    row(
        "75% of users visit at least (all domains)",
        all.p75_at_least,
    );
    row(
        "25% of users visit at least (all domains)",
        all.p25_at_least,
    );

    let mut cores = Vec::new();
    println!(
        "\n  {:<10} {:>10} {:>16} {:>16}",
        "core", "size", "75% ≥", "25% ≥"
    );
    for fraction in [0.8, 0.6, 0.4, 0.2] {
        let core = core_items(&sets, fraction);
        let counts = counts_outside_core(&sets, &core);
        let r = report(counts, fraction, core.len());
        println!(
            "  Core {:<5} {:>10} {:>16} {:>16}",
            (fraction * 100.0) as u32,
            r.core_size,
            r.p75_at_least,
            r.p25_at_least
        );
        cores.push(r);
    }

    // Draw the figure itself: CCDF of hostnames per user (all domains),
    // log-x like the paper's Figure 2.
    println!("\n  CCDF — % of users visiting ≥ N hostnames (log N):\n");
    let curve: Vec<(f64, f64)> = {
        let ccdf = Ccdf::from_counts(sets.iter().map(|s| s.len()));
        ccdf.points()
            .into_iter()
            .map(|(v, f)| (v.max(1.0), f * 100.0))
            .collect()
    };
    print!(
        "{}",
        hostprof_bench::chart::line_chart(&curve, 56, 12, true)
    );

    println!(
        "\n  paper: cores 80/60/40/20 sized 30/120/271/639; 75% of users ≥217 hostnames, 25% ≥1015"
    );
    println!("  shape check: core sizes grow as the threshold drops; heavy-tailed CCDF");

    write_results(
        "fig2_user_diversity",
        &Fig2Results {
            scale: scale.label().to_string(),
            active_users: sets.len(),
            unique_hostnames: stats.unique_hosts,
            all_domains: all,
            cores,
        },
    );
}
