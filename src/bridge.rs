//! Trace → wire → observer bridge.
//!
//! The synthetic trace knows the ground truth `(user, host)` of every
//! request; a real eavesdropper only gets packets. This module lowers a
//! trace onto the wire with [`hostprof_net::TrafficSynthesizer`] and runs
//! the passive [`hostprof_net::SniObserver`] over it, producing the
//! per-client hostname sequences the profiler consumes — so experiments can
//! run off *observed* data and we can quantify the observer's fidelity
//! (and how ECH or NAT degrade it, §7.2/§7.4 of the paper).

use hostprof_defense::DefensePlan;
use hostprof_net::{chaos, Addressing, ChaosConfig, RequestEvent, SniObserver, TrafficSynthesizer};
use hostprof_synth::{Trace, UserId, World};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the traffic is put on the wire for observation.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct ObserverScenario {
    /// Packet synthesis parameters (protocol mix, ECH, DNS, addressing).
    pub synthesizer: TrafficSynthesizer,
    /// Whether the observer also harvests plaintext DNS queries.
    pub harvest_dns: bool,
    /// Optional seeded fault injection applied to the wire traffic before
    /// the observer sees it — models a lossy/hostile tap instead of the
    /// synthesizer's pristine output.
    pub chaos: Option<ChaosConfig>,
}

impl ObserverScenario {
    /// A vantage point where every client has their own IP (WiFi / mobile
    /// provider, §7.2).
    pub fn per_user() -> Self {
        Self::default()
    }

    /// A landline-ISP vantage point with `n` users behind each NAT.
    pub fn behind_nat(n: u32) -> Self {
        Self {
            synthesizer: TrafficSynthesizer {
                addressing: Addressing::Nat {
                    base_ip: 0x0a00_0000,
                    clients_per_ip: n,
                },
                ..TrafficSynthesizer::default()
            },
            ..Self::default()
        }
    }

    /// A future where `fraction` of TLS connections use ECH (§7.4).
    pub fn with_ech(fraction: f64) -> Self {
        Self {
            synthesizer: TrafficSynthesizer {
                ech_fraction: fraction,
                quic_fraction: 0.0,
                ..TrafficSynthesizer::default()
            },
            ..Self::default()
        }
    }

    /// The same vantage point behind a faulty tap: seeded chaos mutates the
    /// packet stream before observation.
    pub fn with_chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }
}

/// What the eavesdropper reconstructed from the wire.
#[derive(Debug, Clone)]
pub struct ObservedTrace {
    /// Per-client-IP hostname sequences, time-sorted. Ordered by client
    /// address so any iteration (e.g. building a training corpus) is
    /// deterministic.
    pub sequences: BTreeMap<u32, Vec<(u64, String)>>,
    /// Observer counters.
    pub observer_stats: hostprof_net::ObserverStats,
    /// Flow-table counters.
    pub flow_stats: hostprof_net::FlowStats,
    /// Mutation counters when the scenario injected chaos, `None` on a
    /// clean tap.
    pub chaos_stats: Option<hostprof_net::ChaosStats>,
    /// Ground-truth request count, for fidelity computation.
    pub ground_truth_requests: usize,
}

impl ObservedTrace {
    /// Replay a trace through packet synthesis and the observer.
    /// On a clean tap packets are synthesized and consumed
    /// request-by-request, so memory stays flat regardless of trace size;
    /// chaos injection needs the whole stream at once (mutations are
    /// per-flow), so that path buffers it.
    pub fn capture(world: &World, trace: &Trace, scenario: &ObserverScenario) -> Self {
        let mut observer = if scenario.harvest_dns {
            SniObserver::new().with_dns_harvesting()
        } else {
            SniObserver::new()
        };
        let mut chaos_stats = None;
        let events = trace.requests().iter().map(|r| RequestEvent {
            t_ms: r.t_ms,
            client: r.user.0,
            hostname: world.hostname(r.host).to_string(),
        });
        match scenario.chaos {
            None => {
                for ev in events {
                    for pkt in scenario.synthesizer.packets_for(&ev) {
                        observer.process(&pkt);
                    }
                }
            }
            Some(cfg) => {
                let packets: Vec<_> = events
                    .flat_map(|ev| scenario.synthesizer.packets_for(&ev))
                    .collect();
                let mutated = chaos::apply(&cfg, &packets);
                observer.process_stream(&mutated.packets);
                chaos_stats = Some(mutated.stats);
            }
        }
        let sequences: BTreeMap<u32, Vec<(u64, String)>> =
            observer.per_client_sequences().into_iter().collect();
        Self {
            sequences,
            observer_stats: observer.stats(),
            flow_stats: observer.flow_stats(),
            chaos_stats,
            ground_truth_requests: trace.requests().len(),
        }
    }

    /// Like [`ObservedTrace::capture`], but with a [`DefensePlan`]
    /// applied between the trace and the wire (DESIGN.md §15): the event
    /// stream is transformed (decoys, padding), each event is lowered
    /// with its per-event wire override (forced ECH, DoH migration), and
    /// NAT mixing swaps the addressing. At a defense's identity point the
    /// packet stream — and therefore the whole capture — is bit-equal to
    /// the undefended [`ObservedTrace::capture`].
    pub fn capture_defended(
        world: &World,
        trace: &Trace,
        scenario: &ObserverScenario,
        plan: &DefensePlan,
    ) -> Self {
        let mut observer = if scenario.harvest_dns {
            SniObserver::new().with_dns_harvesting()
        } else {
            SniObserver::new()
        };
        let mut chaos_stats = None;
        let base_events: Vec<RequestEvent> = trace
            .requests()
            .iter()
            .map(|r| RequestEvent {
                t_ms: r.t_ms,
                client: r.user.0,
                hostname: world.hostname(r.host).to_string(),
            })
            .collect();
        let defended = plan.transform(&base_events);
        let synth = plan.synthesizer(&scenario.synthesizer);
        let lower = |ev: &RequestEvent| {
            synth.packets_for_host_with(
                ev.t_ms,
                ev.client,
                &ev.hostname,
                plan.wire_override(ev.client, &ev.hostname),
            )
        };
        match scenario.chaos {
            None => {
                for ev in &defended {
                    for pkt in lower(ev) {
                        observer.process(&pkt);
                    }
                }
            }
            Some(cfg) => {
                let packets: Vec<_> = defended.iter().flat_map(lower).collect();
                let mutated = chaos::apply(&cfg, &packets);
                observer.process_stream(&mutated.packets);
                chaos_stats = Some(mutated.stats);
            }
        }
        let sequences: BTreeMap<u32, Vec<(u64, String)>> =
            observer.per_client_sequences().into_iter().collect();
        Self {
            sequences,
            observer_stats: observer.stats(),
            flow_stats: observer.flow_stats(),
            chaos_stats,
            ground_truth_requests: trace.requests().len(),
        }
    }

    /// Map a ground-truth user to their wire address under a defense
    /// plan (NAT mixing changes the mapping; everything else keeps the
    /// scenario's own addressing).
    pub fn address_of_defended(
        scenario: &ObserverScenario,
        plan: &DefensePlan,
        user: UserId,
    ) -> u32 {
        plan.synthesizer(&scenario.synthesizer)
            .addressing
            .client_ip(user.0)
    }

    /// Fraction of ground-truth requests whose hostname the observer
    /// recovered (1.0 without ECH; DNS harvesting can push it above 1).
    pub fn fidelity(&self) -> f64 {
        if self.ground_truth_requests == 0 {
            return 0.0;
        }
        let recovered: usize = self.sequences.values().map(Vec::len).sum();
        recovered as f64 / self.ground_truth_requests as f64
    }

    /// Like [`ObservedTrace::fidelity`], but only counts observations whose
    /// hostname actually exists in the world — a DoH deployment floods the
    /// observer with the *resolver's* hostname, which recovers nothing
    /// about the user.
    pub fn useful_fidelity(&self, world: &World) -> f64 {
        if self.ground_truth_requests == 0 {
            return 0.0;
        }
        let useful: usize = self
            .sequences
            .values()
            .map(|seq| {
                seq.iter()
                    .filter(|(_, h)| world.host_id_by_name(h).is_some())
                    .count()
            })
            .sum();
        useful as f64 / self.ground_truth_requests as f64
    }

    /// The hostname sequence of one client IP, hostnames only.
    pub fn client_hostnames(&self, client_ip: u32) -> Vec<&str> {
        self.sequences
            .get(&client_ip)
            .map(|seq| seq.iter().map(|(_, h)| h.as_str()).collect())
            .unwrap_or_default()
    }

    /// Map a ground-truth user to their wire address under the scenario's
    /// addressing scheme.
    pub fn address_of(scenario: &ObserverScenario, user: UserId) -> u32 {
        scenario.synthesizer.addressing.client_ip(user.0)
    }

    /// Training corpus from observed data: one hostname sequence per
    /// client IP (what a real eavesdropper would feed the SKIPGRAM model).
    pub fn observed_sequences(&self) -> Vec<Vec<String>> {
        self.sequences
            .values()
            .map(|seq| seq.iter().map(|(_, h)| h.clone()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};

    fn small_scenario() -> Scenario {
        let mut cfg = ScenarioConfig::tiny();
        cfg.trace.days = 1;
        cfg.population.num_users = 8;
        Scenario::generate(&cfg)
    }

    #[test]
    fn clean_capture_recovers_every_request() {
        let s = small_scenario();
        let obs = ObservedTrace::capture(&s.world, &s.trace, &ObserverScenario::per_user());
        assert!(
            (obs.fidelity() - 1.0).abs() < 1e-9,
            "fidelity {}",
            obs.fidelity()
        );
        assert_eq!(obs.observer_stats.parse_errors, 0);
        // Per-user sequences match ground truth exactly.
        let scenario = ObserverScenario::per_user();
        for u in 0..8u32 {
            let ip = ObservedTrace::address_of(&scenario, UserId(u));
            let got = obs.client_hostnames(ip);
            let want: Vec<&str> = s
                .trace
                .user_requests(UserId(u))
                .map(|r| s.world.hostname(r.host))
                .collect();
            assert_eq!(got, want, "user {u}");
        }
    }

    #[test]
    fn ech_blinds_the_observer() {
        let s = small_scenario();
        let obs = ObservedTrace::capture(&s.world, &s.trace, &ObserverScenario::with_ech(1.0));
        assert_eq!(obs.fidelity(), 0.0);
        assert_eq!(obs.observer_stats.hidden as usize, s.trace.requests().len());
    }

    #[test]
    fn chaotic_tap_degrades_gracefully_and_deterministically() {
        let s = small_scenario();
        let scenario = ObserverScenario::per_user().with_chaos(ChaosConfig::with_seed(11));
        let a = ObservedTrace::capture(&s.world, &s.trace, &scenario);
        let b = ObservedTrace::capture(&s.world, &s.trace, &scenario);
        // Same seed ⇒ the whole observed trace replays identically.
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.observer_stats, b.observer_stats);
        assert_eq!(a.chaos_stats, b.chaos_stats);
        // Chaos may lose observations but never invents ground truth it
        // should not have, and every parse error lands in a taxonomy
        // bucket.
        let stats = a.observer_stats;
        assert!(a.fidelity() <= 1.0 + 1e-9);
        assert_eq!(stats.parse_errors, stats.taxonomy_total());
        assert_eq!(stats.reassembly_invariant, 0);
        let cs = a.chaos_stats.expect("chaos ran");
        assert!(cs.mutated_flows + cs.clean_flows == cs.flows_in);
        // A quiescent chaos config is a no-op on fidelity.
        let calm = ObserverScenario::per_user().with_chaos(ChaosConfig::quiescent(0));
        let c = ObservedTrace::capture(&s.world, &s.trace, &calm);
        let clean = ObservedTrace::capture(&s.world, &s.trace, &ObserverScenario::per_user());
        assert!((c.fidelity() - clean.fidelity()).abs() < 1e-9);
    }

    #[test]
    fn defended_capture_at_identity_points_is_bit_equal_to_plain_capture() {
        use hostprof_defense::{Defense, DefensePlan, HostCatalog};
        let s = small_scenario();
        let catalog = HostCatalog::from_hosts(
            s.world
                .hosts()
                .iter()
                .map(|h| (h.id.0, h.name.clone(), h.popularity)),
        );
        let scenario = ObserverScenario::per_user();
        let plain = ObservedTrace::capture(&s.world, &s.trace, &scenario);
        for d in [
            Defense::Ech { adoption: 0.0 },
            Defense::Dummy { rate: 0.0 },
            Defense::PadConstant { pad_per_event: 0 },
            Defense::PadAdaptive { intensity: 0.0 },
            Defense::Doh { adoption: 0.0 },
            Defense::Nat { users_per_ip: 1 },
        ] {
            let plan = DefensePlan::new(d, catalog.clone(), 42);
            let got = ObservedTrace::capture_defended(&s.world, &s.trace, &scenario, &plan);
            assert_eq!(got.sequences, plain.sequences, "{d:?}");
            assert_eq!(got.observer_stats, plain.observer_stats, "{d:?}");
        }
    }

    #[test]
    fn defended_ech_sweep_hides_popular_sites_first() {
        use hostprof_defense::{Defense, DefensePlan, HostCatalog};
        let s = small_scenario();
        let catalog = HostCatalog::from_hosts(
            s.world
                .hosts()
                .iter()
                .map(|h| (h.id.0, h.name.clone(), h.popularity)),
        );
        let scenario = ObserverScenario::per_user();
        let mut prev = f64::INFINITY;
        for step in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let plan = DefensePlan::new(Defense::Ech { adoption: step }, catalog.clone(), 42);
            let got = ObservedTrace::capture_defended(&s.world, &s.trace, &scenario, &plan);
            let f = got.useful_fidelity(&s.world);
            assert!(f <= prev + 1e-12, "fidelity rose at adoption {step}");
            prev = f;
        }
        assert_eq!(prev, 0.0, "full adoption blinds the observer");
    }

    #[test]
    fn nat_collapses_users_into_shared_sequences() {
        let s = small_scenario();
        let scenario = ObserverScenario::behind_nat(4);
        let obs = ObservedTrace::capture(&s.world, &s.trace, &scenario);
        // 8 users at 4 per IP → 2 client addresses.
        assert_eq!(obs.sequences.len(), 2);
        assert!(
            (obs.fidelity() - 1.0).abs() < 1e-9,
            "NAT loses nothing, it only mixes"
        );
    }
}
