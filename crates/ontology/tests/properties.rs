//! Property tests for the ontology's data structures.

use hostprof_ontology::{Blocklist, BlocklistProvider, CategoryId, CategoryVector, Ontology};
use proptest::prelude::*;

fn pairs() -> impl Strategy<Value = Vec<(CategoryId, f32)>> {
    proptest::collection::vec((0u16..328, -0.5f32..1.5), 0..16)
        .prop_map(|v| v.into_iter().map(|(c, w)| (CategoryId(c), w)).collect())
}

proptest! {
    #[test]
    fn from_pairs_is_idempotent(p in pairs()) {
        let v = CategoryVector::from_pairs(p);
        let again = CategoryVector::from_pairs(v.iter().collect());
        prop_assert_eq!(v, again);
    }

    #[test]
    fn cosine_is_bounded_and_self_cosine_is_one(p in pairs()) {
        let v = CategoryVector::from_pairs(p);
        if !v.is_empty() {
            prop_assert!((v.cosine(&v) - 1.0).abs() < 1e-5);
        }
        let w = CategoryVector::singleton(CategoryId(0));
        let c = v.cosine(&w);
        prop_assert!((-1.0..=1.0001).contains(&c));
    }

    #[test]
    fn euclidean_satisfies_identity_and_symmetry(a in pairs(), b in pairs()) {
        let va = CategoryVector::from_pairs(a);
        let vb = CategoryVector::from_pairs(b);
        prop_assert!(va.euclidean(&va) < 1e-5);
        prop_assert!((va.euclidean(&vb) - vb.euclidean(&va)).abs() < 1e-5);
        prop_assert!(va.euclidean(&vb) >= 0.0);
    }

    #[test]
    fn subdomains_of_blocked_hosts_are_blocked(
        host in "[a-z]{2,8}\\.[a-z]{2,4}",
        sub in "[a-z]{1,8}",
    ) {
        let b = Blocklist::from_providers(vec![BlocklistProvider::new("p", [host.as_str()])]);
        let one_level = format!("{sub}.{host}");
        let two_level = format!("{sub}.{sub}.{host}");
        prop_assert!(b.is_blocked(&host));
        prop_assert!(b.is_blocked(&one_level));
        prop_assert!(b.is_blocked(&two_level));
    }

    #[test]
    fn ontology_lookup_is_case_insensitive_total(
        host in "[a-zA-Z]{2,10}\\.[a-z]{2,4}",
        cat in 0u16..328,
    ) {
        let mut o = Ontology::new();
        o.insert(&host, CategoryVector::singleton(CategoryId(cat)));
        prop_assert!(o.is_labeled(&host.to_ascii_lowercase()));
        prop_assert!(o.is_labeled(&host.to_ascii_uppercase()));
        let stats = o.coverage([host.as_str()]);
        prop_assert_eq!(stats.labeled, 1);
        prop_assert_eq!(stats.universe, 1);
    }
}
