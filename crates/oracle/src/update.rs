//! Naive online-update reference (DESIGN.md §14).
//!
//! Mirrors the production `SkipGram::update` path step by step, in the
//! plainest possible Rust: linear-scan vocabulary growth, a sequential
//! weight-matrix extension, an explicitly tracked negative-table rebuild
//! policy, and a resumed [`crate::sgd::sgd_pass`] from the live weights.
//! At one production thread with the scalar kernel the two paths must be
//! bit-identical — any divergence in id assignment, init stream, rebuild
//! decision, or SGD op order is a [`Stage::Update`] mismatch.
//!
//! The invariants this module pins (and the proptests replay):
//!
//! * **Id stability** — a token id handed out once never moves; growth
//!   only appends, ordered (count desc, token asc) within the batch.
//! * **Replayable init** — appended input rows draw from a stream keyed
//!   by `(seed, old vocabulary length)`, so re-running the same update
//!   reproduces the same bits while successive growths never share a
//!   stream.
//! * **Lazy table rebuild** — the unigram^0.75 table is rebuilt only when
//!   the vocabulary length changed or the kept-token mass grew by more
//!   than 25%; in between, SGD keeps sampling from the stale table, and
//!   both implementations must go stale *together*.

use crate::sgd::{
    keep_probability, sgd_pass, train, unigram_table, unit_f64, xorshift64star, OracleModel,
    OracleVocab, SgdConfig,
};
use crate::{DiffReport, Mismatch, Stage};

/// Grow `vocab` in place from a batch of sequences: occurrences of known
/// tokens bump counts, fresh tokens meeting `min_count` append in
/// (count desc, token asc) order, and every keep-probability is
/// recomputed against the new total. Returns the number of appended
/// tokens. Existing indices are never reassigned.
pub fn grow_vocab(
    vocab: &mut OracleVocab,
    sequences: &[Vec<String>],
    min_count: u64,
    subsample: f64,
) -> usize {
    let mut fresh = std::collections::BTreeMap::<&str, u64>::new();
    for seq in sequences {
        for tok in seq {
            if let Some(i) = vocab.index_of(tok) {
                vocab.counts[i as usize] += 1;
                vocab.total += 1;
            } else {
                *fresh.entry(tok).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<(&str, u64)> = fresh
        .into_iter()
        .filter(|&(_, c)| c >= min_count.max(1))
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let appended = pairs.len();
    for (tok, c) in pairs {
        vocab.tokens.push(tok.to_string());
        vocab.counts.push(c);
        vocab.keep.push(1.0);
        vocab.total += c;
    }
    for i in 0..vocab.tokens.len() {
        vocab.keep[i] = keep_probability(vocab.counts[i], vocab.total, subsample);
    }
    appended
}

/// The negative table plus the vocabulary snapshot it was built against,
/// for the rebuild policy.
#[derive(Debug, Clone)]
struct OracleTable {
    slots: Vec<u32>,
    built_len: usize,
    built_total: u64,
}

impl OracleTable {
    fn build(vocab: &OracleVocab) -> Self {
        Self {
            slots: unigram_table(&vocab.counts),
            built_len: vocab.tokens.len(),
            built_total: vocab.total,
        }
    }

    /// Same policy as the production `NegativeTable::needs_rebuild`:
    /// stale once the vocabulary length changed or the total kept mass
    /// grew past 5/4 of what the table was built from.
    fn needs_rebuild(&self, vocab: &OracleVocab) -> bool {
        vocab.tokens.len() != self.built_len
            || vocab.total.saturating_mul(4) > self.built_total.saturating_mul(5)
    }
}

/// What one oracle update did (mirrors the production `UpdateReport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleUpdateReport {
    pub appended_tokens: usize,
    pub trained_sequences: usize,
    pub table_rebuilt: bool,
}

/// A reference model that accepts online updates: the trained
/// [`OracleModel`] plus the carried-over negative table. Like the
/// production trainer, the table starts unbuilt after initial training,
/// so the first update always rebuilds it.
#[derive(Debug, Clone)]
pub struct OracleOnline {
    pub model: OracleModel,
    pub cfg: SgdConfig,
    table: Option<OracleTable>,
}

impl OracleOnline {
    /// Initial training; `None` mirrors the production error cases.
    pub fn train(sequences: &[Vec<String>], cfg: &SgdConfig) -> Option<Self> {
        Some(Self {
            model: train(sequences, cfg)?,
            cfg: cfg.clone(),
            table: None,
        })
    }

    /// One online update: grow the vocabulary, extend the weight
    /// matrices, rebuild the table if the policy demands it, resume SGD
    /// from the live weights.
    pub fn update(&mut self, sequences: &[Vec<String>]) -> OracleUpdateReport {
        let old_len = self.model.vocab.tokens.len();
        let appended = grow_vocab(
            &mut self.model.vocab,
            sequences,
            self.cfg.min_count,
            self.cfg.subsample,
        );
        if appended > 0 {
            let dim = self.cfg.dim;
            // The extension stream: keyed by (seed, old length) so each
            // growth draws fresh bits but the same growth replays them.
            let mut state =
                (self.cfg.seed ^ (old_len as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
            for _ in 0..appended * dim {
                let u = unit_f64(xorshift64star(&mut state)) as f32;
                self.model.input.push((u - 0.5) / dim as f32);
            }
            self.model.context.resize((old_len + appended) * dim, 0.0);
        }
        let table_rebuilt = self
            .table
            .as_ref()
            .is_none_or(|t| t.needs_rebuild(&self.model.vocab));
        if table_rebuilt {
            self.table = Some(OracleTable::build(&self.model.vocab));
        }
        let encoded: Vec<Vec<u32>> = sequences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|t| self.model.vocab.index_of(t))
                    .collect()
            })
            .filter(|s: &Vec<u32>| s.len() >= 2)
            .collect();
        let report = OracleUpdateReport {
            appended_tokens: appended,
            trained_sequences: encoded.len(),
            table_rebuilt,
        };
        if encoded.is_empty() {
            return report;
        }
        let table = self.table.as_ref().expect("table built above");
        sgd_pass(
            &self.model.vocab,
            self.cfg.dim,
            &mut self.model.input,
            &mut self.model.context,
            &encoded,
            &table.slots,
            &self.cfg,
        );
        report
    }
}

/// Run {initial train → update batches} through the oracle and the
/// production trainer (one thread, scalar kernel) side by side and diff
/// after every stage: vocabulary structure, both weight matrices bit for
/// bit, and the rebuild decision. Every mismatch is attributed to
/// [`Stage::Update`] with the batch index in the item, so a proptest
/// failure names the first diverging update. Returns an empty report when
/// the initial corpus is degenerate for both implementations.
pub fn diff_online(
    initial: &[Vec<String>],
    batches: &[Vec<Vec<String>>],
    cfg: &SgdConfig,
) -> DiffReport {
    use hostprof_embed::{KernelChoice, Sharding, SkipGram, SkipGramConfig};

    let mut report = DiffReport::default();
    let prod_cfg = SkipGramConfig {
        dim: cfg.dim,
        window: cfg.window,
        negatives: cfg.negatives,
        epochs: cfg.epochs as usize,
        learning_rate: cfg.learning_rate,
        min_count: cfg.min_count,
        subsample: cfg.subsample,
        threads: 1,
        seed: cfg.seed,
        kernel: KernelChoice::Scalar,
        sharding: Sharding::Static,
    };
    let oracle = OracleOnline::train(initial, cfg);
    let prod = SkipGram::train(initial, &prod_cfg);
    let (mut oracle, mut prod) = match (oracle, prod) {
        (Some(o), Ok(p)) => (o, p),
        (o, p) => {
            if o.is_some() != p.is_ok() {
                report.check_failed(Mismatch {
                    stage: Stage::Update,
                    item: "initial".into(),
                    max_abs: 0.0,
                    max_ulp: 0,
                    detail: "one implementation rejected the initial corpus".into(),
                });
            } else {
                report.check_ok();
            }
            return report;
        }
    };

    diff_models(&mut report, "initial", &oracle.model, &prod);
    for (b, batch) in batches.iter().enumerate() {
        let item = format!("batch{b}");
        let o = oracle.update(batch);
        let p = prod.update(batch);
        if o.appended_tokens != p.appended_tokens
            || o.trained_sequences != p.trained_sequences
            || o.table_rebuilt != p.table_rebuilt
        {
            report.check_failed(Mismatch {
                stage: Stage::Update,
                item: item.clone(),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!(
                    "report diverged: oracle (+{} tokens, {} seqs, rebuilt={}) vs \
                     production (+{} tokens, {} seqs, rebuilt={})",
                    o.appended_tokens,
                    o.trained_sequences,
                    o.table_rebuilt,
                    p.appended_tokens,
                    p.trained_sequences,
                    p.table_rebuilt
                ),
            });
        } else {
            report.check_ok();
        }
        diff_models(&mut report, &item, &oracle.model, &prod);
    }
    report
}

/// Bit-compare vocabulary order/counts and both weight matrices.
fn diff_models(
    report: &mut DiffReport,
    item: &str,
    oracle: &OracleModel,
    prod: &hostprof_embed::SkipGram,
) {
    if oracle.vocab.tokens.len() != prod.vocab().len() {
        report.check_failed(Mismatch {
            stage: Stage::Update,
            item: format!("{item}/vocab"),
            max_abs: 0.0,
            max_ulp: 0,
            detail: format!(
                "vocabulary size {} vs {}",
                oracle.vocab.tokens.len(),
                prod.vocab().len()
            ),
        });
        return;
    }
    report.check_ok();
    for idx in 0..prod.vocab().len() as u32 {
        let tok = prod.vocab().token(idx);
        if oracle.vocab.tokens[idx as usize] != tok
            || oracle.vocab.counts[idx as usize] != prod.vocab().count(idx)
        {
            report.check_failed(Mismatch {
                stage: Stage::Update,
                item: format!("{item}/vocab[{idx}]"),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!(
                    "id {idx}: oracle {}×{} vs production {}×{}",
                    oracle.vocab.tokens[idx as usize],
                    oracle.vocab.counts[idx as usize],
                    tok,
                    prod.vocab().count(idx)
                ),
            });
            continue;
        }
        report.check_ok();
        for (name, ours, theirs) in [
            ("input", oracle.input_row(idx), prod.vector(idx)),
            ("context", oracle.context_row(idx), prod.context_vector(idx)),
        ] {
            let delta = crate::diff::compare_f32_slices(ours, theirs);
            if delta.identical() {
                report.check_ok();
            } else {
                report.check_failed(Mismatch {
                    stage: Stage::Update,
                    item: format!("{item}/{name}[{tok}]"),
                    max_abs: delta.max_abs,
                    max_ulp: delta.max_ulp,
                    detail: format!("weight row diverged at dim {}", delta.worst_index),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::build_vocab;
    use hostprof_embed::{KernelChoice, Sharding, SkipGram, SkipGramConfig};

    fn cfg(seed: u64) -> SgdConfig {
        SgdConfig {
            dim: 3,
            window: 2,
            negatives: 3,
            epochs: 2,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 0.0,
            seed,
        }
    }

    fn day(offset: u32, hosts: usize) -> Vec<Vec<String>> {
        (0..8u32)
            .map(|i| {
                (0..6)
                    .map(|j| format!("host{}.example", (offset + i + j) % hosts as u32))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn grow_matches_production_ids_counts_and_keep() {
        let base = day(0, 5);
        let batch = day(3, 9); // introduces host5..host8
        let mut oracle = build_vocab(&base, 1, 0.01);
        let mut prod = hostprof_embed::Vocab::build(
            base.iter().map(|s| s.iter().map(|t| t.as_str())),
            1,
            0.01,
        );
        let old: Vec<String> = oracle.tokens.clone();

        let oa = grow_vocab(&mut oracle, &batch, 1, 0.01);
        let pa = prod.grow(batch.iter().map(|s| s.iter().map(|t| t.as_str())), 1, 0.01);
        assert_eq!(oa, pa);
        assert!(oa > 0, "batch should introduce new hostnames");
        assert_eq!(oracle.tokens.len(), prod.len());
        assert_eq!(oracle.total, prod.total_count());
        for i in 0..prod.len() as u32 {
            assert_eq!(oracle.tokens[i as usize], prod.token(i));
            assert_eq!(oracle.counts[i as usize], prod.count(i));
            assert_eq!(oracle.keep[i as usize], prod.keep_prob(i));
        }
        // Id stability: every pre-growth token kept its index.
        for (i, tok) in old.iter().enumerate() {
            assert_eq!(&oracle.tokens[i], tok, "id {i} moved during growth");
        }
    }

    #[test]
    fn oracle_update_is_bit_identical_to_single_thread_production() {
        let cfg = cfg(0x5eed_071e);
        let mut oracle = OracleOnline::train(&day(0, 5), &cfg).expect("oracle train");
        let prod_cfg = SkipGramConfig {
            dim: cfg.dim,
            window: cfg.window,
            negatives: cfg.negatives,
            epochs: cfg.epochs as usize,
            learning_rate: cfg.learning_rate,
            min_count: cfg.min_count,
            subsample: cfg.subsample,
            threads: 1,
            seed: cfg.seed,
            kernel: KernelChoice::Scalar,
            sharding: Sharding::Static,
        };
        let mut prod = SkipGram::train(&day(0, 5), &prod_cfg).expect("production train");

        for (b, batch) in [day(2, 7), day(5, 11), day(1, 11)].iter().enumerate() {
            let o = oracle.update(batch);
            let p = prod.update(batch);
            assert_eq!(o.appended_tokens, p.appended_tokens, "batch {b}");
            assert_eq!(o.trained_sequences, p.trained_sequences, "batch {b}");
            assert_eq!(o.table_rebuilt, p.table_rebuilt, "batch {b}");
            for idx in 0..prod.vocab().len() as u32 {
                assert_eq!(
                    oracle.model.input_row(idx),
                    prod.vector(idx),
                    "batch {b}: input row {idx} diverged"
                );
                assert_eq!(
                    oracle.model.context_row(idx),
                    prod.context_vector(idx),
                    "batch {b}: context row {idx} diverged"
                );
            }
        }
    }

    #[test]
    fn rebuild_policy_goes_stale_together() {
        let cfg = cfg(99);
        let mut oracle = OracleOnline::train(&day(0, 6), &cfg).expect("oracle train");
        // First update: table was never built online, so it must rebuild
        // regardless of growth.
        let same_vocab = day(0, 6);
        let r1 = oracle.update(&same_vocab);
        assert!(r1.table_rebuilt, "first online update must build a table");
        assert_eq!(r1.appended_tokens, 0);
        // Tiny same-vocabulary batch: < 25% mass growth, no new ids → the
        // stale table is kept.
        let tiny: Vec<Vec<String>> = vec![day(0, 6)[0].clone()];
        let r2 = oracle.update(&tiny);
        assert!(!r2.table_rebuilt, "policy must keep the table");
        // Growth forces a rebuild.
        let r3 = oracle.update(&day(4, 9));
        assert!(r3.appended_tokens > 0);
        assert!(r3.table_rebuilt, "new ids must rebuild the table");
    }

    #[test]
    fn diff_online_is_clean_and_detects_planted_divergence() {
        let cfg = cfg(7);
        let batches = [day(2, 8), day(6, 10)];
        let report = diff_online(&day(0, 5), &batches, &cfg);
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.items_checked > 0);

        // Plant a seed mismatch: the diverging weights must be caught and
        // attributed to the update stage.
        let mut other = cfg.clone();
        other.seed ^= 1 << 20;
        let oracle = OracleOnline::train(&day(0, 5), &other).expect("train");
        let prod_cfg = SkipGramConfig {
            threads: 1,
            seed: cfg.seed,
            kernel: KernelChoice::Scalar,
            sharding: Sharding::Static,
            dim: cfg.dim,
            window: cfg.window,
            negatives: cfg.negatives,
            epochs: cfg.epochs as usize,
            learning_rate: cfg.learning_rate,
            min_count: cfg.min_count,
            subsample: cfg.subsample,
        };
        let prod = SkipGram::train(&day(0, 5), &prod_cfg).expect("train");
        let mut report = DiffReport::default();
        diff_models(&mut report, "planted", &oracle.model, &prod);
        assert!(!report.is_clean());
        assert!(report.mismatches_in(Stage::Update) > 0);
    }
}
