//! Naive defense-transform reference (DESIGN.md §15).
//!
//! An independently written twin of `hostprof-defense`'s
//! [`DefensePlan`]: every decoy count, cover hostname, padding offset
//! and wire decision is recomputed here from the written spec — plain
//! loops, an insertion sort instead of `sort_by_key`, a linear-scan
//! catalog instead of a hash map. The two paths must agree *exactly*
//! (the transform is integer/string-valued, so there is no float
//! tolerance to hide behind); any disagreement is a [`Stage::Defense`]
//! mismatch naming the first diverging event.
//!
//! The invariants this module pins (and the proptests replay):
//!
//! * **Spec-recomputable randomness** — each injected event depends only
//!   on `(seed, t_ms, client, hostname)` through splitmix64 over FNV-1a,
//!   never on iteration state, so the oracle can derive it per event.
//! * **Identity points are no-ops** — at `ech@0`, `dummy@0`, `pad@0`,
//!   `adaptive@0`, `doh@0` and `nat@1` the oracle transform returns its
//!   input unchanged and every wire decision is the default.
//! * **Order preservation** — real events survive any defense as a
//!   subsequence, in trace order, because injected offsets are strictly
//!   forward in time and the sort is stable.

use crate::{DiffReport, Mismatch, Stage};
use hostprof_defense::{
    Defense, DefensePlan, ADAPTIVE_NEIGHBORHOOD, DOH_RESOLVER, PAD_COVER_PREFIX,
};
use hostprof_net::synthesize::RequestEvent;

/// splitmix64, transcribed from the spec in DESIGN.md §9/§15.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a 64, byte by byte.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Top 53 bits mapped to `[0, 1)`.
pub fn to_unit(x: u64) -> f64 {
    (x >> 11) as f64 / 9_007_199_254_740_992.0 // 2^53
}

/// The naive catalog: `(host_id, name, popularity)` rows ordered by
/// popularity descending with host-id ascending on ties, via an explicit
/// comparison-counting selection rather than a library sort.
pub struct OracleCatalog {
    /// Hostnames in rank order (0 = most popular).
    pub names: Vec<String>,
}

impl OracleCatalog {
    /// Rank rows the slow way: each row's rank is the number of rows
    /// strictly ahead of it (more popular, or equally popular with a
    /// smaller host id).
    pub fn from_rows(rows: &[(u32, String, f64)]) -> Self {
        let mut names = vec![String::new(); rows.len()];
        for (id, name, pop) in rows {
            let ahead = rows
                .iter()
                .filter(|(oid, _, opop)| {
                    opop > pop || (opop == pop && oid < id) || (pop.is_nan() && !opop.is_nan())
                })
                .count();
            names[ahead] = name.clone();
        }
        Self { names }
    }

    /// Linear-scan rank lookup.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// Per-event hash, recomputed from the event fields and plan seed.
fn event_hash(seed: u64, t_ms: u64, client: u32, hostname: &str) -> u64 {
    mix64(
        fnv(hostname.as_bytes())
            ^ mix64(t_ms)
            ^ (client as u64).wrapping_mul(0x517c_c1b7_2722_0a95)
            ^ mix64(seed ^ 0xdefe_45e0),
    )
}

/// Naive ECH decision: hidden iff the hostname's rank is inside the
/// rounded adoption prefix.
pub fn ech_hidden(defense: Defense, catalog: &OracleCatalog, hostname: &str) -> bool {
    let Defense::Ech { adoption } = defense else {
        return false;
    };
    let cut = (adoption.clamp(0.0, 1.0) * catalog.names.len() as f64).round() as usize;
    match catalog.rank_of(hostname) {
        Some(r) => r < cut,
        None => false,
    }
}

/// Naive DoH decision: the client's migration hash under the adoption
/// threshold.
pub fn doh_migrated(defense: Defense, seed: u64, client: u32) -> bool {
    let Defense::Doh { adoption } = defense else {
        return false;
    };
    to_unit(mix64(
        seed ^ 0xd0e0 ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )) < adoption
}

/// The wire decision for one event as a plain tuple:
/// `(force_ech, force_dns, resolver)`.
pub fn wire_decision(
    defense: Defense,
    catalog: &OracleCatalog,
    seed: u64,
    client: u32,
    hostname: &str,
) -> (bool, bool, Option<&'static str>) {
    if ech_hidden(defense, catalog, hostname) {
        (true, false, None)
    } else if doh_migrated(defense, seed, client) {
        (true, true, Some(DOH_RESOLVER))
    } else {
        (false, false, None)
    }
}

/// Decoy/cover events injected after one real event, recomputed from
/// the spec.
pub fn injected(
    defense: Defense,
    catalog: &OracleCatalog,
    seed: u64,
    t_ms: u64,
    client: u32,
    hostname: &str,
) -> Vec<RequestEvent> {
    let n = catalog.names.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let eh = event_hash(seed, t_ms, client, hostname);
    match defense {
        Defense::Dummy { rate } => {
            let rate = if rate < 0.0 { 0.0 } else { rate };
            let whole = rate.floor() as usize;
            let extra = if to_unit(mix64(eh ^ 0x00d0)) < rate - rate.floor() {
                1
            } else {
                0
            };
            for i in 0..whole + extra {
                let u = to_unit(mix64(eh ^ (0xd117 + i as u64)));
                let mut idx = (u * u * n as f64) as usize;
                if idx > n - 1 {
                    idx = n - 1;
                }
                out.push(RequestEvent {
                    t_ms: t_ms + 7 + 13 * i as u64,
                    client,
                    hostname: catalog.names[idx].clone(),
                });
            }
        }
        Defense::PadConstant { pad_per_event } => {
            let prefix = if PAD_COVER_PREFIX < n {
                PAD_COVER_PREFIX
            } else {
                n
            };
            for i in 0..pad_per_event as usize {
                let idx = (eh.wrapping_add(i as u64) % prefix as u64) as usize;
                out.push(RequestEvent {
                    t_ms: t_ms + 3 + 5 * i as u64,
                    client,
                    hostname: catalog.names[idx].clone(),
                });
            }
        }
        Defense::PadAdaptive { intensity } => {
            let intensity = if intensity < 0.0 { 0.0 } else { intensity };
            let whole = intensity.floor() as usize;
            let extra = if to_unit(mix64(eh ^ 0x0ada)) < intensity - intensity.floor() {
                1
            } else {
                0
            };
            let anchor = match catalog.rank_of(hostname) {
                Some(r) => r,
                None => {
                    let u = to_unit(mix64(eh ^ 0x0a0c));
                    let mut idx = (u * u * n as f64) as usize;
                    if idx > n - 1 {
                        idx = n - 1;
                    }
                    idx
                }
            };
            let width = (2 * ADAPTIVE_NEIGHBORHOOD + 1) as u64;
            for i in 0..whole + extra {
                let d =
                    (mix64(eh ^ (0xada0 + i as u64)) % width) as i64 - ADAPTIVE_NEIGHBORHOOD as i64;
                let mut idx = anchor as i64 + d;
                if idx < 0 {
                    idx = 0;
                }
                if idx > n as i64 - 1 {
                    idx = n as i64 - 1;
                }
                let shift = if i < 20 { i } else { 20 };
                out.push(RequestEvent {
                    t_ms: t_ms + (1u64 << shift) * 250,
                    client,
                    hostname: catalog.names[idx as usize].clone(),
                });
            }
        }
        Defense::Ech { .. } | Defense::Nat { .. } | Defense::Doh { .. } => {}
    }
    out
}

/// The naive trace transform: real events each followed by their
/// injections, then a stable insertion sort on `t_ms` (equal timestamps
/// keep emission order, exactly like the production stable sort).
pub fn transform(
    defense: Defense,
    catalog: &OracleCatalog,
    seed: u64,
    events: &[RequestEvent],
) -> Vec<RequestEvent> {
    let mut out: Vec<RequestEvent> = Vec::new();
    for ev in events {
        out.push(ev.clone());
        for inj in injected(defense, catalog, seed, ev.t_ms, ev.client, &ev.hostname) {
            out.push(inj);
        }
    }
    // Insertion sort: shift each element left past strictly later ones.
    for i in 1..out.len() {
        let mut j = i;
        while j > 0 && out[j - 1].t_ms > out[j].t_ms {
            out.swap(j - 1, j);
            j -= 1;
        }
    }
    out
}

/// Naive NAT address: `base_ip + client / users_per_ip`, identity at
/// pool size ≤ 1 (same address as per-client).
pub fn nat_address(defense: Defense, base_ip: u32, client: u32) -> u32 {
    match defense {
        Defense::Nat { users_per_ip } if users_per_ip > 1 => {
            base_ip.wrapping_add(client / users_per_ip)
        }
        _ => base_ip.wrapping_add(client),
    }
}

/// Diff the production [`DefensePlan`] against the naive twin on one
/// event stream: the full transform output plus every per-event wire
/// decision. Every divergence is a [`Stage::Defense`] mismatch.
pub fn diff_transform(plan: &DefensePlan, events: &[RequestEvent]) -> DiffReport {
    let mut report = DiffReport::default();
    let rows: Vec<(u32, String, f64)> = (0..plan.catalog().len())
        .map(|i| (i as u32, plan.catalog().name(i).to_string(), -(i as f64)))
        .collect();
    let catalog = OracleCatalog::from_rows(&rows);
    let defense = plan.defense();
    let seed = plan.seed();

    let produced = plan.transform(events);
    let expected = transform(defense, &catalog, seed, events);
    if produced.len() != expected.len() {
        report.check_failed(Mismatch {
            stage: Stage::Defense,
            item: "transform".into(),
            max_abs: (produced.len() as f64 - expected.len() as f64).abs(),
            max_ulp: 0,
            detail: format!(
                "event count: production {} vs oracle {}",
                produced.len(),
                expected.len()
            ),
        });
    } else {
        for (i, (p, e)) in produced.iter().zip(&expected).enumerate() {
            if p == e {
                report.check_ok();
            } else {
                report.check_failed(Mismatch {
                    stage: Stage::Defense,
                    item: format!("transform[{i}]"),
                    max_abs: 0.0,
                    max_ulp: 0,
                    detail: format!("production {p:?} vs oracle {e:?}"),
                });
            }
        }
    }

    for ev in events {
        let ov = plan.wire_override(ev.client, &ev.hostname);
        let (force_ech, force_dns, resolver) =
            wire_decision(defense, &catalog, seed, ev.client, &ev.hostname);
        if ov.force_ech == force_ech && ov.force_dns == force_dns && ov.doh_resolver == resolver {
            report.check_ok();
        } else {
            report.check_failed(Mismatch {
                stage: Stage::Defense,
                item: format!("wire[{}/{}]", ev.client, ev.hostname),
                max_abs: 0.0,
                max_ulp: 0,
                detail: format!(
                    "production {ov:?} vs oracle ({force_ech}, {force_dns}, {resolver:?})"
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_defense::HostCatalog;

    fn plan(d: Defense, n: usize, seed: u64) -> DefensePlan {
        let catalog = HostCatalog::from_hosts(
            (0..n).map(|i| (i as u32, format!("host{i}.test"), 1.0 / (i as f64 + 1.0))),
        );
        DefensePlan::new(d, catalog, seed)
    }

    fn events() -> Vec<RequestEvent> {
        (0..60)
            .map(|i| RequestEvent {
                t_ms: (i / 3) * 50, // duplicate timestamps exercise sort stability
                client: (i % 7) as u32,
                hostname: format!("host{}.test", i % 25),
            })
            .collect()
    }

    #[test]
    fn production_matches_the_oracle_on_every_defense() {
        let evs = events();
        for d in [
            Defense::Ech { adoption: 0.4 },
            Defense::Dummy { rate: 1.6 },
            Defense::PadConstant { pad_per_event: 3 },
            Defense::PadAdaptive { intensity: 2.2 },
            Defense::Nat { users_per_ip: 4 },
            Defense::Doh { adoption: 0.5 },
        ] {
            let report = diff_transform(&plan(d, 30, 17), &evs);
            assert!(report.is_clean(), "{d:?}:\n{}", report.summary());
            assert!(report.items_checked > evs.len());
        }
    }

    #[test]
    fn oracle_identity_points_are_no_ops() {
        let evs = events();
        let rows: Vec<(u32, String, f64)> = (0..30)
            .map(|i| (i, format!("host{i}.test"), 1.0 / (i as f64 + 1.0)))
            .collect();
        let catalog = OracleCatalog::from_rows(&rows);
        for d in [
            Defense::Ech { adoption: 0.0 },
            Defense::Dummy { rate: 0.0 },
            Defense::PadConstant { pad_per_event: 0 },
            Defense::PadAdaptive { intensity: 0.0 },
            Defense::Doh { adoption: 0.0 },
            Defense::Nat { users_per_ip: 1 },
        ] {
            assert_eq!(transform(d, &catalog, 7, &evs), evs, "{d:?}");
            for ev in &evs {
                assert_eq!(
                    wire_decision(d, &catalog, 7, ev.client, &ev.hostname),
                    (false, false, None),
                    "{d:?}"
                );
            }
        }
    }

    #[test]
    fn a_sabotaged_seed_is_caught_and_attributed() {
        // Same defense, different seed: the twin recomputes decoys from
        // the plan's own seed, so to sabotage we compare two plans'
        // outputs by hand.
        let evs = events();
        let a = plan(Defense::Dummy { rate: 2.0 }, 30, 1).transform(&evs);
        let b = plan(Defense::Dummy { rate: 2.0 }, 30, 2).transform(&evs);
        assert_ne!(a, b, "seed must decorrelate decoy draws");
        // And a direct mismatch surfaces as a Defense-stage report.
        let rows: Vec<(u32, String, f64)> = (0..30)
            .map(|i| (i, format!("host{i}.test"), 1.0 / (i as f64 + 1.0)))
            .collect();
        let catalog = OracleCatalog::from_rows(&rows);
        let expected = transform(Defense::Dummy { rate: 2.0 }, &catalog, 1, &evs);
        assert_ne!(b.len(), 0);
        assert_eq!(a, expected, "twin disagrees with production at seed 1");
    }

    #[test]
    fn naive_catalog_ranks_like_production() {
        let rows = vec![
            (2u32, "b.test".to_string(), 0.5),
            (1, "a.test".to_string(), 0.5),
            (0, "c.test".to_string(), 0.9),
        ];
        let naive = OracleCatalog::from_rows(&rows);
        let prod = HostCatalog::from_hosts(rows);
        for i in 0..3 {
            assert_eq!(naive.names[i], prod.name(i));
        }
    }

    #[test]
    fn nat_addresses_fold_pools_and_identity_at_one() {
        for c in 0..32 {
            assert_eq!(nat_address(Defense::Nat { users_per_ip: 1 }, 10, c), 10 + c);
            assert_eq!(
                nat_address(Defense::Nat { users_per_ip: 4 }, 10, c),
                10 + c / 4
            );
        }
    }
}
