//! The chaos conformance harness: the four acceptance properties of the
//! fault-injection subsystem, each exercised over **1000+ seeded cases**.
//!
//! Each case derives a fresh traffic stream (shape varies with the seed),
//! mutates it with `net::chaos`, and checks one property:
//!
//! * **(a)** no mutated stream panics the observer, and the error-taxonomy
//!   counters account for every parse error exactly;
//! * **(b)** flows the chaos pass certifies *clean* yield bit-identical
//!   observations with and without chaos;
//! * **(c)** reassembly (`pending`) memory never exceeds the configured
//!   caps, after every single packet;
//! * **(d)** the same seed replays the same chaos: identical mutated
//!   bytes, identical chaos stats, identical observer stats.
//!
//! The vendored proptest macro defaults to 64 cases, so these properties
//! drive their own explicit seed loops instead. `CHAOS_SEED_BASE` shifts
//! the seed window (the CI matrix runs disjoint windows); `CHAOS_CASES`
//! overrides the per-property case count (default 1000).

use hostprof::net::observer::ObserverConfig;
use hostprof::net::{
    chaos, ChaosConfig, FlowKey, Packet, RequestEvent, SniObserver, TrafficSynthesizer,
};

/// Per-property case count; the ISSUE floor is 1000.
fn cases() -> u64 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Seed-window offset for the CI matrix.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// splitmix64 over the case seed, used only to vary traffic *shape* —
/// independent of the chaos module's own per-flow streams.
struct ShapeRng(u64);

impl ShapeRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic stream whose event count, client count, hostname pool
/// and TLS/QUIC/DNS/ECH mix all vary with the seed.
fn stream_for(seed: u64) -> Vec<Packet> {
    let mut rng = ShapeRng(seed.wrapping_mul(0x9e6c_63d0_876a_9a7d) ^ 0x0b5e_ed01);
    let events = 3 + rng.below(24);
    let clients = 1 + rng.below(5) as u32;
    let hosts = 1 + rng.below(8);
    let synth = TrafficSynthesizer {
        quic_fraction: rng.below(5) as f64 * 0.25,
        dns_fraction: rng.below(4) as f64 * 0.15,
        ech_fraction: rng.below(3) as f64 * 0.2,
        tcp_fragment_fraction: rng.below(5) as f64 * 0.25,
        ..TrafficSynthesizer::default()
    };
    let events: Vec<RequestEvent> = (0..events)
        .map(|i| RequestEvent {
            t_ms: 500 + i * (40 + rng.below(500)),
            client: (i as u32) % clients,
            hostname: format!("w{}.case{}.example.org", rng.below(hosts), seed % 89),
        })
        .collect();
    synth.synthesize(&events)
}

/// Property (a): 1000+ aggressively mutated streams, zero panics, and on
/// every one `parse_errors` decomposes exactly into the taxonomy buckets
/// while the impossible-state counter stays zero.
#[test]
fn prop_a_no_mutated_stream_panics_and_errors_are_classified() {
    let base = seed_base();
    let mut mutated_total = 0u64;
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let out = chaos::apply(&ChaosConfig::aggressive(seed), &stream);
        mutated_total += out.stats.mutated_flows;
        let mut obs = SniObserver::new().with_dns_harvesting();
        obs.process_stream(&out.packets);
        let stats = obs.stats();
        assert_eq!(
            stats.parse_errors,
            stats.taxonomy_total(),
            "seed {seed}: unclassified parse errors: {stats:?}"
        );
        assert_eq!(stats.reassembly_invariant, 0, "seed {seed}: {stats:?}");
    }
    assert!(mutated_total > 0, "aggressive chaos must actually mutate");
}

/// Property (b): for every chaos-certified clean flow, a solo replay of
/// the flow's original packets yields observations that all appear
/// verbatim (bit-identical `Observation` values) in the chaotic run.
#[test]
fn prop_b_clean_flow_observations_survive_bit_identical() {
    let base = seed_base();
    let mut clean_observations = 0u64;
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let out = chaos::apply(&ChaosConfig::with_seed(seed), &stream);
        let mut chaotic = SniObserver::new();
        chaotic.process_stream(&out.packets);
        for key in &out.clean_flows {
            let flow_pkts: Vec<Packet> = stream
                .iter()
                .filter(|p| FlowKey::of(p) == *key)
                .cloned()
                .collect();
            let mut solo = SniObserver::new();
            solo.process_stream(&flow_pkts);
            for want in solo.observations() {
                clean_observations += 1;
                assert!(
                    chaotic.observations().contains(want),
                    "seed {seed}: clean flow {key:?} lost {want:?}"
                );
            }
        }
    }
    assert!(
        clean_observations > 1000,
        "the clean population must be non-trivial ({clean_observations})"
    );
}

/// Property (c): with deliberately tiny caps and aggressive chaos, the
/// observer's pending-reassembly memory and flow count never exceed the
/// configured ceilings at any packet boundary.
#[test]
fn prop_c_pending_memory_never_exceeds_caps() {
    let base = seed_base();
    let cfg = ObserverConfig {
        max_pending_bytes: 1_536,
        max_pending_segments: 8,
        max_pending_flows: 6,
        max_total_pending_bytes: 6_144,
    };
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let out = chaos::apply(&ChaosConfig::aggressive(seed), &stream);
        let mut obs = SniObserver::with_config(cfg);
        for pkt in &out.packets {
            obs.process(pkt);
            assert!(
                obs.pending_bytes() <= cfg.max_total_pending_bytes
                    && obs.pending_flows() <= cfg.max_pending_flows,
                "seed {seed}: pending {}B/{} flows over caps {}B/{}",
                obs.pending_bytes(),
                obs.pending_flows(),
                cfg.max_total_pending_bytes,
                cfg.max_pending_flows
            );
        }
    }
}

/// Property (d): equal seeds replay equal chaos — mutated packets, chaos
/// stats, observer stats and observations are all identical across runs.
#[test]
fn prop_d_same_seed_replays_identical_chaos_and_stats() {
    let base = seed_base();
    for seed in base..base + cases() {
        let stream = stream_for(seed);
        let cfg = ChaosConfig::with_seed(seed);
        let a = chaos::apply(&cfg, &stream);
        let b = chaos::apply(&cfg, &stream);
        assert_eq!(a.packets, b.packets, "seed {seed}");
        assert_eq!(a.stats, b.stats, "seed {seed}");
        assert_eq!(a.clean_flows, b.clean_flows, "seed {seed}");
        let mut oa = SniObserver::new();
        oa.process_stream(&a.packets);
        let mut ob = SniObserver::new();
        ob.process_stream(&b.packets);
        assert_eq!(oa.stats(), ob.stats(), "seed {seed}");
        assert_eq!(oa.observations(), ob.observations(), "seed {seed}");
    }
}
