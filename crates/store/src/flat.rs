//! The flat byte layout: aligned little-endian sections behind a small
//! table of contents.
//!
//! Both [`TraceColumns`](crate::TraceColumns) and the embedding store
//! persist through this container. The design goals are the ones that
//! matter for memory-mapped use:
//!
//! * every section payload starts at an 8-byte-aligned offset from the
//!   start of the buffer, so a future zero-copy reader can cast typed
//!   columns straight out of an mmap;
//! * fixed-width little-endian encoding, no varints, no compression —
//!   offsets are computable without touching payload bytes;
//! * a leading magic + section count, then `(tag, byte length)` headers,
//!   so unknown sections are skippable and truncation is detectable.
//!
//! The safe reader here copies values out (`Vec<u32>` etc.) — correctness
//! first; the layout is what makes the zero-copy upgrade possible without
//! a format change.

/// Container magic: identifies the format and its version.
pub const MAGIC: [u8; 8] = *b"HPFLAT1\0";

/// Errors a [`FlatReader`] can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatError {
    /// Buffer does not start with [`MAGIC`].
    BadMagic,
    /// Buffer ends before a declared header or payload.
    Truncated,
    /// A section payload length is not a multiple of its element width.
    BadSectionLen {
        /// Section tag.
        tag: u32,
        /// Payload length found.
        len: usize,
        /// Element width expected to divide it.
        elem: usize,
    },
    /// A required section is absent.
    MissingSection(u32),
}

impl std::fmt::Display for FlatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatError::BadMagic => write!(f, "not a flat container (bad magic)"),
            FlatError::Truncated => write!(f, "flat container truncated"),
            FlatError::BadSectionLen { tag, len, elem } => {
                write!(f, "section {tag:#x}: length {len} not a multiple of {elem}")
            }
            FlatError::MissingSection(tag) => write!(f, "section {tag:#x} missing"),
        }
    }
}

impl std::error::Error for FlatError {}

fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Serializes tagged sections into one aligned buffer.
#[derive(Debug, Default)]
pub struct FlatWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl FlatWriter {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a raw byte section.
    pub fn section(&mut self, tag: u32, bytes: Vec<u8>) -> &mut Self {
        self.sections.push((tag, bytes));
        self
    }

    /// Append a `u32` column (little-endian).
    pub fn section_u32s(&mut self, tag: u32, values: &[u32]) -> &mut Self {
        let mut b = Vec::with_capacity(values.len() * 4);
        for v in values {
            b.extend_from_slice(&v.to_le_bytes());
        }
        self.section(tag, b)
    }

    /// Append a `u64` column (little-endian).
    pub fn section_u64s(&mut self, tag: u32, values: &[u64]) -> &mut Self {
        let mut b = Vec::with_capacity(values.len() * 8);
        for v in values {
            b.extend_from_slice(&v.to_le_bytes());
        }
        self.section(tag, b)
    }

    /// Append an `f32` column (little-endian bit patterns).
    pub fn section_f32s(&mut self, tag: u32, values: &[f32]) -> &mut Self {
        let mut b = Vec::with_capacity(values.len() * 4);
        for v in values {
            b.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.section(tag, b)
    }

    /// Append a UTF-8 string section.
    pub fn section_str(&mut self, tag: u32, value: &str) -> &mut Self {
        self.section(tag, value.as_bytes().to_vec())
    }

    /// Encode: magic, section count, headers, 8-aligned payloads.
    pub fn finish(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // keep headers 8-aligned
        for (tag, bytes) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
            out.resize(pad8(out.len()), 0);
        }
        out
    }
}

/// Reads sections back out of a flat container.
#[derive(Debug)]
pub struct FlatReader<'a> {
    /// `(tag, payload)` in container order.
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> FlatReader<'a> {
    /// Parse the table of contents; payloads are borrowed, not copied.
    pub fn new(buf: &'a [u8]) -> Result<Self, FlatError> {
        if buf.len() < 16 {
            return Err(FlatError::Truncated);
        }
        if buf[..8] != MAGIC {
            return Err(FlatError::BadMagic);
        }
        let count = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        let headers_end = 16 + count * 16;
        if buf.len() < headers_end {
            return Err(FlatError::Truncated);
        }
        let mut sections = Vec::with_capacity(count);
        let mut offset = headers_end;
        for i in 0..count {
            let h = 16 + i * 16;
            let tag = u32::from_le_bytes(buf[h..h + 4].try_into().unwrap());
            let len = u64::from_le_bytes(buf[h + 8..h + 16].try_into().unwrap()) as usize;
            let end = offset.checked_add(len).ok_or(FlatError::Truncated)?;
            if buf.len() < end {
                return Err(FlatError::Truncated);
            }
            sections.push((tag, &buf[offset..end]));
            offset = pad8(end);
        }
        Ok(Self { sections })
    }

    /// Raw payload of the first section with `tag`.
    pub fn section(&self, tag: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, b)| *b)
    }

    fn required(&self, tag: u32) -> Result<&'a [u8], FlatError> {
        self.section(tag).ok_or(FlatError::MissingSection(tag))
    }

    /// Decode a `u32` column.
    pub fn u32s(&self, tag: u32) -> Result<Vec<u32>, FlatError> {
        let b = self.required(tag)?;
        if b.len() % 4 != 0 {
            return Err(FlatError::BadSectionLen {
                tag,
                len: b.len(),
                elem: 4,
            });
        }
        Ok(b.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decode a `u64` column.
    pub fn u64s(&self, tag: u32) -> Result<Vec<u64>, FlatError> {
        let b = self.required(tag)?;
        if b.len() % 8 != 0 {
            return Err(FlatError::BadSectionLen {
                tag,
                len: b.len(),
                elem: 8,
            });
        }
        Ok(b.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decode an `f32` column (exact bit patterns).
    pub fn f32s(&self, tag: u32) -> Result<Vec<f32>, FlatError> {
        let b = self.required(tag)?;
        if b.len() % 4 != 0 {
            return Err(FlatError::BadSectionLen {
                tag,
                len: b.len(),
                elem: 4,
            });
        }
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    /// Decode a UTF-8 string section.
    pub fn str(&self, tag: u32) -> Result<&'a str, FlatError> {
        let b = self.required(tag)?;
        std::str::from_utf8(b).map_err(|_| FlatError::BadSectionLen {
            tag,
            len: b.len(),
            elem: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_typed_sections() {
        let mut w = FlatWriter::new();
        w.section_u32s(1, &[7, 8, 9])
            .section_u64s(2, &[u64::MAX, 0])
            .section_f32s(3, &[1.5, -0.0, f32::NAN])
            .section_str(4, "hello.example");
        let buf = w.finish();
        let r = FlatReader::new(&buf).unwrap();
        assert_eq!(r.u32s(1).unwrap(), [7, 8, 9]);
        assert_eq!(r.u64s(2).unwrap(), [u64::MAX, 0]);
        let f = r.f32s(3).unwrap();
        assert_eq!(f[0].to_bits(), 1.5f32.to_bits());
        assert_eq!(f[1].to_bits(), (-0.0f32).to_bits());
        assert!(f[2].is_nan());
        assert_eq!(r.str(4).unwrap(), "hello.example");
        assert_eq!(r.section(99), None);
    }

    #[test]
    fn payloads_are_eight_aligned() {
        let mut w = FlatWriter::new();
        w.section_str(1, "abc") // 3 bytes: forces padding before next
            .section_u64s(2, &[42]);
        let buf = w.finish();
        // Find section 2's payload offset the way the reader does and
        // check alignment relative to the buffer start.
        let headers_end = 16 + 2 * 16;
        let s1_len = 3usize;
        let s2_off = (headers_end + s1_len).div_ceil(8) * 8;
        assert_eq!(s2_off % 8, 0);
        assert_eq!(&buf[s2_off..s2_off + 8], &42u64.to_le_bytes());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(FlatReader::new(b"short").unwrap_err(), FlatError::Truncated);
        let mut bad = FlatWriter::new().section_u32s(1, &[1]).finish();
        bad[0] = b'X';
        assert_eq!(FlatReader::new(&bad).unwrap_err(), FlatError::BadMagic);
        let good = FlatWriter::new().section_u32s(1, &[1, 2, 3]).finish();
        assert_eq!(
            FlatReader::new(&good[..good.len() - 8]).unwrap_err(),
            FlatError::Truncated
        );
    }

    #[test]
    fn wrong_element_width_is_detected() {
        let buf = FlatWriter::new().section_str(5, "abc").finish();
        let r = FlatReader::new(&buf).unwrap();
        assert!(matches!(
            r.u32s(5).unwrap_err(),
            FlatError::BadSectionLen {
                tag: 5,
                len: 3,
                elem: 4
            }
        ));
        assert!(matches!(
            r.u64s(5).unwrap_err(),
            FlatError::BadSectionLen { .. }
        ));
    }

    #[test]
    fn missing_required_section_is_an_error() {
        let buf = FlatWriter::new().section_u32s(1, &[1]).finish();
        let r = FlatReader::new(&buf).unwrap();
        assert_eq!(r.u64s(2).unwrap_err(), FlatError::MissingSection(2));
    }
}
