//! Generator configuration.
//!
//! Defaults are a laptop-scale model of the paper's deployment; the
//! `paper_scale` presets match the paper's headline counts (1329 users,
//! hundreds of thousands of hostnames) for the E7 extrapolation experiment.

use serde::{Deserialize, Serialize};

/// Configuration of the synthetic hostname universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Topical content sites (the profiling signal).
    pub num_sites: usize,
    /// CDN hosts (unlabeled, co-requested with sites).
    pub num_cdns: usize,
    /// API endpoints (unlabeled, partially topic-affine — the
    /// `api.bkng.azure.com` phenomenon).
    pub num_apis: usize,
    /// Trackers / ad servers (no interest signal; blocklist fodder).
    pub num_trackers: usize,
    /// Zipf exponent of site popularity.
    pub popularity_exponent: f64,
    /// Target fraction of the hostname universe covered by the ontology
    /// (paper: Google Adwords covers 10.6 %). Only crawlable hosts (sites
    /// and core) can carry labels, so the effective coverage is capped at
    /// their share of the universe (~35 % under the default kind mix) —
    /// targets above that are silently clamped, mirroring how the paper's
    /// 67 % uncrawlable share bounded Adwords too.
    pub ontology_coverage: f64,
    /// Standard deviation of the multiplicative noise applied to ontology
    /// labels relative to ground truth.
    pub label_noise: f64,
    /// Fraction of sites that behave interactively (streaming/video):
    /// they are re-requested many times within one visit, exercising the
    /// profiler's first-visit-only deduplication.
    pub interactive_site_fraction: f64,
    /// RNG seed; every world with the same config is byte-identical.
    pub seed: u64,
}

impl Default for WorldConfig {
    /// Infrastructure (CDN/API/tracker) hostnames outnumber content sites
    /// roughly 2:1 so the uncrawlable share of the universe lands near the
    /// paper's 67 %.
    fn default() -> Self {
        Self {
            num_sites: 3000,
            num_cdns: 2200,
            num_apis: 3200,
            num_trackers: 700,
            popularity_exponent: 1.0,
            ontology_coverage: 0.106,
            label_noise: 0.10,
            interactive_site_fraction: 0.12,
            seed: 0x5eed_0001,
        }
    }
}

impl WorldConfig {
    /// A small world for unit tests: fast to generate, still has every
    /// host kind.
    pub fn tiny() -> Self {
        Self {
            num_sites: 200,
            num_cdns: 120,
            num_apis: 180,
            num_trackers: 40,
            ..Self::default()
        }
    }

    /// The million-user bench tier's universe: ~10⁵ hostnames (a large
    /// vocabulary, still trainable in one process). Used only by
    /// `--scale large`.
    pub fn large() -> Self {
        Self {
            num_sites: 40_000,
            num_cdns: 25_000,
            num_apis: 30_000,
            num_trackers: 8_000,
            ..Self::default()
        }
    }

    /// A world whose hostname count approaches the paper's 470 K unique
    /// hostnames. Heavy: only used by the E7 scale experiment.
    pub fn paper_scale() -> Self {
        Self {
            num_sites: 150_000,
            num_cdns: 120_000,
            num_apis: 170_000,
            num_trackers: 30_000,
            ..Self::default()
        }
    }

    /// Total number of hostnames this config will mint.
    pub fn total_hosts(&self) -> usize {
        self.num_sites
            + self.num_cdns
            + self.num_apis
            + self.num_trackers
            + crate::names::CORE_SITE_NAMES.len()
    }
}

/// Configuration of the synthetic user population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of users (paper: 1329 installs).
    pub num_users: usize,
    /// Minimum / maximum number of top-level interest topics per user.
    pub interests_min: usize,
    /// See [`PopulationConfig::interests_min`].
    pub interests_max: usize,
    /// Dirichlet concentration across a user's interest topics; lower
    /// values → more skewed interests.
    pub interest_alpha: f64,
    /// Median browsing sessions per day (log-normally distributed across
    /// users).
    pub sessions_per_day_median: f64,
    /// Log-space sigma of sessions-per-day.
    pub sessions_per_day_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            num_users: 400,
            interests_min: 3,
            interests_max: 8,
            interest_alpha: 0.8,
            sessions_per_day_median: 3.0,
            sessions_per_day_sigma: 0.6,
            seed: 0x5eed_0002,
        }
    }
}

impl PopulationConfig {
    /// A handful of users for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_users: 20,
            ..Self::default()
        }
    }

    /// The paper's 1329 participants.
    pub fn paper_scale() -> Self {
        Self {
            num_users: 1329,
            ..Self::default()
        }
    }

    /// The million-user bench tier. Activity is dialed down (≈1 session
    /// per day) so total observations stay bounded by memory, the way an
    /// ISP's long-tail subscriber base mostly idles.
    pub fn large() -> Self {
        Self {
            num_users: 1_000_000,
            sessions_per_day_median: 1.0,
            ..Self::default()
        }
    }
}

/// Configuration of browsing-trace generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of simulated days.
    pub days: u32,
    /// Probability that a page visit goes to a core host instead of a
    /// topical site (the google/facebook background noise).
    pub core_visit_prob: f64,
    /// Probability of staying on the current interest topic for the next
    /// page (topical sessions are the signal SKIPGRAM learns from).
    pub topic_persistence: f64,
    /// Probability that each dependency (CDN/API/tracker) of a visited site
    /// actually fires a request.
    pub dependency_fire_prob: f64,
    /// Mean of log(pages per session); exp(2.3) ≈ 10 pages.
    pub pages_mu: f64,
    /// Sigma of log(pages per session).
    pub pages_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            days: 30,
            core_visit_prob: 0.22,
            topic_persistence: 0.62,
            dependency_fire_prob: 0.8,
            pages_mu: 2.3,
            pages_sigma: 0.7,
            seed: 0x5eed_0003,
        }
    }
}

impl TraceConfig {
    /// A couple of days for unit tests.
    pub fn tiny() -> Self {
        Self {
            days: 2,
            ..Self::default()
        }
    }

    /// The one-month profiling phase of the paper.
    pub fn profiling_month() -> Self {
        Self::default()
    }

    /// The million-user bench tier: two days (train on day 0, profile
    /// day 1) with shorter sessions. Two days also keeps every timestamp
    /// well inside the columnar store's u32-millisecond horizon.
    pub fn large() -> Self {
        Self {
            days: 2,
            pages_mu: 1.4, // exp(1.4) ≈ 4 pages per session
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let w = WorldConfig::default();
        assert!(w.ontology_coverage > 0.0 && w.ontology_coverage < 1.0);
        assert!(w.total_hosts() > w.num_sites);
        let p = PopulationConfig::default();
        assert!(p.interests_min <= p.interests_max);
        let t = TraceConfig::default();
        assert!(t.topic_persistence < 1.0);
    }

    #[test]
    fn paper_scale_matches_headline_counts() {
        assert_eq!(PopulationConfig::paper_scale().num_users, 1329);
        assert!(WorldConfig::paper_scale().total_hosts() >= 470_000);
    }
}
