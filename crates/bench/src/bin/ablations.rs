//! E8 — ablations over the design knobs Section 5.4 calls configurable.
//!
//! The paper fixes d = 100, window 2m+1 = 5, K = 5, T = 20 min, N = 1000
//! ("we use the default hyperparameter values of GENSIM", "this value was
//! empirically tested as a good trade-off") without publishing the sweep.
//! Ground truth lets us run it: for each knob we measure the mean cosine
//! between inferred session profiles and the users' true interest vectors,
//! against the ontology-only baseline.

use hostprof::scenario::Scenario;
use hostprof_bench::{header, row, write_results, Scale};
use hostprof_core::{
    profile_accuracy, Aggregation, Pipeline, PipelineConfig, ProfilerConfig, Session,
};
use hostprof_embed::SkipGramConfig;
use hostprof_synth::trace::DAY_MS;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    knob: String,
    value: String,
    mean_accuracy: f64,
    sessions_profiled: usize,
}

#[derive(Serialize)]
struct AblationResults {
    scale: String,
    baseline_ontology_only: f64,
    baseline_sessions: usize,
    rows: Vec<AblationRow>,
}

/// Mean profile accuracy of the last day-1 session of every user, under a
/// given pipeline config and session window.
fn evaluate(s: &Scenario, pipeline_cfg: PipelineConfig, ontology_only: bool) -> (f64, usize) {
    let pipeline = Pipeline::new(pipeline_cfg, s.world.blocklist().clone());
    // Train on every day before the evaluation day (the paper's one-day
    // window carries far more tokens than one synthetic day; see the
    // `embed_quality` sweep).
    let eval_day = s.trace.days().saturating_sub(1) as u64;
    let mut sequences = Vec::new();
    for day in 0..eval_day as u32 {
        sequences.extend(s.daily_hostname_sequences(day));
    }
    let Ok(embeddings) = pipeline.train_model(&sequences) else {
        return (0.0, 0);
    };
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());

    let mut acc = 0f64;
    let mut n = 0usize;
    for user in s.population.users() {
        let last = s
            .trace
            .user_requests(user.id)
            .filter(|r| r.t_ms >= eval_day * DAY_MS && r.t_ms < (eval_day + 1) * DAY_MS)
            .last();
        let Some(last) = last else { continue };
        let window = s
            .trace
            .window(user.id, last.t_ms, pipeline.config().session_window_ms());
        let hostnames: Vec<&str> = window.iter().map(|h| s.world.hostname(*h)).collect();
        let session = Session::from_window(hostnames.iter().copied(), Some(pipeline.blocklist()));
        let profile = if ontology_only {
            profiler.profile_ontology_only(&session)
        } else {
            profiler.profile(&session)
        };
        if let Some(p) = profile {
            acc += profile_accuracy(&p.categories, &user.interests) as f64;
            n += 1;
        }
    }
    (if n > 0 { acc / n as f64 } else { 0.0 }, n)
}

fn main() {
    let scale = Scale::from_env();
    let mut cfg = scale.scenario();
    cfg.trace.days = cfg.trace.days.min(6); // 5 training days + 1 eval day
    let s = Scenario::generate(&cfg);
    let base_pipeline = cfg.pipeline.clone();

    header(&format!("Ablations (scale: {})", scale.label()));

    let (base_acc, base_n) = evaluate(&s, base_pipeline.clone(), false);
    let (onto_acc, onto_n) = evaluate(&s, base_pipeline.clone(), true);
    row(
        "default config accuracy",
        format!("{base_acc:.3} over {base_n} sessions"),
    );
    row(
        "ontology-only baseline",
        format!("{onto_acc:.3} over {onto_n} sessions"),
    );
    println!(
        "  (embedding profiler covers {} sessions the baseline can't: {} vs {})\n",
        base_n.saturating_sub(onto_n),
        base_n,
        onto_n
    );

    let mut rows = Vec::new();
    let mut run = |knob: &str, value: String, pipeline_cfg: PipelineConfig| {
        let (acc, n) = evaluate(&s, pipeline_cfg, false);
        println!("  {knob:<22} {value:<10} accuracy {acc:.3}  ({n} sessions)");
        rows.push(AblationRow {
            knob: knob.to_string(),
            value,
            mean_accuracy: acc,
            sessions_profiled: n,
        });
    };

    println!("  sweep: embedding dimension d (paper: 100)");
    for dim in [16usize, 32, 64, base_pipeline.skipgram.dim] {
        let mut c = base_pipeline.clone();
        c.skipgram = SkipGramConfig { dim, ..c.skipgram };
        run("dim", dim.to_string(), c);
    }

    println!("  sweep: half-window m (paper: 2 → window 5)");
    for window in [1usize, 2, 4] {
        let mut c = base_pipeline.clone();
        c.skipgram = SkipGramConfig {
            window,
            ..c.skipgram
        };
        run("window(m)", window.to_string(), c);
    }

    println!("  sweep: negatives K (paper: 5)");
    for negatives in [2usize, 5, 10] {
        let mut c = base_pipeline.clone();
        c.skipgram = SkipGramConfig {
            negatives,
            ..c.skipgram
        };
        run("negatives(K)", negatives.to_string(), c);
    }

    println!("  sweep: session window T minutes (paper: 20)");
    for minutes in [5u64, 20, 60] {
        let mut c = base_pipeline.clone();
        c.session_minutes = minutes;
        run("T(min)", minutes.to_string(), c);
    }

    println!("  sweep: profile kNN size N (paper: 1000)");
    for n_neighbors in [50usize, 200, 1000] {
        let mut c = base_pipeline.clone();
        c.profiler = ProfilerConfig {
            n_neighbors,
            ..Default::default()
        };
        run("N", n_neighbors.to_string(), c);
    }

    println!("  sweep: aggregation g (paper: unweighted mean)");
    for (name, agg) in [
        ("mean", Aggregation::Mean),
        ("recency8", Aggregation::Recency { half_life: 8 }),
        ("inv-freq", Aggregation::InverseFrequency),
    ] {
        let mut c = base_pipeline.clone();
        c.profiler = ProfilerConfig {
            aggregation: agg,
            ..c.profiler
        };
        run("aggregation", name.to_string(), c);
    }

    println!("\n  shape check: accuracy is flat-ish around the paper's defaults (they sit on");
    println!("  a plateau) and the embedding profiler dominates the ontology-only baseline");

    write_results(
        "ablations",
        &AblationResults {
            scale: scale.label().to_string(),
            baseline_ontology_only: onto_acc,
            baseline_sessions: onto_n,
            rows,
        },
    );
}
