//! Diagnostic: embedding quality vs training budget.
//!
//! The paper trains on one day of traffic from 1329 heavy-browsing users —
//! orders of magnitude more tokens than our laptop-scale day. This tool
//! sweeps training days and epochs and reports same-topic neighbor purity
//! and the intra/inter cosine gap, to pick honest defaults for the Figure 4
//! experiment and document the data-budget sensitivity.

use hostprof::scenario::Scenario;
use hostprof_bench::{header, Scale};
use hostprof_core::Pipeline;
use hostprof_embed::SkipGramConfig;
use hostprof_stats::{neighbor_purity, similarity_gap};
use hostprof_synth::names::second_level_domain;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_env();
    let base = scale.scenario();
    let s = Scenario::generate(&base);

    header(&format!(
        "Embedding quality sweep (scale: {})",
        scale.label()
    ));
    println!(
        "  {:>5} {:>7} {:>6} {:>9} {:>9} {:>8} {:>8}",
        "days", "epochs", "dim", "purity@10", "baseline", "intra", "inter"
    );

    let hierarchy_topics: HashMap<&str, usize> = s
        .world
        .hosts()
        .iter()
        .filter_map(|h| {
            h.top_topic
                .map(|t| (second_level_domain(&h.name), t.index()))
        })
        .collect();

    for (days, epochs, dim) in [
        (1u32, 4usize, 64usize),
        (1, 20, 64),
        (3, 8, 64),
        (s.trace.days(), 8, 64),
        (s.trace.days(), 8, 100),
        (s.trace.days(), 20, 100),
    ] {
        let days = days.min(s.trace.days());
        let mut sequences: Vec<Vec<String>> = Vec::new();
        for d in 0..days {
            sequences.extend(s.daily_hostname_sequences(d).into_iter().map(|seq| {
                seq.iter()
                    .map(|h| second_level_domain(h).to_string())
                    .collect()
            }));
        }
        let mut cfg = base.pipeline.clone();
        cfg.skipgram = SkipGramConfig {
            epochs,
            dim,
            ..cfg.skipgram
        };
        let pipeline = Pipeline::new(cfg, s.world.blocklist().clone());
        let Ok(emb) = pipeline.train_model(&sequences) else {
            continue;
        };

        let mut points: Vec<f32> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for (idx, token) in emb.vocab().iter() {
            if let Some(&t) = hierarchy_topics.get(token) {
                points.extend_from_slice(emb.vector_by_index(idx));
                labels.push(t);
            }
        }
        let purity = neighbor_purity(&points, emb.dim(), &labels, 10);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for l in &labels {
            *counts.entry(*l).or_insert(0) += 1;
        }
        let baseline: f64 = counts
            .values()
            .map(|&c| (c as f64 / labels.len() as f64).powi(2))
            .sum();
        let (intra, inter) = similarity_gap(&points, emb.dim(), &labels);
        println!(
            "  {days:>5} {epochs:>7} {dim:>6} {purity:>9.3} {baseline:>9.3} {intra:>8.3} {inter:>8.3}"
        );
    }
}
