//! # hostprof-ads
//!
//! The ad-ecosystem simulator for the CoNEXT '21 reproduction — the
//! substitute for the paper's live one-month experiment with 1329 real
//! users (DESIGN.md §2).
//!
//! The paper measures profile quality indirectly: ads picked from the
//! eavesdropper's profile are injected in place of ad-network ads, and the
//! click-through rates of the two populations are compared (eavesdropper
//! 0.217 % vs ad-network 0.168 %, paired t-test p ≈ 0.113 → no significant
//! difference). To regenerate that experiment we need every moving part:
//!
//! * [`ad`] — an ad database (~12 K creatives after filtering, Section 5.2)
//!   with IAB creative sizes and landing-page category vectors;
//! * [`click`] — a probabilistic user click model where the click
//!   probability grows with the affinity between the ad's categories and
//!   the user's *ground-truth* interests (the quantity CTR proxies);
//! * [`network`] — the ad-network baseline: premium / retargeted /
//!   contextual / targeted mix backed by cookie-level visibility of site
//!   visits;
//! * [`eavesdropper`] — the paper's ad selection: 20 nearest labeled hosts
//!   by Euclidean distance in category space, one ad per host
//!   (Section 5.4);
//! * [`experiment`] — the month-long driver: daily retraining, 10-minute
//!   report cadence, 20-minute profiling windows, size-matched ad
//!   replacement, per-user CTR bookkeeping and the Figure 6 topic
//!   timelines.

pub mod ad;
pub mod click;
pub mod eavesdropper;
pub mod experiment;
pub mod network;

pub use ad::{Ad, AdDatabase, AdId, CreativeSize, HarvestStats};
pub use click::ClickModel;
pub use eavesdropper::EavesdropperSelector;
pub use experiment::{CtrExperiment, ExperimentConfig, ExperimentResult, ObservedView, UserCtr};
pub use network::{AdNetwork, AdNetworkConfig, ServedAdKind};
