//! Schema validation for the committed benchmark artifacts under
//! `results/`. The bench binaries serialize these by hand-rolled struct;
//! this test pins the contract so a field rename or unit change in the
//! bench code can't silently rot the committed numbers (or the plots
//! and README claims derived from them).

use serde::Deserialize;

#[derive(Deserialize)]
struct ProfilingBench {
    scale: String,
    hardware_threads: usize,
    sessions: usize,
    vocabulary: usize,
    dim: usize,
    n_neighbors: usize,
    seed_loop_sessions_per_sec: f64,
    single_query_sessions_per_sec: f64,
    throughput: Vec<ProfilingRow>,
    best_speedup_at_4_threads: f64,
}

#[derive(Deserialize)]
struct ProfilingRow {
    threads: usize,
    batch_size: usize,
    sessions_per_sec: f64,
    speedup_vs_seed: f64,
}

#[derive(Deserialize)]
struct SkipgramBench {
    scale: String,
    hardware_threads: usize,
    // Presence and type are the contract; the value is machine-dependent.
    #[allow(dead_code)]
    avx2_fma: bool,
    sequences: usize,
    tokens: usize,
    dim: usize,
    throughput: Vec<SkipgramRow>,
    single_thread_kernel_speedup: f64,
    sharding: ShardingBench,
}

#[derive(Deserialize)]
struct SkipgramRow {
    threads: usize,
    kernel: String,
    tokens_per_sec: f64,
    speedup_vs_scalar_1t: f64,
}

#[derive(Deserialize)]
struct ShardingBench {
    skewed_sequences: usize,
    skewed_tokens: usize,
    threads: usize,
    static_makespan_tokens: u64,
    balanced_makespan_tokens: u64,
    simulated_balance_ratio: f64,
    measured_static_tokens_per_sec: f64,
    measured_balanced_tokens_per_sec: f64,
}

fn read(name: &str) -> String {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn bench_profiling_json_matches_schema() {
    let b: ProfilingBench =
        serde_json::from_str(&read("bench_profiling.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.hardware_threads >= 1);
    assert!(b.sessions > 0 && b.vocabulary > 0 && b.dim > 0 && b.n_neighbors > 0);
    assert!(b.seed_loop_sessions_per_sec > 0.0);
    assert!(b.single_query_sessions_per_sec > 0.0);
    assert!(!b.throughput.is_empty());
    for row in &b.throughput {
        assert!(row.threads >= 1);
        assert!(row.batch_size >= 1);
        assert!(row.sessions_per_sec > 0.0, "non-positive throughput");
        assert!(row.speedup_vs_seed > 0.0);
    }
    assert!(b.best_speedup_at_4_threads > 0.0);
    // The headline number must actually come from the 4-thread rows.
    let best4 = b
        .throughput
        .iter()
        .filter(|r| r.threads == 4)
        .map(|r| r.speedup_vs_seed)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (b.best_speedup_at_4_threads - best4).abs() < 1e-9,
        "best_speedup_at_4_threads {} != max over 4-thread rows {best4}",
        b.best_speedup_at_4_threads
    );
}

#[test]
fn bench_skipgram_json_matches_schema() {
    let b: SkipgramBench =
        serde_json::from_str(&read("bench_skipgram.json")).expect("schema drifted");
    assert!(!b.scale.is_empty());
    assert!(b.hardware_threads >= 1);
    assert!(b.sequences > 0 && b.tokens > 0 && b.dim > 0);
    assert!(!b.throughput.is_empty());
    for row in &b.throughput {
        assert!(row.threads >= 1);
        assert!(
            row.kernel == "scalar" || row.kernel == "simd",
            "unknown kernel {:?}",
            row.kernel
        );
        assert!(row.tokens_per_sec > 0.0);
        assert!(row.speedup_vs_scalar_1t > 0.0);
    }
    // The scalar 1-thread row is the speedup baseline by definition.
    let baseline = b
        .throughput
        .iter()
        .find(|r| r.threads == 1 && r.kernel == "scalar")
        .expect("scalar 1-thread baseline row missing");
    assert!((baseline.speedup_vs_scalar_1t - 1.0).abs() < 1e-9);
    assert!(b.single_thread_kernel_speedup > 0.0);

    let s = &b.sharding;
    assert!(s.skewed_sequences > 0 && s.skewed_tokens > 0 && s.threads >= 1);
    assert!(s.static_makespan_tokens > 0 && s.balanced_makespan_tokens > 0);
    assert!(
        s.balanced_makespan_tokens <= s.static_makespan_tokens,
        "balanced sharding must not worsen the simulated makespan"
    );
    assert!(s.simulated_balance_ratio >= 1.0);
    assert!(s.measured_static_tokens_per_sec > 0.0);
    assert!(s.measured_balanced_tokens_per_sec > 0.0);
}
