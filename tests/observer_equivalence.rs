//! The observer channel is faithful: profiling from wire-recovered
//! hostname sequences gives exactly the same result as profiling from the
//! ground-truth trace (when no countermeasure is active), and degrades in
//! the specific ways §7.2/§7.4 of the paper describe.

use hostprof::bridge::{ObservedTrace, ObserverScenario};
use hostprof::profiling::Session;
use hostprof::scenario::{Scenario, ScenarioConfig};

fn small_scenario() -> Scenario {
    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = 2;
    cfg.population.num_users = 10;
    Scenario::generate(&cfg)
}

#[test]
fn observed_sessions_profile_identically_to_ground_truth_sessions() {
    let s = small_scenario();
    let scenario = ObserverScenario::per_user();
    let observed = ObservedTrace::capture(&s.world, &s.trace, &scenario);

    let pipeline = s.pipeline();
    let embeddings = pipeline
        .train_model(&s.daily_hostname_sequences(0))
        .expect("day 0");
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());

    let mut compared = 0usize;
    for user in s.population.users() {
        // Ground-truth session: last 20 minutes of the user's activity.
        let window_truth = s.session_hostnames(user.id, 1);
        if window_truth.is_empty() {
            continue;
        }
        // Observer-side session: same window cut from the wire capture.
        let ip = ObservedTrace::address_of(&scenario, user.id);
        let Some(seq) = observed.sequences.get(&ip) else {
            continue;
        };
        let end = seq
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| *t < 2 * hostprof::synth::trace::DAY_MS)
            .max()
            .unwrap_or(0);
        let start = end.saturating_sub(s.config.pipeline.session_window_ms());
        let window_wire: Vec<&str> = seq
            .iter()
            .filter(|(t, _)| *t > start && *t <= end)
            .map(|(_, h)| h.as_str())
            .collect();

        let sess_truth = Session::from_window(
            window_truth.iter().map(String::as_str),
            Some(pipeline.blocklist()),
        );
        let sess_wire =
            Session::from_window(window_wire.iter().copied(), Some(pipeline.blocklist()));
        assert_eq!(sess_truth, sess_wire, "user {}", user.id);

        let p_truth = profiler.profile(&sess_truth);
        let p_wire = profiler.profile(&sess_wire);
        match (p_truth, p_wire) {
            (Some(a), Some(b)) => {
                assert_eq!(a.categories, b.categories, "user {}", user.id);
                compared += 1;
            }
            (None, None) => {}
            _ => panic!("profile existence must agree for user {}", user.id),
        }
    }
    assert!(compared >= 5, "enough users compared ({compared})");
}

#[test]
fn a_model_trained_on_observed_data_is_usable() {
    let s = small_scenario();
    let observed = ObservedTrace::capture(&s.world, &s.trace, &ObserverScenario::per_user());
    let pipeline = s.pipeline();
    let embeddings = pipeline
        .train_model(&observed.observed_sequences())
        .expect("observed corpus trains");
    // The observed vocabulary covers the same non-blocked hostname set.
    let truth_model = pipeline
        .train_model(&{
            let mut c = s.daily_hostname_sequences(0);
            c.extend(s.daily_hostname_sequences(1));
            c
        })
        .expect("truth corpus trains");
    assert_eq!(embeddings.len(), truth_model.len(), "same vocabulary size");
}

#[test]
fn nat_mixing_degrades_profile_specificity() {
    let s = small_scenario();
    let pipeline = s.pipeline();
    let embeddings = pipeline
        .train_model(&s.daily_hostname_sequences(0))
        .expect("day 0");
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());

    let clean = ObserverScenario::per_user();
    let nat = ObserverScenario::behind_nat(5);
    let obs_clean = ObservedTrace::capture(&s.world, &s.trace, &clean);
    let obs_nat = ObservedTrace::capture(&s.world, &s.trace, &nat);

    // Compare the accuracy of user 0's profile when their traffic is
    // isolated vs mixed with 4 other users.
    let user = &s.population.users()[0];
    let profile_from = |seq: &[(u64, String)]| {
        let hosts: Vec<&str> = seq.iter().map(|(_, h)| h.as_str()).collect();
        let session = Session::from_window(hosts.iter().copied(), Some(pipeline.blocklist()));
        profiler.profile(&session).map(|p| p.categories)
    };
    let ip_clean = ObservedTrace::address_of(&clean, user.id);
    let ip_nat = ObservedTrace::address_of(&nat, user.id);
    let acc_clean = profile_from(&obs_clean.sequences[&ip_clean])
        .map(|c| c.cosine(&user.interests))
        .unwrap_or(0.0);
    let acc_nat = profile_from(&obs_nat.sequences[&ip_nat])
        .map(|c| c.cosine(&user.interests))
        .unwrap_or(0.0);
    // Mixing 5 users can only blur one user's signal (allow tiny slack for
    // coincidentally-aligned flatmates).
    assert!(
        acc_nat <= acc_clean + 0.05,
        "NAT profile ({acc_nat}) should not beat the isolated profile ({acc_clean})"
    );
}
