//! Defense evaluation: degradation curves for the §15 countermeasures.
//!
//! One [`DefenseEvaluator`] owns a generated scenario plus the
//! undefended baseline artifacts; [`DefenseEvaluator::eval_point`] runs
//! a single `(defense, intensity)` through the full pipeline — defended
//! capture → skipgram training on what was observed → kNN profiling of
//! the final day → optional CTR experiment on the observed view — and
//! reports the four curve metrics:
//!
//! * **recovery %** — ground-truth requests whose `(client IP, time,
//!   hostname)` triple the observer recovered, multiset-matched so
//!   injected decoys can't stand in for real observations;
//! * **purity** — k-NN top-topic purity of the trained embedding over
//!   in-world labeled hostnames ([`hostprof_stats::neighbor_purity`]);
//! * **divergence** — per-user `1 − cosine` between the defended
//!   profile and the undefended baseline profile (1.0 when the defense
//!   erases the user's profile entirely);
//! * **CTR gap** — eavesdropper-ad CTR minus ad-network CTR from a
//!   [`CtrExperiment`] whose eavesdropper side reads the observed view.
//!
//! Every identity point (`ech@0`, `dummy@0`, `nat@1`, …) reuses the
//! exact undefended packet stream, and `eval_point` records whether the
//! defended capture came out bit-equal to the baseline — the flag the
//! schema tests and golden replays pin.

use crate::bridge::{ObservedTrace, ObserverScenario};
use crate::scenario::Scenario;
use hostprof_ads::{CtrExperiment, ExperimentConfig, ObservedView};
use hostprof_defense::{Defense, DefensePlan, HostCatalog};
use hostprof_synth::{UserId, World};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// The six defense axes, in report order.
pub const DEFENSE_NAMES: [&str; 6] = ["ech", "dummy", "pad_constant", "pad_adaptive", "nat", "doh"];

/// A defense at a CLI-unit intensity: `ech`/`doh` take adoption in
/// percent (0–100), `dummy`/`pad_adaptive` a mean rate, `pad_constant`
/// a per-event count, `nat` a pool size.
pub fn defense_at(name: &str, value: f64) -> Option<Defense> {
    Some(match name {
        "ech" => Defense::Ech {
            adoption: value / 100.0,
        },
        "dummy" => Defense::Dummy { rate: value },
        "pad_constant" => Defense::PadConstant {
            pad_per_event: value.round().max(0.0) as u32,
        },
        "pad_adaptive" => Defense::PadAdaptive { intensity: value },
        "nat" => Defense::Nat {
            users_per_ip: value.round().max(1.0) as u32,
        },
        "doh" => Defense::Doh {
            adoption: value / 100.0,
        },
        _ => return None,
    })
}

/// The default sweep (CLI units) per defense — identity point first,
/// ≥ 5 points each.
pub fn default_sweep(name: &str) -> Option<Vec<f64>> {
    Some(match name {
        "ech" | "doh" => vec![0.0, 25.0, 50.0, 75.0, 100.0],
        "dummy" | "pad_adaptive" => vec![0.0, 0.5, 1.0, 2.0, 4.0],
        "pad_constant" => vec![0.0, 1.0, 2.0, 4.0, 8.0],
        "nat" => vec![1.0, 2.0, 4.0, 8.0, 16.0],
        _ => return None,
    })
}

/// Popularity catalog of every world hostname (rank 0 = most popular,
/// host-id tiebreak) — the shared ranking all defenses draw from.
pub fn catalog_for_world(world: &World) -> HostCatalog {
    HostCatalog::from_hosts(
        world
            .hosts()
            .iter()
            .map(|h| (h.id.0, h.name.clone(), h.popularity)),
    )
}

/// One point on a degradation curve.
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Sweep intensity in CLI units (percent for `ech`/`doh`).
    pub intensity: f64,
    /// Ground-truth requests recovered on the wire, percent (multiset
    /// `(ip, t, host)` matching — decoys can't inflate it).
    pub recovery_pct: f64,
    /// k-NN top-topic purity of the eavesdropper's embedding.
    pub purity: f64,
    /// Mean per-user `1 − cosine` between defended and baseline
    /// profiles (0 at identity, 1 when profiles are erased).
    pub divergence: f64,
    /// Mean profile accuracy vs ground-truth interests.
    pub mean_accuracy: f64,
    /// Final-day sessions scored (user-weighted, as in §7.2).
    pub sessions_profiled: usize,
    /// Eavesdropper-ad CTR (0 when the CTR stage is skipped).
    pub eaves_ctr: f64,
    /// Ad-network CTR on the same days.
    pub orig_ctr: f64,
    /// `eaves_ctr − orig_ctr`: the attacker's edge; shrinks as the
    /// defense bites.
    pub ctr_gap: f64,
    /// `Some(true)` when this is the defense's identity point and the
    /// defended capture came out bit-equal to the undefended baseline.
    pub identity_bit_equal: Option<bool>,
}

/// A whole swept axis.
#[derive(Debug, Clone, Serialize)]
pub struct DefenseCurve {
    /// Defense name (`ech`, `dummy`, …).
    pub defense: String,
    /// Points in sweep order, identity first.
    pub points: Vec<CurvePoint>,
}

/// Undefended artifacts every point is compared against.
struct Baseline {
    obs: ObservedTrace,
    /// Final-day session profile per client IP.
    profiles: BTreeMap<u32, hostprof_ontology::CategoryVector>,
}

/// Shared evaluation state: scenario, observer vantage, baseline.
pub struct DefenseEvaluator<'a> {
    s: &'a Scenario,
    observer: ObserverScenario,
    catalog: HostCatalog,
    plan_seed: u64,
    /// Run the CTR experiment per point (the expensive stage).
    pub with_ctr: bool,
    /// Worker threads for batched profiling inside the CTR stage.
    pub profile_threads: usize,
    baseline: Baseline,
}

impl<'a> DefenseEvaluator<'a> {
    /// Build the evaluator and its undefended baseline.
    pub fn new(s: &'a Scenario, plan_seed: u64) -> Self {
        let observer = ObserverScenario::per_user();
        let obs = ObservedTrace::capture(&s.world, &s.trace, &observer);
        let profiles = final_day_profiles(s, &obs);
        Self {
            s,
            observer,
            catalog: catalog_for_world(&s.world),
            plan_seed,
            with_ctr: true,
            profile_threads: 4,
            baseline: Baseline { obs, profiles },
        }
    }

    /// The plan for one `(defense name, CLI intensity)` point.
    pub fn plan(&self, name: &str, intensity: f64) -> Option<DefensePlan> {
        let defense = defense_at(name, intensity)?;
        Some(DefensePlan::new(
            defense,
            self.catalog.clone(),
            self.plan_seed,
        ))
    }

    /// Evaluate one sweep point end to end.
    pub fn eval_point(&self, name: &str, intensity: f64) -> Option<CurvePoint> {
        let plan = self.plan(name, intensity)?;
        let s = self.s;
        let obs = ObservedTrace::capture_defended(&s.world, &s.trace, &self.observer, &plan);

        let identity_bit_equal = plan.defense().is_identity().then(|| {
            obs.sequences == self.baseline.obs.sequences
                && obs.observer_stats == self.baseline.obs.observer_stats
        });

        let recovery_pct = self.recovery_pct(&plan, &obs);

        // The eavesdropper trains on everything it observed before the
        // final (evaluation) day.
        let eval_day = (s.trace.days() - 1) as u64;
        let pipeline = s.pipeline();
        let training: Vec<Vec<String>> = obs
            .sequences
            .values()
            .map(|seq| {
                seq.iter()
                    .filter(|(t, _)| *t < eval_day * hostprof_synth::trace::DAY_MS)
                    .map(|(_, h)| h.clone())
                    .collect::<Vec<String>>()
            })
            .filter(|sq: &Vec<String>| sq.len() >= 2)
            .collect();
        let embeddings = pipeline.train_model(&training).ok();

        let purity = embeddings
            .as_ref()
            .map(|e| embedding_purity(&s.world, e))
            .unwrap_or(0.0);

        let defended_profiles = embeddings
            .as_ref()
            .map(|e| {
                let profiler = pipeline.profiler(e, s.world.ontology());
                final_day_profiles_with(s, &obs, &pipeline, &profiler)
            })
            .unwrap_or_default();

        let (divergence, mean_accuracy, sessions_profiled) =
            self.score_profiles(&plan, &defended_profiles);

        let (eaves_ctr, orig_ctr) = if self.with_ctr {
            self.ctr_point(&plan, &obs)
        } else {
            (0.0, 0.0)
        };

        Some(CurvePoint {
            intensity,
            recovery_pct,
            purity,
            divergence,
            mean_accuracy,
            sessions_profiled,
            eaves_ctr,
            orig_ctr,
            ctr_gap: eaves_ctr - orig_ctr,
            identity_bit_equal,
        })
    }

    /// Sweep a whole axis.
    pub fn eval_curve(&self, name: &str, intensities: &[f64]) -> Option<DefenseCurve> {
        let points = intensities
            .iter()
            .map(|&x| self.eval_point(name, x))
            .collect::<Option<Vec<_>>>()?;
        Some(DefenseCurve {
            defense: name.to_string(),
            points,
        })
    }

    /// Multiset `(client IP, t_ms, host id)` recovery: each observation
    /// can redeem at most one ground-truth request with the same triple,
    /// so cover traffic never counts and hidden hostnames always cost.
    fn recovery_pct(&self, plan: &DefensePlan, obs: &ObservedTrace) -> f64 {
        let s = self.s;
        let total = s.trace.requests().len();
        if total == 0 {
            return 0.0;
        }
        let synth = plan.synthesizer(&self.observer.synthesizer);
        let mut gt: HashMap<(u32, u64, u32), u32> = HashMap::with_capacity(total);
        for r in s.trace.requests() {
            let ip = synth.addressing.client_ip(r.user.0);
            *gt.entry((ip, r.t_ms, r.host.0)).or_default() += 1;
        }
        let mut matched = 0usize;
        for (ip, seq) in &obs.sequences {
            for (t, h) in seq {
                let Some(hid) = s.world.host_id_by_name(h) else {
                    continue;
                };
                if let Some(c) = gt.get_mut(&(*ip, *t, hid.0)) {
                    if *c > 0 {
                        *c -= 1;
                        matched += 1;
                    }
                }
            }
        }
        matched as f64 / total as f64 * 100.0
    }

    /// Divergence vs baseline, accuracy vs ground truth, per user.
    fn score_profiles(
        &self,
        plan: &DefensePlan,
        defended: &BTreeMap<u32, hostprof_ontology::CategoryVector>,
    ) -> (f64, f64, usize) {
        let s = self.s;
        let mut div = 0f64;
        let mut div_n = 0usize;
        let mut acc = 0f64;
        let mut acc_n = 0usize;
        for u in s.population.users() {
            let base_ip = ObservedTrace::address_of(&self.observer, u.id);
            let def_ip = ObservedTrace::address_of_defended(&self.observer, plan, u.id);
            match (self.baseline.profiles.get(&base_ip), defended.get(&def_ip)) {
                (Some(b), Some(d)) => {
                    div += (1.0 - b.cosine(d) as f64).max(0.0);
                    div_n += 1;
                    acc += hostprof_core::profile_accuracy(d, &u.interests) as f64;
                    acc_n += 1;
                }
                // The defense erased this user's final-day profile —
                // maximal divergence, no accuracy sample.
                (Some(_), None) => {
                    div += 1.0;
                    div_n += 1;
                }
                (None, _) => {}
            }
        }
        (
            if div_n > 0 { div / div_n as f64 } else { 0.0 },
            if acc_n > 0 { acc / acc_n as f64 } else { 0.0 },
            acc_n,
        )
    }

    /// CTR experiment over the observed view. The seed and every
    /// ground-truth draw are fixed across points, so the gap moves only
    /// with the eavesdropper's degraded inputs.
    fn ctr_point(&self, plan: &DefensePlan, obs: &ObservedTrace) -> (f64, f64) {
        let s = self.s;
        let view = ObservedView {
            timelines: obs.sequences.clone(),
            client_of_user: (0..s.population.len() as u32)
                .map(|u| ObservedTrace::address_of_defended(&self.observer, plan, UserId(u)))
                .collect(),
        };
        let config = ExperimentConfig {
            pipeline: s.config.pipeline.clone(),
            training_days: 2,
            profile_threads: self.profile_threads,
            seed: self.plan_seed ^ 0x0c7_99a9,
            ..ExperimentConfig::default()
        };
        let r = CtrExperiment::new(&s.world, &s.population, &s.trace, &s.ads, config)
            .with_view(&view)
            .run();
        (r.eaves_ctr(), r.orig_ctr())
    }
}

/// k-NN top-topic purity over the in-world labeled tokens of a trained
/// embedding (0.0 when fewer than two labeled tokens survive).
pub fn embedding_purity(world: &World, emb: &hostprof_embed::EmbeddingSet) -> f64 {
    let mut points: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for idx in 0..emb.len() as u32 {
        let token = emb.vocab().token(idx);
        let Some(hid) = world.host_id_by_name(token) else {
            continue;
        };
        let Some(top) = world.host(hid).top_topic else {
            continue;
        };
        points.extend_from_slice(emb.vector_by_index(idx));
        labels.push(top.0 as usize);
    }
    if labels.len() < 2 {
        return 0.0;
    }
    let k = 10.min(labels.len() - 1);
    hostprof_stats::neighbor_purity(&points, emb.dim(), &labels, k)
}

/// Profile each client IP's last session of the final day with the
/// baseline pipeline (train + profile on the given observations).
fn final_day_profiles(
    s: &Scenario,
    obs: &ObservedTrace,
) -> BTreeMap<u32, hostprof_ontology::CategoryVector> {
    let eval_day = (s.trace.days() - 1) as u64;
    let pipeline = s.pipeline();
    let training: Vec<Vec<String>> = obs
        .sequences
        .values()
        .map(|seq| {
            seq.iter()
                .filter(|(t, _)| *t < eval_day * hostprof_synth::trace::DAY_MS)
                .map(|(_, h)| h.clone())
                .collect::<Vec<String>>()
        })
        .filter(|sq: &Vec<String>| sq.len() >= 2)
        .collect();
    let Ok(embeddings) = pipeline.train_model(&training) else {
        return BTreeMap::new();
    };
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());
    final_day_profiles_with(s, obs, &pipeline, &profiler)
}

/// Profile each client IP's last final-day session with a bound
/// profiler (shared by baseline and defended paths so the two sides
/// differ only in their inputs).
fn final_day_profiles_with(
    s: &Scenario,
    obs: &ObservedTrace,
    pipeline: &hostprof_core::Pipeline,
    profiler: &hostprof_core::Profiler<'_>,
) -> BTreeMap<u32, hostprof_ontology::CategoryVector> {
    let eval_day = (s.trace.days() - 1) as u64;
    let window_ms = pipeline.config().session_window_ms();
    let mut out = BTreeMap::new();
    for (ip, seq) in &obs.sequences {
        let Some(&end) = seq
            .iter()
            .map(|(t, _)| t)
            .rfind(|t| **t >= eval_day * hostprof_synth::trace::DAY_MS)
        else {
            continue;
        };
        let start = end.saturating_sub(window_ms);
        let window: Vec<&str> = seq
            .iter()
            .filter(|(t, _)| *t > start && *t <= end)
            .map(|(_, h)| h.as_str())
            .collect();
        let session =
            hostprof_core::Session::from_window(window.iter().copied(), Some(pipeline.blocklist()));
        if let Some(profile) = profiler.profile(&session) {
            out.insert(*ip, profile.categories);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn tiny() -> Scenario {
        let mut cfg = ScenarioConfig::tiny();
        cfg.trace.days = 3;
        cfg.population.num_users = 10;
        Scenario::generate(&cfg)
    }

    #[test]
    fn identity_points_report_bit_equality_and_zero_divergence() {
        let s = tiny();
        let mut ev = DefenseEvaluator::new(&s, 42);
        ev.with_ctr = false;
        for name in DEFENSE_NAMES {
            let identity = default_sweep(name).unwrap()[0];
            let p = ev.eval_point(name, identity).unwrap();
            assert_eq!(p.identity_bit_equal, Some(true), "{name}");
            assert!(p.divergence < 1e-6, "{name}: divergence {}", p.divergence);
        }
    }

    #[test]
    fn ech_sweep_degrades_recovery_monotonically() {
        let s = tiny();
        let mut ev = DefenseEvaluator::new(&s, 42);
        ev.with_ctr = false;
        let curve = ev.eval_curve("ech", &[0.0, 50.0, 100.0]).unwrap();
        let r: Vec<f64> = curve.points.iter().map(|p| p.recovery_pct).collect();
        assert!(r[0] > 99.0, "baseline recovery {}", r[0]);
        assert!(r[1] < r[0] && r[2] <= r[1], "{r:?}");
        assert!(r[2] < 1.0, "full ECH blinds the observer: {}", r[2]);
    }

    #[test]
    fn decoys_never_inflate_recovery() {
        let s = tiny();
        let mut ev = DefenseEvaluator::new(&s, 42);
        ev.with_ctr = false;
        let base = ev.eval_point("dummy", 0.0).unwrap().recovery_pct;
        let heavy = ev.eval_point("dummy", 4.0).unwrap().recovery_pct;
        assert!(
            heavy <= base + 1e-9,
            "decoys inflated recovery: {heavy} > {base}"
        );
    }

    #[test]
    fn unknown_defense_is_rejected() {
        assert!(defense_at("vpn", 1.0).is_none());
        assert!(default_sweep("vpn").is_none());
    }
}
