//! Exact t-SNE (van der Maaten & Hinton, 2008).
//!
//! Figure 4 of the paper projects the 100-dimensional hostname embeddings
//! to 2-D with t-SNE. This is the reference O(n²) algorithm: Gaussian
//! input affinities with per-point bandwidths found by binary search on the
//! target perplexity, Student-t output affinities, gradient descent with
//! early exaggeration, momentum switching and adaptive per-parameter gains —
//! the same recipe as the canonical implementation. At the paper's Figure 4
//! scale (~3 K second-level domains) exact t-SNE is perfectly feasible.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TsneConfig {
    /// Target perplexity of the input affinities.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate (η).
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub early_exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 500,
            learning_rate: 200.0,
            early_exaggeration: 12.0,
            seed: 0x7e5e_0001,
        }
    }
}

/// The t-SNE reducer.
#[derive(Debug, Clone)]
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Create with a config.
    pub fn new(config: TsneConfig) -> Self {
        Self { config }
    }

    /// Embed `n = points.len() / dim` row-major points into 2-D.
    ///
    /// Returns one `(x, y)` per input point.
    ///
    /// # Panics
    /// Panics when `points.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn embed(&self, points: &[f32], dim: usize) -> Vec<(f64, f64)> {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(points.len() % dim, 0, "points must be n × dim");
        let n = points.len() / dim;
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(0.0, 0.0)];
        }

        let p = self.joint_affinities(points, dim, n);
        self.gradient_descent(&p, n)
    }

    /// Symmetrized joint input affinities `P`, row-major n×n.
    fn joint_affinities(&self, points: &[f32], dim: usize, n: usize) -> Vec<f64> {
        // Pairwise squared distances.
        let mut d2 = vec![0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut s = 0f64;
                for k in 0..dim {
                    let diff = (points[i * dim + k] - points[j * dim + k]) as f64;
                    s += diff * diff;
                }
                d2[i * n + j] = s;
                d2[j * n + i] = s;
            }
        }

        // Conditional affinities with per-point bandwidth search.
        let target_entropy = self.config.perplexity.max(1.0).ln();
        let mut p = vec![0f64; n * n];
        for i in 0..n {
            let row = &d2[i * n..(i + 1) * n];
            let mut beta = 1.0f64;
            let (mut beta_lo, mut beta_hi) = (f64::NEG_INFINITY, f64::INFINITY);
            for _ in 0..50 {
                // Entropy and unnormalized affinities at this beta.
                let mut sum = 0f64;
                let mut dsum = 0f64; // Σ p_j * d_j (for entropy)
                for (j, &d) in row.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let pj = (-d * beta).exp();
                    sum += pj;
                    dsum += pj * d;
                }
                if sum <= 0.0 {
                    break;
                }
                let entropy = beta * dsum / sum + sum.ln();
                let diff = entropy - target_entropy;
                if diff.abs() < 1e-5 {
                    break;
                }
                if diff > 0.0 {
                    beta_lo = beta;
                    beta = if beta_hi.is_finite() {
                        (beta + beta_hi) / 2.0
                    } else {
                        beta * 2.0
                    };
                } else {
                    beta_hi = beta;
                    beta = if beta_lo.is_finite() {
                        (beta + beta_lo) / 2.0
                    } else {
                        beta / 2.0
                    };
                }
            }
            let mut sum = 0f64;
            for (j, &d) in row.iter().enumerate() {
                if j != i {
                    let pj = (-d * beta).exp();
                    p[i * n + j] = pj;
                    sum += pj;
                }
            }
            if sum > 0.0 {
                for j in 0..n {
                    p[i * n + j] /= sum;
                }
            }
        }

        // Symmetrize and normalize to a joint distribution.
        let mut joint = vec![0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
            }
            joint[i * n + i] = 1e-12;
        }
        joint
    }

    fn gradient_descent(&self, p: &[f64], n: usize) -> Vec<(f64, f64)> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut y = vec![0f64; n * 2];
        for v in &mut y {
            // Small Gaussian init via Box–Muller.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            *v = 1e-4 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        let mut velocity = vec![0f64; n * 2];
        let mut gains = vec![1f64; n * 2];
        let exag_until = self.config.iterations / 4;
        let mut grad = vec![0f64; n * 2];
        let mut qnum = vec![0f64; n * n];

        for iter in 0..self.config.iterations {
            let exag = if iter < exag_until {
                self.config.early_exaggeration
            } else {
                1.0
            };
            let momentum = if iter < self.config.iterations / 2 {
                0.5
            } else {
                0.8
            };

            // Student-t numerators and their sum.
            let mut z = 0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = y[i * 2] - y[j * 2];
                    let dy = y[i * 2 + 1] - y[j * 2 + 1];
                    let q = 1.0 / (1.0 + dx * dx + dy * dy);
                    qnum[i * n + j] = q;
                    qnum[j * n + i] = q;
                    z += 2.0 * q;
                }
            }
            let z = z.max(1e-12);

            grad.iter_mut().for_each(|g| *g = 0.0);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let q = qnum[i * n + j];
                    let mult = (exag * p[i * n + j] - q / z) * q;
                    grad[i * 2] += 4.0 * mult * (y[i * 2] - y[j * 2]);
                    grad[i * 2 + 1] += 4.0 * mult * (y[i * 2 + 1] - y[j * 2 + 1]);
                }
            }

            // Adaptive gains + momentum update.
            for k in 0..n * 2 {
                let same_sign = grad[k].signum() == velocity[k].signum();
                gains[k] = if same_sign {
                    (gains[k] * 0.8).max(0.01)
                } else {
                    gains[k] + 0.2
                };
                velocity[k] =
                    momentum * velocity[k] - self.config.learning_rate * gains[k] * grad[k];
                y[k] += velocity[k];
            }

            // Re-center.
            let (mut cx, mut cy) = (0f64, 0f64);
            for i in 0..n {
                cx += y[i * 2];
                cy += y[i * 2 + 1];
            }
            cx /= n as f64;
            cy /= n as f64;
            for i in 0..n {
                y[i * 2] -= cx;
                y[i * 2 + 1] -= cy;
            }
        }

        (0..n).map(|i| (y[i * 2], y[i * 2 + 1])).collect()
    }
}

impl Default for Tsne {
    fn default() -> Self {
        Self::new(TsneConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 10-D.
    fn blobs(n_per: usize) -> (Vec<f32>, usize) {
        let dim = 10;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut pts = Vec::with_capacity(2 * n_per * dim);
        for blob in 0..2 {
            for _ in 0..n_per {
                for k in 0..dim {
                    let center = if blob == 0 { 0.0 } else { 8.0 };
                    let jitter: f32 = rng.gen::<f32>() - 0.5;
                    pts.push(center + jitter + k as f32 * 0.0);
                }
            }
        }
        (pts, dim)
    }

    #[test]
    fn separated_blobs_stay_separated_in_2d() {
        let (pts, dim) = blobs(30);
        let cfg = TsneConfig {
            perplexity: 10.0,
            iterations: 300,
            ..Default::default()
        };
        let y = Tsne::new(cfg).embed(&pts, dim);
        assert_eq!(y.len(), 60);
        // Centroid distance between blobs must dominate intra-blob spread.
        let centroid = |r: std::ops::Range<usize>| {
            let n = r.len() as f64;
            let (mut cx, mut cy) = (0.0, 0.0);
            for i in r {
                cx += y[i].0;
                cy += y[i].1;
            }
            (cx / n, cy / n)
        };
        let (ax, ay) = centroid(0..30);
        let (bx, by) = centroid(30..60);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        // Mean intra-blob spread (max would be dominated by one straggler).
        let spread_a = (0..30)
            .map(|i| ((y[i].0 - ax).powi(2) + (y[i].1 - ay).powi(2)).sqrt())
            .sum::<f64>()
            / 30.0;
        let spread_b = (30..60)
            .map(|i| ((y[i].0 - bx).powi(2) + (y[i].1 - by).powi(2)).sqrt())
            .sum::<f64>()
            / 30.0;
        let spread = spread_a.max(spread_b);
        assert!(
            between > spread * 2.0,
            "between {between} vs mean spread {spread}"
        );
    }

    #[test]
    fn output_is_finite_and_centered() {
        let (pts, dim) = blobs(15);
        let y = Tsne::new(TsneConfig {
            iterations: 100,
            perplexity: 5.0,
            ..Default::default()
        })
        .embed(&pts, dim);
        let (mut cx, mut cy) = (0.0, 0.0);
        for (a, b) in &y {
            assert!(a.is_finite() && b.is_finite());
            cx += a;
            cy += b;
        }
        assert!(cx.abs() / (y.len() as f64) < 1e-6);
        assert!(cy.abs() / (y.len() as f64) < 1e-6);
    }

    #[test]
    fn trivial_inputs() {
        let t = Tsne::default();
        assert!(t.embed(&[], 3).is_empty());
        assert_eq!(t.embed(&[1.0, 2.0, 3.0], 3), vec![(0.0, 0.0)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, dim) = blobs(10);
        let cfg = TsneConfig {
            iterations: 50,
            perplexity: 5.0,
            ..Default::default()
        };
        let a = Tsne::new(cfg.clone()).embed(&pts, dim);
        let b = Tsne::new(cfg).embed(&pts, dim);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "n × dim")]
    fn shape_mismatch_panics() {
        let _ = Tsne::default().embed(&[1.0, 2.0, 3.0], 2);
    }
}
