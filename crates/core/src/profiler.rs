//! The session profiler (Eq. 3–4 of the paper).
//!
//! Given trained hostname embeddings and the partial ontology `H_L`, a
//! [`Profiler`] turns a [`Session`] into a category-importance vector:
//!
//! * the session vector is the mean of its hostnames' embeddings
//!   (aggregation function `g`);
//! * the `N` most cosine-similar hostnames `H_{s}` are retrieved
//!   (paper: `N = 1000`);
//! * over `H_s ∪ L` (L = labeled hosts *in* the session), weights are
//!   `α_h = 1` for `h ∈ L` and `α_h = [cos(s, h)]₊` otherwise (Eq. 3);
//! * category importances are the α-weighted mean of the labeled hosts'
//!   category vectors (Eq. 4) — unlabeled neighbors drop out of the sum,
//!   which is exactly how the kNN propagates the sparse ontology to
//!   CDN/API-heavy sessions.
//!
//! The hot path is allocation-light: the labeled-host index is a sorted
//! array probed by binary search, Eq. 4 accumulates into a dense
//! `f32` array indexed by [`CategoryId`] (no hashing), and every buffer
//! lives in a caller-reusable [`ProfileScratch`]. The batched engine in
//! [`crate::batch`] drives the same code with one scratch per worker.

use crate::session::Session;
use hostprof_embed::{EmbeddingSet, IndexConfig, KnnScratch, NnIndex};
use hostprof_ontology::{CategoryId, CategoryVector, Ontology};
use serde::{Deserialize, Serialize};

/// Profiler knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// `N`: how many nearest hostnames to retrieve around the session
    /// vector (paper: 1000).
    pub n_neighbors: usize,
    /// The aggregation function `g` combining hostname vectors into the
    /// session vector. The paper only requires *an* aggregation and uses a
    /// simple one; these variants back the E8 ablations.
    pub aggregation: Aggregation,
    /// Which nearest-neighbor index answers the `H_s` retrieval. Defaults
    /// to the exact scan, so existing configs (and golden replays) are
    /// untouched; IVF trades bounded recall loss for throughput at large
    /// vocabularies.
    #[serde(default)]
    pub index: IndexConfig,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            n_neighbors: 1000,
            aggregation: Aggregation::Mean,
            index: IndexConfig::Exact,
        }
    }
}

/// Variants of the aggregation function `g` (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Unweighted element-wise mean — the paper's implicit choice.
    Mean,
    /// Exponential recency weighting: the i-th most recent hostname gets
    /// weight `0.5^(i / half_life)`, so fresh interests dominate.
    Recency {
        /// Positions per weight halving.
        half_life: usize,
    },
    /// Inverse-frequency weighting: hostname `h` gets weight
    /// `1 / ln(e + count(h))`, discounting the google/facebook-style hosts
    /// that appear in every session.
    InverseFrequency,
}

/// The inferred profile of one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionProfile {
    /// Category importances `c^{s_u^T}`, each in `[0, 1]` (Eq. 4).
    pub categories: CategoryVector,
    /// The aggregated session embedding `s_u^T` (empty when no session
    /// hostname was in vocabulary and the profile fell back to
    /// ontology-only labels).
    pub session_vector: Vec<f32>,
    /// How many session hostnames had ontology labels (`|L|`).
    pub labeled_in_session: usize,
    /// How many labeled neighbors contributed through the embedding.
    pub labeled_neighbors: usize,
}

/// Reusable per-caller working memory for profiling.
///
/// Holds the kNN query/heap scratch and the dense Eq. 4 accumulator.
/// The accumulator is epoch-stamped: `begin` bumps the epoch instead of
/// zeroing the whole array, so resetting between sessions is `O(1)` and
/// only the categories actually touched are read back out.
pub struct ProfileScratch {
    pub(crate) knn: KnnScratch,
    /// Dense Eq. 4 numerator, indexed by `CategoryId::index()`.
    acc: Vec<f32>,
    /// Epoch stamp per slot; a stale stamp means the slot is logically 0.
    stamp: Vec<u32>,
    epoch: u32,
    /// Categories touched this session, in first-touch order.
    touched: Vec<CategoryId>,
    /// Sorted vocab indices of the session's labeled hosts.
    in_session: Vec<u32>,
}

impl ProfileScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self {
            knn: KnnScratch::new(),
            acc: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            touched: Vec::new(),
            in_session: Vec::new(),
        }
    }

    /// Start a new accumulation over category ids `0..bound`.
    fn begin(&mut self, bound: usize) {
        if self.acc.len() < bound {
            self.acc.resize(bound, 0.0);
            self.stamp.resize(bound, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: old stamps could alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }

    /// Fold `alpha * cats` into the numerator.
    #[inline]
    fn add(&mut self, cats: &CategoryVector, alpha: f32) {
        for (c, w) in cats.iter() {
            let i = c.index();
            if i >= self.acc.len() {
                // A category beyond the bound declared to `begin` (e.g. a
                // scratch reused across profilers over different
                // ontologies) grows the accumulator instead of indexing
                // out of bounds.
                self.acc.resize(i + 1, 0.0);
                self.stamp.resize(i + 1, 0);
            }
            if self.stamp[i] != self.epoch {
                self.stamp[i] = self.epoch;
                self.acc[i] = 0.0;
                self.touched.push(c);
            }
            self.acc[i] += alpha * w;
        }
    }

    /// Read the accumulated categories back out, divided by `alpha_sum`.
    fn take(&mut self, alpha_sum: f32) -> CategoryVector {
        CategoryVector::from_pairs(
            self.touched
                .iter()
                .map(|&c| (c, self.acc[c.index()] / alpha_sum))
                .collect(),
        )
    }
}

impl Default for ProfileScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The vocabulary-dependent precomputed state of a profiler, detached
/// from the embeddings it was built against: the sorted labeled-host
/// index, the dense slot table, the Eq. 4 accumulator bound, and the
/// built kNN index. Owning this separately is what lets a versioned
/// model (DESIGN.md §14) publish `{embeddings, prepared}` as one
/// atomic bundle and bind a borrowing [`Profiler`] per serve tick for
/// the cost of three pointer copies — no per-tick rebuild, no
/// self-referential struct.
pub struct PreparedProfiler {
    config: ProfilerConfig,
    /// `(vocab index, categories)` for every labeled in-vocabulary host,
    /// sorted by index (replaces a per-profiler `HashMap`). Category
    /// vectors are cloned out of the ontology so the prepared state
    /// borrows nothing.
    labeled_by_idx: Vec<(u32, CategoryVector)>,
    /// Dense vocab-indexed table: `labeled_slot[idx]` is the position of
    /// `idx` in `labeled_by_idx`, or `u32::MAX`. Turns the per-neighbor
    /// lookup on the kNN result stream into one bounds-checked load.
    labeled_slot: Vec<u32>,
    /// One past the largest `CategoryId` any ontology entry carries —
    /// sizes the dense Eq. 4 accumulator.
    category_bound: usize,
    /// The kNN index answering `H_s` retrievals, built per
    /// `config.index` over the embeddings this state was prepared from.
    index: Box<dyn NnIndex>,
}

impl PreparedProfiler {
    /// Precompute the labeled-host tables and build the kNN index for
    /// `embeddings`. The resulting state is only meaningful when bound
    /// back to the same embeddings (and an ontology carrying the same
    /// labels) via [`Self::bind`].
    pub fn build(embeddings: &EmbeddingSet, ontology: &Ontology, config: ProfilerConfig) -> Self {
        let mut labeled_by_idx = Vec::new();
        let mut category_bound = 0usize;
        for (host, cats) in ontology.iter() {
            if let Some(idx) = embeddings.vocab().get(host) {
                labeled_by_idx.push((idx, cats.clone()));
            }
            for (c, _) in cats.iter() {
                category_bound = category_bound.max(c.index() + 1);
            }
        }
        // Ontology hosts are unique, so vocab indices are too.
        labeled_by_idx.sort_unstable_by_key(|&(idx, _)| idx);
        let mut labeled_slot = vec![u32::MAX; embeddings.len()];
        for (slot, &(idx, _)) in labeled_by_idx.iter().enumerate() {
            labeled_slot[idx as usize] = slot as u32;
        }
        let index = config.index.build(embeddings);
        Self {
            config,
            labeled_by_idx,
            labeled_slot,
            category_bound,
            index,
        }
    }

    /// Re-attach prepared state to the embeddings/ontology it was built
    /// from. Cheap (no allocation, no index rebuild): this is the serve
    /// tick's per-version entry point.
    pub fn bind<'a>(
        &'a self,
        embeddings: &'a EmbeddingSet,
        ontology: &'a Ontology,
    ) -> Profiler<'a> {
        Profiler {
            embeddings,
            ontology,
            prepared: PreparedRef::Shared(self),
        }
    }
}

/// Prepared state a [`Profiler`] runs against: its own, or a shared
/// borrow of a versioned bundle's.
enum PreparedRef<'a> {
    Owned(PreparedProfiler),
    Shared(&'a PreparedProfiler),
}

/// Profiles sessions against one day's embedding model.
pub struct Profiler<'a> {
    embeddings: &'a EmbeddingSet,
    ontology: &'a Ontology,
    prepared: PreparedRef<'a>,
}

impl<'a> Profiler<'a> {
    /// Bind embeddings + ontology. Precomputes the labeled-host index once
    /// so per-session profiling stays cheap.
    pub fn new(
        embeddings: &'a EmbeddingSet,
        ontology: &'a Ontology,
        config: ProfilerConfig,
    ) -> Self {
        Self {
            embeddings,
            ontology,
            prepared: PreparedRef::Owned(PreparedProfiler::build(embeddings, ontology, config)),
        }
    }

    /// The prepared state this profiler runs against.
    #[inline]
    fn prepared(&self) -> &PreparedProfiler {
        match &self.prepared {
            PreparedRef::Owned(p) => p,
            PreparedRef::Shared(p) => p,
        }
    }

    /// The embeddings this profiler queries.
    pub fn embeddings(&self) -> &EmbeddingSet {
        self.embeddings
    }

    /// The configuration this profiler runs with.
    pub fn config(&self) -> &ProfilerConfig {
        &self.prepared().config
    }

    /// The nearest-neighbor index answering this profiler's retrievals.
    pub fn index(&self) -> &dyn NnIndex {
        self.prepared().index.as_ref()
    }

    /// Number of labeled hosts that are also in vocabulary.
    pub fn labeled_in_vocabulary(&self) -> usize {
        self.prepared().labeled_by_idx.len()
    }

    /// Category vector of the labeled host at vocab index `idx`, if any.
    #[inline]
    fn labeled_for(&self, idx: u32) -> Option<&CategoryVector> {
        let prepared = self.prepared();
        let slot = *prepared.labeled_slot.get(idx as usize)?;
        (slot != u32::MAX).then(|| &prepared.labeled_by_idx[slot as usize].1)
    }

    /// Profile a session. Returns `None` only when the session is empty or
    /// carries no signal at all (no hostname in vocabulary *and* none with
    /// an ontology label).
    pub fn profile(&self, session: &Session) -> Option<SessionProfile> {
        self.profile_with_scratch(session, &mut ProfileScratch::new())
    }

    /// [`Self::profile`] with caller-owned scratch, so repeated profiling
    /// reuses the kNN buffers and the dense category accumulator. Output
    /// is identical to [`Self::profile`] — the scratch only recycles
    /// memory, never state.
    pub fn profile_with_scratch(
        &self,
        session: &Session,
        scratch: &mut ProfileScratch,
    ) -> Option<SessionProfile> {
        if session.is_empty() {
            return None;
        }
        let labeled_in_session = self.session_labels(session);
        let session_vector = self.aggregate(session);
        let prepared = self.prepared();
        let neighbors = match &session_vector {
            // H_s: the N nearest hostnames to the session vector.
            Some(sv) => self.embeddings.nearest_to_vector_with_index(
                sv,
                prepared.config.n_neighbors,
                prepared.index.as_ref(),
                &mut scratch.knn,
            ),
            None => Vec::new(),
        };
        self.assemble(&labeled_in_session, session_vector, &neighbors, scratch)
    }

    /// L: labeled hosts in the session (weight 1 regardless of cosine).
    pub(crate) fn session_labels(
        &self,
        session: &Session,
    ) -> Vec<(Option<u32>, &'a CategoryVector)> {
        session
            .iter()
            .filter_map(|h| {
                self.ontology
                    .lookup(h)
                    .map(|cats| (self.embeddings.vocab().get(h), cats))
            })
            .collect()
    }

    /// Eq. 3/4 tail shared by the single-session and batched paths: fold
    /// the kNN neighbor stream and the in-session labels into a profile.
    /// `neighbors` must be the kNN result for `session_vector` (empty when
    /// the session has no vector).
    pub(crate) fn assemble(
        &self,
        labeled_in_session: &[(Option<u32>, &'a CategoryVector)],
        session_vector: Option<Vec<f32>>,
        neighbors: &[(u32, f32)],
        scratch: &mut ProfileScratch,
    ) -> Option<SessionProfile> {
        scratch.in_session.clear();
        scratch
            .in_session
            .extend(labeled_in_session.iter().filter_map(|(idx, _)| *idx));
        scratch.in_session.sort_unstable();

        scratch.begin(self.prepared().category_bound);
        let mut alpha_sum = 0f32;
        let mut labeled_neighbors = 0usize;
        let mut contributions = 0usize;
        for &(idx, sim) in neighbors {
            if scratch.in_session.binary_search(&idx).is_ok() {
                continue; // weighted 1 below, don't double-count
            }
            let Some(cats) = self.labeled_for(idx) else {
                continue;
            };
            let alpha = sim.max(0.0); // [x]₊ of Eq. 3
            if alpha > 0.0 {
                alpha_sum += alpha;
                scratch.add(cats, alpha);
                labeled_neighbors += 1;
                contributions += 1;
            }
        }
        for (_, cats) in labeled_in_session {
            alpha_sum += 1.0;
            scratch.add(cats, 1.0);
            contributions += 1;
        }
        if contributions == 0 {
            return None;
        }

        // Eq. 4: category importance = α-weighted mean.
        let categories = scratch.take(alpha_sum);
        Some(SessionProfile {
            categories,
            session_vector: session_vector.unwrap_or_default(),
            labeled_in_session: labeled_in_session.len(),
            labeled_neighbors,
        })
    }

    /// The aggregation `g`: a weighted element-wise mean of the session
    /// hostnames' vectors (weights per [`Aggregation`]). `None` when no
    /// session hostname is in vocabulary.
    pub(crate) fn aggregate(&self, session: &Session) -> Option<Vec<f32>> {
        let dim = self.embeddings.dim();
        let mut acc = vec![0f32; dim];
        let mut weight_sum = 0f32;
        let n = session.len();
        for (pos, h) in session.iter().enumerate() {
            let Some(idx) = self.embeddings.vocab().get(h) else {
                continue;
            };
            let w = match self.prepared().config.aggregation {
                Aggregation::Mean => 1.0,
                Aggregation::Recency { half_life } => {
                    // Sessions are in first-visit order: the last entry is
                    // the most recent.
                    let age = (n - 1 - pos) as f32;
                    0.5f32.powf(age / half_life.max(1) as f32)
                }
                Aggregation::InverseFrequency => {
                    let count = self.embeddings.vocab().count(idx) as f32;
                    1.0 / (std::f32::consts::E + count).ln()
                }
            };
            for (a, v) in acc.iter_mut().zip(self.embeddings.vector_by_index(idx)) {
                *a += w * v;
            }
            weight_sum += w;
        }
        if weight_sum <= 0.0 {
            return None;
        }
        for a in &mut acc {
            *a /= weight_sum;
        }
        Some(acc)
    }

    /// Baseline: ontology-only profiling (no embeddings) — what previous
    /// work could do, limited by coverage. Used by the E8 ablations.
    pub fn profile_ontology_only(&self, session: &Session) -> Option<SessionProfile> {
        let labeled: Vec<&CategoryVector> = session
            .iter()
            .filter_map(|h| self.ontology.lookup(h))
            .collect();
        if labeled.is_empty() {
            return None;
        }
        let mut scratch = ProfileScratch::new();
        scratch.begin(self.prepared().category_bound);
        for cats in &labeled {
            scratch.add(cats, 1.0);
        }
        Some(SessionProfile {
            categories: scratch.take(labeled.len() as f32),
            session_vector: Vec::new(),
            labeled_in_session: labeled.len(),
            labeled_neighbors: 0,
        })
    }
}

/// Ground-truth validation: cosine between an inferred category profile and
/// the user's true interest vector. Only meaningful in the synthetic
/// setting — the paper had to proxy this with CTR.
pub fn profile_accuracy(profile: &CategoryVector, truth: &CategoryVector) -> f32 {
    profile.cosine(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_embed::Vocab;

    /// Hand-built world: 2-D embeddings with a "travel" axis and a "sport"
    /// axis. travel.com is labeled; travel-api.net is NOT labeled but sits
    /// on the travel axis; sport.com is labeled on the sport axis.
    fn setup() -> (EmbeddingSet, Ontology) {
        let seqs = vec![vec![
            "travel.com",
            "travel-api.net",
            "sport.com",
            "sport-cdn.net",
            "neutral.org",
        ]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("travel.com", [1.0, 0.0]);
        set("travel-api.net", [0.95, 0.05]);
        set("sport.com", [0.0, 1.0]);
        set("sport-cdn.net", [0.05, 0.95]);
        set("neutral.org", [0.5, 0.5]);
        let embeddings = EmbeddingSet::new(2, vocab, vectors);

        let mut ontology = Ontology::new();
        ontology.insert("travel.com", CategoryVector::singleton(CategoryId(10)));
        ontology.insert("sport.com", CategoryVector::singleton(CategoryId(20)));
        (embeddings, ontology)
    }

    #[test]
    fn labeled_session_host_dominates() {
        let (e, o) = setup();
        let p = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                ..Default::default()
            },
        );
        let session = Session::from_window(["travel.com"], None);
        let prof = p.profile(&session).unwrap();
        assert!(prof.categories.get(CategoryId(10)) > prof.categories.get(CategoryId(20)));
        assert_eq!(prof.labeled_in_session, 1);
    }

    #[test]
    fn unlabeled_api_host_inherits_nearby_labels() {
        let (e, o) = setup();
        let p = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                ..Default::default()
            },
        );
        // Session contains ONLY the unlabeled API endpoint: the kNN must
        // propagate travel.com's label (the paper's api.bkng.azure.com
        // example).
        let session = Session::from_window(["travel-api.net"], None);
        let prof = p.profile(&session).unwrap();
        assert_eq!(prof.labeled_in_session, 0);
        assert!(prof.labeled_neighbors >= 1);
        assert!(
            prof.categories.get(CategoryId(10)) > prof.categories.get(CategoryId(20)),
            "travel label propagated: {:?}",
            prof.categories
        );
        // The ontology-only baseline fails on this exact session.
        assert!(p.profile_ontology_only(&session).is_none());
    }

    #[test]
    fn mixed_session_blends_categories() {
        let (e, o) = setup();
        let p = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                ..Default::default()
            },
        );
        let session = Session::from_window(["travel.com", "sport.com"], None);
        let prof = p.profile(&session).unwrap();
        let travel = prof.categories.get(CategoryId(10));
        let sport = prof.categories.get(CategoryId(20));
        assert!(travel > 0.0 && sport > 0.0);
        assert!(
            (travel - sport).abs() < 0.3,
            "roughly balanced: {travel} vs {sport}"
        );
    }

    #[test]
    fn importances_stay_in_unit_interval() {
        let (e, o) = setup();
        let p = Profiler::new(&e, &o, ProfilerConfig::default());
        let session = Session::from_window(["travel.com", "travel-api.net", "sport-cdn.net"], None);
        let prof = p.profile(&session).unwrap();
        for (_, w) in prof.categories.iter() {
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn out_of_vocabulary_unlabeled_session_yields_none() {
        let (e, o) = setup();
        let p = Profiler::new(&e, &o, ProfilerConfig::default());
        let session = Session::from_window(["never-seen.example"], None);
        assert!(p.profile(&session).is_none());
        assert!(p.profile(&Session::default()).is_none());
    }

    #[test]
    fn out_of_vocabulary_but_labeled_host_still_profiles() {
        let (e, mut o) = setup();
        o.insert(
            "fresh-labeled.example",
            CategoryVector::singleton(CategoryId(7)),
        );
        let p = Profiler::new(&e, &o, ProfilerConfig::default());
        let session = Session::from_window(["fresh-labeled.example"], None);
        let prof = p.profile(&session).unwrap();
        assert!(prof.categories.get(CategoryId(7)) > 0.9);
        assert!(prof.session_vector.is_empty(), "no embedding available");
    }

    #[test]
    fn recency_aggregation_tilts_toward_recent_hosts() {
        let (e, o) = setup();
        let cfg_mean = ProfilerConfig {
            n_neighbors: 5,
            aggregation: Aggregation::Mean,
            ..Default::default()
        };
        let cfg_recent = ProfilerConfig {
            n_neighbors: 5,
            aggregation: Aggregation::Recency { half_life: 1 },
            ..Default::default()
        };
        // travel.com is visited FIRST, sport.com most recently.
        let session = Session::from_window(["travel.com", "sport.com"], None);
        let mean = Profiler::new(&e, &o, cfg_mean).profile(&session).unwrap();
        let recent = Profiler::new(&e, &o, cfg_recent).profile(&session).unwrap();
        // Recency weighting pushes the session vector toward the sport
        // axis (dimension 1 in the toy embedding).
        assert!(
            recent.session_vector[1] > mean.session_vector[1] + 0.1,
            "recency {:?} vs mean {:?}",
            recent.session_vector,
            mean.session_vector
        );
    }

    #[test]
    fn inverse_frequency_discounts_popular_hosts() {
        // Build a vocabulary where travel.com is 10× more frequent.
        let mut seq = vec!["travel.com"; 10];
        seq.push("sport.com");
        let vocab = hostprof_embed::Vocab::build(vec![seq], 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let ti = vocab.get("travel.com").unwrap() as usize;
        let si = vocab.get("sport.com").unwrap() as usize;
        vectors[ti * 2] = 1.0;
        vectors[si * 2 + 1] = 1.0;
        let e = EmbeddingSet::new(2, vocab, vectors);
        let mut o = Ontology::new();
        o.insert("travel.com", CategoryVector::singleton(CategoryId(10)));
        o.insert("sport.com", CategoryVector::singleton(CategoryId(20)));

        let session = Session::from_window(["travel.com", "sport.com"], None);
        let mean = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                aggregation: Aggregation::Mean,
                ..Default::default()
            },
        )
        .profile(&session)
        .unwrap();
        let idf = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                aggregation: Aggregation::InverseFrequency,
                ..Default::default()
            },
        )
        .profile(&session)
        .unwrap();
        // Under IDF the rare sport.com pulls harder than the frequent
        // travel.com.
        assert!(idf.session_vector[1] > idf.session_vector[0]);
        assert!(
            idf.session_vector[1] > mean.session_vector[1] + 0.05,
            "idf {:?} vs mean {:?}",
            idf.session_vector,
            mean.session_vector
        );
    }

    #[test]
    fn profile_accuracy_is_cosine() {
        let a = CategoryVector::singleton(CategoryId(1));
        let b = CategoryVector::singleton(CategoryId(1));
        let c = CategoryVector::singleton(CategoryId(2));
        assert!((profile_accuracy(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(profile_accuracy(&a, &c), 0.0);
    }

    #[test]
    fn labeled_in_vocabulary_counts_intersection() {
        let (e, o) = setup();
        let p = Profiler::new(&e, &o, ProfilerConfig::default());
        assert_eq!(p.labeled_in_vocabulary(), 2);
    }

    #[test]
    fn scratch_reuse_never_leaks_state_across_sessions() {
        let (e, o) = setup();
        let p = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                ..Default::default()
            },
        );
        let sessions = [
            Session::from_window(["travel.com"], None),
            Session::from_window(["sport.com", "sport-cdn.net"], None),
            Session::from_window(["never-seen.example"], None),
            Session::from_window(["travel-api.net", "neutral.org"], None),
        ];
        let mut scratch = ProfileScratch::new();
        for session in &sessions {
            let fresh = p.profile(session);
            let reused = p.profile_with_scratch(session, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn scratch_add_grows_beyond_declared_bound() {
        // Regression: `add` used to index `stamp[i]` directly and panic
        // when a category id exceeded the bound handed to `begin`.
        let mut s = ProfileScratch::new();
        s.begin(2);
        s.add(&CategoryVector::singleton(CategoryId(500)), 1.0);
        let v = s.take(1.0);
        assert!(v.get(CategoryId(500)) > 0.99);
    }

    #[test]
    fn ivf_exhaustive_index_profiles_identically() {
        let (e, o) = setup();
        let base = ProfilerConfig {
            n_neighbors: 5,
            ..Default::default()
        };
        let exact = Profiler::new(&e, &o, base.clone());
        assert_eq!(exact.index().name(), "exact");
        let ivf = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                index: IndexConfig::Ivf {
                    nlists: 3,
                    nprobe: 3,
                    seed: 1,
                },
                ..base
            },
        );
        assert_eq!(ivf.index().name(), "ivf");
        let sessions = [
            Session::from_window(["travel.com"], None),
            Session::from_window(["travel-api.net", "neutral.org"], None),
            Session::from_window(["sport.com", "sport-cdn.net"], None),
            Session::from_window(["never-seen.example"], None),
        ];
        // Exhaustive probing scans every non-zero row with the same kernel
        // as the exact path, so the profiles must be equal — including
        // their float bits, via PartialEq on the category vectors.
        for session in &sessions {
            assert_eq!(exact.profile(session), ivf.profile(session));
        }
    }

    #[test]
    fn index_config_survives_profiler_config_serde() {
        let config = ProfilerConfig {
            n_neighbors: 7,
            index: IndexConfig::Ivf {
                nlists: 32,
                nprobe: 4,
                seed: 99,
            },
            ..Default::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: ProfilerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.index, config.index);
        // A config serialized before the field existed still deserializes,
        // defaulting to the exact scan.
        let legacy: ProfilerConfig =
            serde_json::from_str(r#"{"n_neighbors":3,"aggregation":"Mean"}"#).unwrap();
        assert_eq!(legacy.index, IndexConfig::Exact);
    }

    #[test]
    fn epoch_wraparound_clears_stale_stamps() {
        let (e, o) = setup();
        let p = Profiler::new(
            &e,
            &o,
            ProfilerConfig {
                n_neighbors: 5,
                ..Default::default()
            },
        );
        let session = Session::from_window(["travel.com", "sport.com"], None);
        let mut scratch = ProfileScratch::new();
        let baseline = p.profile(&session).unwrap();
        // Force the epoch to the wrap boundary mid-stream.
        let first = p.profile_with_scratch(&session, &mut scratch).unwrap();
        scratch.epoch = u32::MAX;
        let wrapped = p.profile_with_scratch(&session, &mut scratch).unwrap();
        assert_eq!(baseline, first);
        assert_eq!(baseline, wrapped);
    }
}
