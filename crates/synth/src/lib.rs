//! # hostprof-synth
//!
//! Synthetic web + user population + browsing-trace generator.
//!
//! The paper *User Profiling by Network Observers* (CoNEXT '21) evaluated on
//! proprietary traces from 1329 real users collected by a Chrome extension
//! over several months — data we cannot obtain. This crate is the documented
//! substitution (see `DESIGN.md` §2): a generative world model that
//! reproduces the statistical structure the profiling algorithm exploits:
//!
//! * a hostname universe of content **sites**, **CDNs**, **API endpoints**,
//!   **trackers/ad servers** and a small set of ultra-popular **core** hosts
//!   (the google.com / facebook.com analogues);
//! * ground-truth category vectors per host (sites get their topics; CDNs
//!   and APIs inherit the mix of the sites that embed them; trackers carry
//!   no interest signal);
//! * a partial-coverage ontology (`H_L`) biased toward popular sites —
//!   CDN/API hosts are essentially never labeled, reproducing the paper's
//!   "67 % of hostnames return an error page when crawled" and "Adwords
//!   covers only 10.6 %" observations;
//! * users with Dirichlet-sampled interest profiles and diurnal,
//!   topic-persistent browsing sessions;
//! * traces: time-stamped `(user, host)` request sequences where visiting a
//!   site also fires its CDN/API/tracker dependencies — this co-request
//!   structure is exactly what the SKIPGRAM profiler learns from.
//!
//! Everything is deterministic given a seed.

pub mod config;
pub mod ids;
pub mod lane;
pub mod names;
pub mod sampling;
pub mod stream;
pub mod trace;
pub mod user;
pub mod world;

pub use config::{PopulationConfig, TraceConfig, WorldConfig};
pub use ids::{HostId, UserId};
pub use lane::{for_each_user_lane, generate_columnar, world_interner, MaterializedAccess};
pub use stream::{StreamConfig, TraceStream};
pub use trace::{Request, Trace, TraceStats};
pub use user::{Population, UserProfile};
pub use world::{Host, HostKind, World};
