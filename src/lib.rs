//! # hostprof
//!
//! A full reproduction of *User Profiling by Network Observers*
//! (Gonzalez et al., CoNEXT 2021) as a Rust workspace, built on synthetic
//! substitutes for the paper's proprietary inputs (see `DESIGN.md`).
//!
//! The pipeline, end to end:
//!
//! ```text
//! synthetic web + users  ──►  browsing trace  ──►  wire packets (TLS/QUIC/DNS)
//!        (hostprof-synth)        (hostprof-synth)        (hostprof-net)
//!                                                            │ passive SNI observer
//!                                                            ▼
//!                       per-user hostname sequences ──► SKIPGRAM embeddings
//!                                                          (hostprof-embed)
//!                                                            │ Eq. 3–4
//!                                                            ▼
//!            ads + clicks + CTR  ◄──  session category profiles
//!              (hostprof-ads)             (hostprof-core)
//! ```
//!
//! This facade crate re-exports the sub-crates, bundles them into runnable
//! [`scenario::Scenario`]s, and provides the [`bridge`] that drives the
//! byte-level network observer from a synthetic trace.
//!
//! # Quickstart
//!
//! ```
//! use hostprof::scenario::{Scenario, ScenarioConfig};
//! use hostprof::profiling::Session;
//!
//! // A miniature world, population and 2-day trace.
//! let s = Scenario::generate(&ScenarioConfig::tiny());
//! // Train a model on day 0 and profile a session from day 1.
//! let pipeline = s.pipeline();
//! let embeddings = pipeline
//!     .train_model(&s.daily_hostname_sequences(0))
//!     .expect("day 0 has traffic");
//! let profiler = pipeline.profiler(&embeddings, s.world.ontology());
//! let user = s.population.users()[0].id;
//! let window = s.session_hostnames(user, 1);
//! let session = Session::from_window(
//!     window.iter().map(String::as_str),
//!     Some(pipeline.blocklist()),
//! );
//! if let Some(profile) = profiler.profile(&session) {
//!     assert!(!profile.categories.is_empty());
//! }
//! ```

pub use hostprof_ads as ads;
pub use hostprof_core as profiling;
pub use hostprof_defense as defense;
pub use hostprof_embed as embed;
pub use hostprof_net as net;
pub use hostprof_ontology as ontology;
pub use hostprof_stats as stats;
pub use hostprof_synth as synth;

pub mod bridge;
pub mod defend;
pub mod replay;
pub mod scenario;
pub mod serving;
pub mod storage;

pub use bridge::{ObservedTrace, ObserverScenario};
pub use defend::{CurvePoint, DefenseCurve, DefenseEvaluator};
pub use replay::{ReplayOptions, ReplaySnapshot};
pub use scenario::{Scenario, ScenarioConfig};
pub use serving::{run_live, LiveRunConfig, LiveRunReport};
pub use storage::{load_model, save_model, StorageError};
