//! Byte-cursor helpers shared by the codecs.
//!
//! [`Reader`] is a bounds-checked, panic-free cursor over a byte slice;
//! [`Writer`] wraps a `Vec<u8>` with big-endian put helpers and deferred
//! length back-patching. Both are internal to the crate.

use crate::error::ParseError;

/// FNV-1a over a byte string — the crate's deterministic, dependency-free
/// hash for deriving reproducible wire artifacts (client randoms, server
/// addresses) from hostnames.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A bounds-checked cursor over `&[u8]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.remaining() < n {
            return Err(ParseError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ParseError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u24(&mut self) -> Result<u32, ParseError> {
        let b = self.take(3)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ParseError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Split off a child reader over the next `n` bytes.
    pub(crate) fn sub(&mut self, n: usize) -> Result<Reader<'a>, ParseError> {
        Ok(Reader::new(self.take(n)?))
    }
}

/// A big-endian byte builder.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Kept for codec symmetry with `Reader::u24` (production encoders use
    /// `reserve_len(3)` + `patch_len` instead).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn put_u24(&mut self, v: u32) {
        debug_assert!(v < 1 << 24);
        self.buf.extend_from_slice(&v.to_be_bytes()[1..]);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Reserve a length field of `width` bytes (1, 2 or 3); returns a
    /// marker to pass to [`Writer::patch_len`].
    pub(crate) fn reserve_len(&mut self, width: usize) -> LenMarker {
        let at = self.buf.len();
        self.buf.extend(std::iter::repeat_n(0, width));
        LenMarker { at, width }
    }

    /// Back-patch a reserved length field with the number of bytes written
    /// since the reservation.
    pub(crate) fn patch_len(&mut self, m: LenMarker) {
        let len = self.buf.len() - m.at - m.width;
        match m.width {
            1 => {
                debug_assert!(len < 1 << 8);
                self.buf[m.at] = len as u8;
            }
            2 => {
                debug_assert!(len < 1 << 16);
                self.buf[m.at..m.at + 2].copy_from_slice(&(len as u16).to_be_bytes());
            }
            3 => {
                debug_assert!(len < 1 << 24);
                self.buf[m.at..m.at + 3].copy_from_slice(&(len as u32).to_be_bytes()[1..]);
            }
            _ => unreachable!("unsupported length width"),
        }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Kept for codec symmetry; encoders currently track lengths on the
    /// produced `Vec<u8>` instead.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }
}

/// Marker returned by [`Writer::reserve_len`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct LenMarker {
    at: usize,
    width: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_roundtrips_integers() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u24(0x030405);
        w.put_u32(0x06070809);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x0102);
        assert_eq!(r.u24().unwrap(), 0x030405);
        assert_eq!(r.u32().unwrap(), 0x06070809);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_errors_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(ParseError::Truncated));
        // Failed read consumes nothing.
        assert_eq!(r.u16().unwrap(), 0x0102);
    }

    #[test]
    fn sub_reader_is_bounded() {
        let buf = [1, 2, 3, 4];
        let mut r = Reader::new(&buf);
        let mut s = r.sub(2).unwrap();
        assert_eq!(s.u16().unwrap(), 0x0102);
        assert_eq!(s.u8(), Err(ParseError::Truncated));
        assert_eq!(r.u16().unwrap(), 0x0304);
    }

    #[test]
    fn patch_len_backfills_all_widths() {
        let mut w = Writer::new();
        let m1 = w.reserve_len(1);
        w.put_bytes(b"abc");
        w.patch_len(m1);
        let m2 = w.reserve_len(2);
        w.put_bytes(b"de");
        w.patch_len(m2);
        let m3 = w.reserve_len(3);
        w.patch_len(m3);
        let b = w.into_bytes();
        assert_eq!(b[0], 3);
        assert_eq!(&b[1..4], b"abc");
        assert_eq!(u16::from_be_bytes([b[4], b[5]]), 2);
        assert_eq!(&b[6..8], b"de");
        assert_eq!(&b[8..11], &[0, 0, 0]);
    }
}
