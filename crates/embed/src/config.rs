//! Training hyperparameters.

use serde::{Deserialize, Serialize};

/// Which inner-loop kernel [`crate::SkipGram`] trains with.
///
/// `Auto` (the default) takes the fused SIMD path — AVX2+FMA when the CPU
/// has it, the portable unrolled fallback otherwise. `Scalar` forces the
/// reference loop with strict sequential float order; paired with
/// `threads = 1` it is the bit-determinism contract the test-suite pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum KernelChoice {
    /// Pick the best available kernel.
    #[default]
    Auto,
    /// The reference scalar loop.
    Scalar,
    /// The fused SIMD kernels (portable fallback off AVX2 hardware).
    Simd,
}

impl std::str::FromStr for KernelChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Self::Auto),
            "scalar" => Ok(Self::Scalar),
            "simd" => Ok(Self::Simd),
            other => Err(format!("unknown kernel '{other}' (auto|scalar|simd)")),
        }
    }
}

impl std::str::FromStr for Sharding {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "static" => Ok(Self::Static),
            "balanced" => Ok(Self::Balanced),
            other => Err(format!("unknown sharding '{other}' (static|balanced)")),
        }
    }
}

/// How sequences are scheduled across Hogwild workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Sharding {
    /// Worker `tid` owns every n-th sequence. Skewed sequence lengths
    /// idle workers; kept for A/B measurement.
    Static,
    /// Token-count-balanced contiguous chunks claimed through an atomic
    /// work-stealing cursor (the default).
    #[default]
    Balanced,
}

/// SKIPGRAM hyperparameters. [`SkipGramConfig::default`] matches the
/// paper's Section 5.4 choice of "the default hyperparameter values of the
/// popular implementation GENSIM": `d = 100`, window `2m+1 = 5`, `K = 5`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Half-window `m`; the full window is `2m + 1`.
    pub window: usize,
    /// Negative samples `K` per (center, context) pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to ~0 over training).
    pub learning_rate: f32,
    /// Tokens seen fewer times than this are dropped from the vocabulary.
    pub min_count: u64,
    /// Frequent-token subsampling threshold (gensim `sample`); 0 disables.
    pub subsample: f64,
    /// Worker threads. 1 → bit-deterministic SGD; >1 → Hogwild.
    pub threads: usize,
    /// RNG seed (initialization and sampling).
    pub seed: u64,
    /// Inner-loop kernel (`auto` | `scalar` | `simd`).
    #[serde(default)]
    pub kernel: KernelChoice,
    /// Worker scheduling strategy (`static` | `balanced`).
    #[serde(default)]
    pub sharding: Sharding,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self {
            dim: 100,
            window: 2,
            negatives: 5,
            epochs: 5,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 1e-3,
            threads: 1,
            seed: 0x5eed_e4be,
            kernel: KernelChoice::Auto,
            sharding: Sharding::Balanced,
        }
    }
}

impl SkipGramConfig {
    /// A tiny configuration for fast unit tests.
    ///
    /// Subsampling is disabled: in a toy corpus every token exceeds the
    /// gensim `1e-3` frequency threshold, so the default would discard
    /// most of the training data.
    pub fn tiny() -> Self {
        Self {
            dim: 16,
            epochs: 25,
            subsample: 0.0,
            ..Self::default()
        }
    }

    /// Validate parameter sanity; called by the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.epochs == 0 {
            return Err("epochs must be positive".into());
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning_rate must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SkipGramConfig::default();
        assert_eq!(c.dim, 100);
        assert_eq!(c.window, 2, "2m+1 = 5 → m = 2");
        assert_eq!(c.negatives, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kernel_and_sharding_parse_and_default() {
        assert_eq!("auto".parse::<KernelChoice>(), Ok(KernelChoice::Auto));
        assert_eq!("scalar".parse::<KernelChoice>(), Ok(KernelChoice::Scalar));
        assert_eq!("simd".parse::<KernelChoice>(), Ok(KernelChoice::Simd));
        assert!("avx512".parse::<KernelChoice>().is_err());
        assert_eq!("static".parse::<Sharding>(), Ok(Sharding::Static));
        assert_eq!("balanced".parse::<Sharding>(), Ok(Sharding::Balanced));
        assert!("dynamic".parse::<Sharding>().is_err());
        let c = SkipGramConfig::default();
        assert_eq!(c.kernel, KernelChoice::Auto);
        assert_eq!(c.sharding, Sharding::Balanced);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        for bad in [
            SkipGramConfig {
                dim: 0,
                ..Default::default()
            },
            SkipGramConfig {
                window: 0,
                ..Default::default()
            },
            SkipGramConfig {
                epochs: 0,
                ..Default::default()
            },
            SkipGramConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
            SkipGramConfig {
                threads: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }
}
