//! The wire-level vantage point: what a passive eavesdropper actually sees.
//!
//! Lowers a synthetic browsing trace onto the wire (TLS ClientHellos over
//! TCP, QUIC Initials, optionally DNS), runs the passive SNI observer over
//! the packets, and shows how three deployment realities from the paper's
//! §7.2/§7.4 change what the observer learns:
//!
//! * one IP per user (WiFi / mobile provider) — perfect sequences;
//! * NAT (landline ISP) — users collapse into shared sequences;
//! * ECH adoption — hostnames disappear from the handshake.
//!
//! ```text
//! cargo run --release --example sni_observer
//! ```

use hostprof::bridge::{ObservedTrace, ObserverScenario};
use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof::synth::UserId;

fn main() {
    println!("hostprof sni_observer — the eavesdropper's packet-level view\n");

    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = 1;
    cfg.population.num_users = 12;
    let s = Scenario::generate(&cfg);
    println!(
        "trace: {} requests from {} users\n",
        s.trace.requests().len(),
        s.population.len()
    );

    // --- Vantage point 1: per-user addressing -------------------------
    let clean = ObserverScenario::per_user();
    let obs = ObservedTrace::capture(&s.world, &s.trace, &clean);
    println!("[1] per-user IPs (WiFi/mobile vantage point)");
    println!("    clients seen:        {}", obs.sequences.len());
    println!("    fidelity:            {:.1}%", obs.fidelity() * 100.0);
    println!(
        "    TLS SNI / QUIC SNI:  {} / {}",
        obs.observer_stats.tls_sni, obs.observer_stats.quic_sni
    );
    let ip = ObservedTrace::address_of(&clean, UserId(0));
    let seq = obs.client_hostnames(ip);
    println!(
        "    user u0's first hostnames: {}",
        seq.iter().take(5).cloned().collect::<Vec<_>>().join(", ")
    );

    // --- Vantage point 2: NAT ------------------------------------------
    let nat = ObserverScenario::behind_nat(4);
    let obs_nat = ObservedTrace::capture(&s.world, &s.trace, &nat);
    println!("\n[2] 4 users behind each NAT (landline ISP vantage point)");
    println!(
        "    clients seen:        {} (was {})",
        obs_nat.sequences.len(),
        obs.sequences.len()
    );
    println!(
        "    fidelity:            {:.1}% — nothing lost, but sequences mix users,",
        obs_nat.fidelity() * 100.0
    );
    println!("    which degrades per-user profiles (§7.2 of the paper)");

    // --- Vantage point 3: ECH adoption ----------------------------------
    println!("\n[3] encrypted ClientHello adoption (§7.4)");
    for frac in [0.0, 0.5, 1.0] {
        let ech = ObserverScenario::with_ech(frac);
        let o = ObservedTrace::capture(&s.world, &s.trace, &ech);
        println!(
            "    ECH on {:>3.0}% of connections → observer recovers {:>5.1}% of hostnames",
            frac * 100.0,
            o.fidelity() * 100.0
        );
    }

    // --- DNS harvesting --------------------------------------------------
    let mut dns = ObserverScenario::per_user();
    dns.synthesizer.dns_fraction = 1.0;
    dns.harvest_dns = true;
    let o = ObservedTrace::capture(&s.world, &s.trace, &dns);
    println!("\n[4] a DNS-provider vantage point (plaintext queries, §7.2)");
    println!(
        "    DNS names harvested: {} (plus {} TLS + {} QUIC handshakes)",
        o.observer_stats.dns_names, o.observer_stats.tls_sni, o.observer_stats.quic_sni
    );
    println!(
        "    flow table: {} flows created over {} packets",
        o.flow_stats.flows_created, o.flow_stats.packets
    );
}
