//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

/// Arithmetic mean; 0 for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1); 0 for n < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics; `None` for an empty sample.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Summarize a sample; `None` when empty.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n: xs.len(),
        mean: mean(xs),
        std_dev: std_dev(xs),
        min,
        median: percentile(xs, 50.0).expect("non-empty"),
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert!((percentile(&xs, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), None);
        assert!(summarize(&[]).is_none());
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let xs = [3.0, 1.0, 2.0];
        let s = summarize(&xs).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(percentile(&a, 75.0), percentile(&b, 75.0));
    }
}
