//! Quickstart: profile a user from hostnames alone.
//!
//! Generates a miniature world, trains hostname embeddings on simulated
//! browsing, profiles one user's last session, and compares the inferred
//! interest categories against the synthetic ground truth the paper never
//! had access to.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hostprof::profiling::{profile_accuracy, Session};
use hostprof::scenario::{Scenario, ScenarioConfig};

fn main() {
    println!("hostprof quickstart — user profiling by a network observer\n");

    // 1. A miniature synthetic web + population + 6-day browsing trace.
    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = 6;
    let scenario = Scenario::generate(&cfg);
    println!(
        "world: {} hostnames ({} labeled by the ontology), {} users, {} requests",
        scenario.world.num_hosts(),
        scenario.world.ontology().len(),
        scenario.population.len(),
        scenario.trace.requests().len()
    );

    // 2. Train SKIPGRAM embeddings on the first five days (the paper
    //    retrains daily on a configurable window of history).
    let pipeline = scenario.pipeline();
    let mut corpus = Vec::new();
    for day in 0..5 {
        corpus.extend(scenario.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("trace has traffic");
    println!(
        "trained {}-d embeddings for {} hostnames\n",
        embeddings.dim(),
        embeddings.len()
    );

    // 3. Profile every user's last day-5 session and score against ground
    //    truth (the validation signal the paper had to proxy with CTR).
    let profiler = pipeline.profiler(&embeddings, scenario.world.ontology());
    let hierarchy = scenario.world.hierarchy();
    let mut scored: Vec<(f32, hostprof::synth::UserId, Session, _)> = Vec::new();
    for user in scenario.population.users() {
        let window = scenario.session_hostnames(user.id, 5);
        if window.is_empty() {
            continue;
        }
        let session = Session::from_window(
            window.iter().map(String::as_str),
            Some(pipeline.blocklist()),
        );
        let Some(profile) = profiler.profile(&session) else {
            continue;
        };
        let acc = profile_accuracy(&profile.categories, &user.interests);
        scored.push((acc, user.id, session, profile));
    }
    let mean = scored.iter().map(|(a, ..)| *a as f64).sum::<f64>() / scored.len() as f64;
    println!(
        "profiled {} users; mean profile ↔ truth cosine: {mean:.3}",
        scored.len()
    );

    // Show the sharpest profile in detail. Like the paper's Figure 3
    // observation, every profile also carries a shared background of
    // "core" categories (everyone visits the google/facebook analogues).
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let (acc, uid, session, profile) = &scored[0];
    let user = scenario.population.user(*uid);
    println!(
        "\nbest-profiled user {} — session of {} hostnames, e.g. {}",
        uid,
        session.len(),
        session.iter().take(4).collect::<Vec<_>>().join(", ")
    );
    let by_weight = |v: &hostprof::ontology::CategoryVector| {
        let mut pairs: Vec<_> = v.top_k(5).iter().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        pairs
    };
    println!("  inferred top categories:");
    for (cat, w) in by_weight(&profile.categories) {
        println!("    {:<44} {w:.2}", hierarchy.category_name(cat));
    }
    println!("  ground-truth top interests:");
    for (cat, w) in by_weight(&user.interests) {
        println!("    {:<44} {w:.2}", hierarchy.category_name(cat));
    }
    println!("  profile ↔ truth cosine: {acc:.3}");

    println!("\ndone — see examples/ad_campaign.rs for the full CTR experiment");
}
