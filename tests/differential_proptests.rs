//! Differential property tests: 500 seeded cases per property, oracle
//! vs production. The vendored proptest crate has no failure
//! persistence, so this suite rolls its own: every case is derived from
//! a printable 16-hex-digit seed, failures panic with that seed, and
//! `tests/regressions/differential_proptests.txt` holds previously
//! failing seeds (`cc <seed> # note` lines) that are replayed *first*
//! on every run.

use hostprof::embed::{EmbeddingSet, Vocab};
use hostprof::ontology::{CategoryId, CategoryVector, Ontology};
use hostprof::profiling::{Profiler, ProfilerConfig, Session};
use hostprof::synth::{
    Population, PopulationConfig, Trace, TraceConfig, UserId, World, WorldConfig,
};
use hostprof_oracle::{knn, profile, window};

const CASES: usize = 500;
const DAY_MS: u64 = 86_400_000;

/// splitmix64: the per-case parameter stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Case seed `i` of a property's deterministic 500-seed schedule.
fn case_seed(property: u64, i: usize) -> u64 {
    let mut s = property
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64);
    splitmix(&mut s)
}

fn unit_f32(draw: u64) -> f32 {
    (draw >> 40) as f32 / (1u64 << 24) as f32
}

/// Previously failing seeds, replayed before the fresh schedule.
/// Line format: `cc 0123456789abcdef # what broke`.
fn regression_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/differential_proptests.txt"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("regression seed file {path} unreadable: {e}"));
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex = rest.split_whitespace().next().unwrap_or("");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|e| panic!("bad regression seed {hex:?} in {path}: {e}"));
        seeds.push(seed);
    }
    assert!(
        !seeds.is_empty(),
        "no `cc <seed>` entries in {path} — the regression net is gone"
    );
    seeds
}

/// All seeds a property runs: regressions first, then the schedule.
fn schedule(property: u64) -> Vec<u64> {
    let mut seeds = regression_seeds();
    seeds.extend((0..CASES).map(|i| case_seed(property, i)));
    seeds
}

// ---------------------------------------------------------------------
// Property 1: session windowing (T-window filter + lowercase +
// blocklist + first-visit dedup) — production Trace::window +
// Session::from_window vs the oracle's single naive scan.
// ---------------------------------------------------------------------

struct TraceBlock {
    world: World,
    trace: Trace,
    users: u32,
}

fn trace_block(block: u64) -> TraceBlock {
    let mut wc = WorldConfig::tiny();
    wc.seed = 0xb10c_0000 ^ block;
    let mut pc = PopulationConfig::tiny();
    pc.num_users = 10;
    pc.seed = 0xb10c_1000 ^ block;
    let mut tc = TraceConfig::tiny();
    tc.days = 2;
    tc.seed = 0xb10c_2000 ^ block;
    let world = World::generate(&wc);
    let population = Population::generate(&world, &pc);
    let trace = Trace::generate(&world, &population, &tc);
    TraceBlock {
        world,
        trace,
        users: population.len() as u32,
    }
}

#[test]
fn session_windowing_matches_oracle_on_500_seeded_cases() {
    const BLOCKS: u64 = 4;
    let blocks: Vec<TraceBlock> = (0..BLOCKS).map(trace_block).collect();

    for seed in schedule(0x5e55_1011) {
        let mut rng = seed;
        let block = &blocks[(splitmix(&mut rng) % BLOCKS) as usize];
        let user = UserId(splitmix(&mut rng) as u32 % block.users);
        let timeline: Vec<(u64, String)> = block
            .trace
            .user_requests(user)
            .map(|r| (r.t_ms, block.world.hostname(r.host).to_string()))
            .collect();

        // End anchored at a real request most of the time, raw otherwise;
        // durations sweep the degenerate edges and the paper's T.
        let end_ms = match (splitmix(&mut rng) % 4, timeline.as_slice()) {
            (0..=2, reqs) if !reqs.is_empty() => reqs[splitmix(&mut rng) as usize % reqs.len()].0,
            _ => splitmix(&mut rng) % (2 * DAY_MS),
        };
        let duration_ms = match splitmix(&mut rng) % 5 {
            0 => 0,
            1 => 1,
            2 => 20 * 60_000,
            3 => DAY_MS,
            _ => splitmix(&mut rng) % (45 * 60_000),
        };

        let blocklist = block.world.blocklist();
        let ids = block.trace.window(user, end_ms, duration_ms);
        let names: Vec<&str> = ids.iter().map(|&id| block.world.hostname(id)).collect();
        let session = Session::from_window(names.iter().copied(), Some(blocklist));
        let oracle =
            window::session_window(&timeline, end_ms, duration_ms, &|h| blocklist.is_blocked(h));
        assert_eq!(
            session.hostnames(),
            oracle.as_slice(),
            "windowing diverged — add `cc {seed:016x}` to \
             tests/regressions/differential_proptests.txt \
             (user {user:?}, end {end_ms}, duration {duration_ms})"
        );
    }
}

// ---------------------------------------------------------------------
// Property 2: kNN top-N — production tiled scan vs the oracle's full
// sort; exact index sequence (which encodes the similarity-then-index
// tie-break) and similarity bits, at the dims where the contract is
// bit-exact (scalar tail path: dim ≤ 3).
// ---------------------------------------------------------------------

#[test]
fn knn_top_n_matches_oracle_on_500_seeded_cases() {
    for seed in schedule(0x6e61) {
        let mut rng = seed;
        let dim = 2 + (splitmix(&mut rng) % 2) as usize; // 2 or 3
        let nrows = 4 + (splitmix(&mut rng) % 45) as usize;
        let mut rows = Vec::with_capacity(nrows * dim);
        for _ in 0..nrows * dim {
            rows.push(unit_f32(splitmix(&mut rng)) - 0.5);
        }
        // Occasionally zero out a row: zero-norm rows must be skipped
        // identically on both sides.
        if splitmix(&mut rng).is_multiple_of(3) {
            let r = splitmix(&mut rng) as usize % nrows;
            rows[r * dim..(r + 1) * dim].fill(0.0);
        }
        let query: Vec<f32> = (0..dim)
            .map(|_| unit_f32(splitmix(&mut rng)) - 0.5)
            .collect();
        let n = 1 + (splitmix(&mut rng) as usize % (nrows + 2));

        let seqs = [(0..nrows).map(|i| format!("h{i}")).collect::<Vec<_>>()];
        let vocab = Vocab::build(seqs.iter().map(|s| s.iter().map(|t| t.as_str())), 1, 0.0);
        let embeddings = EmbeddingSet::new(dim, vocab, rows.clone());

        let prod = embeddings.nearest_to_vector(&query, n);
        let oracle = knn::nearest(&rows, dim, &query, n);
        assert_eq!(
            prod.len(),
            oracle.len(),
            "kNN result sizes diverged — add `cc {seed:016x}` to \
             tests/regressions/differential_proptests.txt"
        );
        for (rank, (p, o)) in prod.iter().zip(&oracle).enumerate() {
            assert!(
                p.0 == o.0 && p.1.to_bits() == o.1.to_bits(),
                "kNN rank {rank}: production ({}, {}) vs oracle ({}, {}) — add \
                 `cc {seed:016x}` to tests/regressions/differential_proptests.txt",
                p.0,
                p.1,
                o.0,
                o.1
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property 3: Eq. 3/4 profiles — production Profiler vs the oracle's
// first-touch accumulator. Category ids exact, importances within the
// issue's 1e-5 spec tolerance.
// ---------------------------------------------------------------------

#[test]
fn eq4_importances_match_oracle_on_500_seeded_cases() {
    for seed in schedule(0xe943) {
        let mut rng = seed;
        let dim = 3usize;
        let nrows = 6 + (splitmix(&mut rng) % 19) as usize;
        let tokens: Vec<String> = (0..nrows).map(|i| format!("site{i}.test")).collect();
        let seqs = [tokens.clone()];
        let vocab = Vocab::build(seqs.iter().map(|s| s.iter().map(|t| t.as_str())), 1, 0.0);
        let mut rows = Vec::with_capacity(nrows * dim);
        for _ in 0..nrows * dim {
            rows.push(unit_f32(splitmix(&mut rng)) - 0.5);
        }
        let embeddings = EmbeddingSet::new(dim, vocab, rows.clone());

        // Label roughly a third of the hosts with 1-3 random categories.
        let mut ontology = Ontology::default();
        for t in &tokens {
            if !splitmix(&mut rng).is_multiple_of(3) {
                continue;
            }
            let ncats = 1 + (splitmix(&mut rng) % 3) as usize;
            let pairs: Vec<(CategoryId, f32)> = (0..ncats)
                .map(|_| {
                    (
                        CategoryId((splitmix(&mut rng) % 12) as u16),
                        0.1 + 0.9 * unit_f32(splitmix(&mut rng)),
                    )
                })
                .collect();
            ontology.insert(t, CategoryVector::from_pairs(pairs));
        }

        // A session over mostly in-vocabulary hosts plus the odd stranger.
        let nvisits = 1 + (splitmix(&mut rng) % 6) as usize;
        let visits: Vec<String> = (0..nvisits)
            .map(|v| {
                if splitmix(&mut rng).is_multiple_of(5) {
                    format!("stranger{v}.test")
                } else {
                    tokens[splitmix(&mut rng) as usize % nrows].clone()
                }
            })
            .collect();
        let session = Session::from_window(visits.iter().map(|s| s.as_str()), None);
        let n_neighbors = 1 + (splitmix(&mut rng) % 8) as usize;

        let profiler = Profiler::new(
            &embeddings,
            &ontology,
            ProfilerConfig {
                n_neighbors,
                ..Default::default()
            },
        );
        let labeled: Vec<Option<Vec<(u16, f32)>>> = (0..embeddings.len() as u32)
            .map(|idx| {
                ontology
                    .lookup(embeddings.vocab().token(idx))
                    .map(|cats| cats.iter().map(|(c, w)| (c.0, w)).collect())
            })
            .collect();
        let hosts: Vec<profile::SessionHost> = session
            .hostnames()
            .iter()
            .map(|h| profile::SessionHost {
                vocab_idx: embeddings.vocab().get(h),
                categories: ontology
                    .lookup(h)
                    .map(|cats| cats.iter().map(|(c, w)| (c.0, w)).collect()),
            })
            .collect();

        let prod = profiler.profile(&session);
        let oracle = profile::profile(&hosts, &rows, dim, &labeled, n_neighbors);
        let cc = format!("add `cc {seed:016x}` to tests/regressions/differential_proptests.txt");
        match (&prod, &oracle) {
            (None, None) => {}
            (Some(p), Some(o)) => {
                assert_eq!(
                    p.labeled_in_session, o.labeled_in_session,
                    "in-session count — {cc}"
                );
                assert_eq!(
                    p.labeled_neighbors, o.labeled_neighbors,
                    "neighbor count — {cc}"
                );
                let prod_ids: Vec<u16> = p.categories.iter().map(|(c, _)| c.0).collect();
                let oracle_ids: Vec<u16> = o.categories.iter().map(|&(c, _)| c).collect();
                assert_eq!(prod_ids, oracle_ids, "category ids — {cc}");
                for ((_, pw), &(_, ow)) in p.categories.iter().zip(&o.categories) {
                    assert!(
                        ((pw as f64) - (ow as f64)).abs() <= 1e-5,
                        "Eq. 4 importance {pw} vs {ow} beyond 1e-5 — {cc}"
                    );
                }
            }
            _ => panic!(
                "profiled: production {}, oracle {} — {cc}",
                prod.is_some(),
                oracle.is_some()
            ),
        }
    }
}
