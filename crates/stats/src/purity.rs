//! Quantitative cluster-quality metrics.
//!
//! Figure 5 of the paper argues *qualitatively* that the embedding clusters
//! porn, sports-streaming and travel hostnames. With synthetic ground truth
//! we can make that claim testable: [`neighbor_purity`] measures how often
//! a point's nearest neighbors share its label, and [`similarity_gap`]
//! compares mean intra-label vs inter-label cosine similarity.

/// Cosine similarity of two equal-length vectors (0 when either is zero).
fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0f64;
    let mut na = 0f64;
    let mut nb = 0f64;
    for (x, y) in a.iter().zip(b) {
        dot += (*x as f64) * (*y as f64);
        na += (*x as f64) * (*x as f64);
        nb += (*y as f64) * (*y as f64);
    }
    let denom = (na.sqrt()) * (nb.sqrt());
    if denom <= f64::EPSILON {
        0.0
    } else {
        dot / denom
    }
}

/// Mean fraction of each point's `k` nearest neighbors (cosine) that share
/// its label. 1.0 = perfectly pure neighborhoods; the label-frequency
/// baseline is what a random embedding would score.
///
/// # Panics
/// Panics when `points.len()` is not `labels.len() * dim` or `dim == 0`.
pub fn neighbor_purity(points: &[f32], dim: usize, labels: &[usize], k: usize) -> f64 {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(points.len(), labels.len() * dim, "shape mismatch");
    let n = labels.len();
    if n < 2 || k == 0 {
        return 0.0;
    }
    let k = k.min(n - 1);
    let mut total = 0f64;
    for i in 0..n {
        let vi = &points[i * dim..(i + 1) * dim];
        let mut sims: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (cosine(vi, &points[j * dim..(j + 1) * dim]), j))
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let same = sims[..k]
            .iter()
            .filter(|(_, j)| labels[*j] == labels[i])
            .count();
        total += same as f64 / k as f64;
    }
    total / n as f64
}

/// Mean intra-label and inter-label cosine similarity: `(intra, inter)`.
/// A well-clustered embedding has `intra ≫ inter`.
///
/// # Panics
/// Panics on shape mismatch (see [`neighbor_purity`]).
pub fn similarity_gap(points: &[f32], dim: usize, labels: &[usize]) -> (f64, f64) {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(points.len(), labels.len() * dim, "shape mismatch");
    let n = labels.len();
    let (mut intra, mut inter) = (0f64, 0f64);
    let (mut n_intra, mut n_inter) = (0usize, 0usize);
    for i in 0..n {
        for j in (i + 1)..n {
            let s = cosine(
                &points[i * dim..(i + 1) * dim],
                &points[j * dim..(j + 1) * dim],
            );
            if labels[i] == labels[j] {
                intra += s;
                n_intra += 1;
            } else {
                inter += s;
                n_inter += 1;
            }
        }
    }
    (
        if n_intra > 0 {
            intra / n_intra as f64
        } else {
            0.0
        },
        if n_inter > 0 {
            inter / n_inter as f64
        } else {
            0.0
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two labels on orthogonal axes plus slight jitter.
    fn toy() -> (Vec<f32>, Vec<usize>) {
        let pts = vec![
            1.0, 0.0, //
            0.9, 0.1, //
            1.0, 0.05, //
            0.0, 1.0, //
            0.1, 0.9, //
            0.05, 1.0, //
        ];
        (pts, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn pure_clusters_score_high() {
        let (pts, labels) = toy();
        let p = neighbor_purity(&pts, 2, &labels, 2);
        assert!(p > 0.99, "purity {p}");
        let (intra, inter) = similarity_gap(&pts, 2, &labels);
        assert!(intra > 0.98);
        assert!(inter < 0.2);
    }

    #[test]
    fn shuffled_labels_score_near_baseline() {
        let (pts, _) = toy();
        let labels = vec![0, 1, 0, 1, 0, 1];
        let p = neighbor_purity(&pts, 2, &labels, 2);
        assert!(p < 0.6, "mixed labels can't be pure: {p}");
    }

    #[test]
    fn k_is_clamped_to_population() {
        let (pts, labels) = toy();
        let p = neighbor_purity(&pts, 2, &labels, 100);
        // With k = n-1 every point sees 2 same-label of 5 neighbors.
        assert!((p - 2.0 / 5.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(neighbor_purity(&[1.0, 0.0], 2, &[0], 3), 0.0);
        assert_eq!(neighbor_purity(&[], 2, &[], 3), 0.0);
        let (intra, inter) = similarity_gap(&[1.0, 0.0], 2, &[0]);
        assert_eq!((intra, inter), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = neighbor_purity(&[1.0, 2.0, 3.0], 2, &[0, 1], 1);
    }
}
