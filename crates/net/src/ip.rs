//! IPv4 / TCP / UDP header codecs.
//!
//! The observer's packet abstraction ([`crate::packet::Packet`]) carries a
//! parsed 5-tuple; a real tap hands over raw IP datagrams. This module
//! closes that gap: build and parse IPv4 headers (with real header
//! checksums), TCP and UDP headers, and convert between raw frames and
//! [`Packet`]s. As everywhere in this crate, parsers are bounds-checked and
//! panic-free.
//!
//! Scope notes (documented simplifications):
//! * no IP options beyond what IHL declares, no fragmentation reassembly —
//!   the SNI-bearing first payloads fit in one datagram in practice;
//! * TCP options are skipped via the data-offset field;
//! * transport checksums (which need the pseudo-header) are set to 0 on
//!   build and not verified on parse — many real taps see offloaded
//!   checksums as wrong anyway; the IPv4 *header* checksum is real.

use crate::error::ParseError;
use crate::packet::{Endpoint, Packet, Transport};
use bytes::Bytes;

/// IPv4 protocol numbers used here.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// Compute the RFC 791 ones'-complement header checksum over `bytes`
/// (checksum field must be zeroed by the caller).
pub fn ipv4_checksum(bytes: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Serialize a [`Packet`] as a raw IPv4 datagram (20-byte IP header, then
/// a minimal TCP (20-byte) or UDP (8-byte) header, then the payload).
pub fn to_ipv4_frame(pkt: &Packet) -> Vec<u8> {
    let (proto, l4_len) = match pkt.transport {
        Transport::Tcp => (proto::TCP, 20),
        Transport::Udp => (proto::UDP, 8),
    };
    let total_len = 20 + l4_len + pkt.payload.len();
    assert!(total_len <= u16::MAX as usize, "datagram too large");
    let mut out = Vec::with_capacity(total_len);

    // IPv4 header.
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // identification
    out.extend_from_slice(&[0x40, 0]); // flags: DF, fragment offset 0
    out.push(64); // TTL
    out.push(proto);
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&pkt.src.ip.to_be_bytes());
    out.extend_from_slice(&pkt.dst.ip.to_be_bytes());
    let csum = ipv4_checksum(&out[..20]);
    out[10..12].copy_from_slice(&csum.to_be_bytes());

    match pkt.transport {
        Transport::Tcp => {
            out.extend_from_slice(&pkt.src.port.to_be_bytes());
            out.extend_from_slice(&pkt.dst.port.to_be_bytes());
            out.extend_from_slice(&[0; 8]); // seq + ack
            out.push(0x50); // data offset 5
            out.push(0x18); // flags: PSH|ACK
            out.extend_from_slice(&[0xff, 0xff]); // window
            out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        }
        Transport::Udp => {
            out.extend_from_slice(&pkt.src.port.to_be_bytes());
            out.extend_from_slice(&pkt.dst.port.to_be_bytes());
            out.extend_from_slice(&((8 + pkt.payload.len()) as u16).to_be_bytes());
            out.extend_from_slice(&[0, 0]); // checksum (0 = absent for v4)
        }
    }
    out.extend_from_slice(&pkt.payload);
    out
}

/// Parse a raw IPv4 datagram into a [`Packet`] (capture timestamp supplied
/// by the caller, as on a real tap).
///
/// Returns `ParseError::WrongType` for non-IPv4 or non-TCP/UDP protocols,
/// `Truncated`/`BadLength` for malformed framing.
pub fn from_ipv4_frame(t_ms: u64, frame: &[u8]) -> Result<Packet, ParseError> {
    if frame.len() < 20 {
        return Err(ParseError::Truncated);
    }
    let version = frame[0] >> 4;
    if version != 4 {
        return Err(ParseError::WrongType);
    }
    let ihl = (frame[0] & 0x0f) as usize * 4;
    if ihl < 20 || frame.len() < ihl {
        return Err(ParseError::BadLength);
    }
    // Verify the header checksum.
    if ipv4_checksum(&frame[..ihl]) != 0 {
        return Err(ParseError::BadLength);
    }
    let total_len = u16::from_be_bytes([frame[2], frame[3]]) as usize;
    if total_len < ihl || total_len > frame.len() {
        return Err(ParseError::BadLength);
    }
    let fragment = u16::from_be_bytes([frame[6], frame[7]]);
    if fragment & 0x3fff != 0 {
        // MF set or nonzero offset: we don't reassemble IP fragments.
        return Err(ParseError::WrongType);
    }
    let protocol = frame[9];
    let src_ip = u32::from_be_bytes(frame[12..16].try_into().expect("4 bytes"));
    let dst_ip = u32::from_be_bytes(frame[16..20].try_into().expect("4 bytes"));
    let l4 = &frame[ihl..total_len];

    let (transport, src_port, dst_port, payload) = match protocol {
        proto::TCP => {
            if l4.len() < 20 {
                return Err(ParseError::Truncated);
            }
            let data_offset = (l4[12] >> 4) as usize * 4;
            if data_offset < 20 || l4.len() < data_offset {
                return Err(ParseError::BadLength);
            }
            (
                Transport::Tcp,
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
                &l4[data_offset..],
            )
        }
        proto::UDP => {
            if l4.len() < 8 {
                return Err(ParseError::Truncated);
            }
            let udp_len = u16::from_be_bytes([l4[4], l4[5]]) as usize;
            if udp_len < 8 || udp_len > l4.len() {
                return Err(ParseError::BadLength);
            }
            (
                Transport::Udp,
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
                &l4[8..udp_len],
            )
        }
        _ => return Err(ParseError::WrongType),
    };

    Ok(Packet {
        t_ms,
        src: Endpoint::new(src_ip, src_port),
        dst: Endpoint::new(dst_ip, dst_port),
        transport,
        payload: Bytes::from(payload.to_vec()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::ClientHello;

    fn sample(transport: Transport) -> Packet {
        Packet {
            t_ms: 1234,
            src: Endpoint::new(0x0a01_0203, 51000),
            dst: Endpoint::new(0x5001_0101, 443),
            transport,
            payload: Bytes::from(ClientHello::for_hostname("frames.example").encode()),
        }
    }

    #[test]
    fn tcp_frame_roundtrips() {
        let pkt = sample(Transport::Tcp);
        let frame = to_ipv4_frame(&pkt);
        let back = from_ipv4_frame(1234, &frame).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn udp_frame_roundtrips() {
        let pkt = sample(Transport::Udp);
        let frame = to_ipv4_frame(&pkt);
        let back = from_ipv4_frame(1234, &frame).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn checksum_matches_rfc_example() {
        // Classic worked example (RFC 1071 style).
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_checksum(&header), 0xb861);
        // A header with its correct checksum in place sums to zero.
        let mut with = header;
        with[10..12].copy_from_slice(&0xb861u16.to_be_bytes());
        assert_eq!(ipv4_checksum(&with), 0);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut frame = to_ipv4_frame(&sample(Transport::Tcp));
        frame[15] ^= 0x01; // flip a source-address bit
        assert_eq!(from_ipv4_frame(0, &frame), Err(ParseError::BadLength));
    }

    #[test]
    fn non_ipv4_and_odd_protocols_are_rejected() {
        let mut frame = to_ipv4_frame(&sample(Transport::Udp));
        frame[0] = 0x65; // version 6
        assert_eq!(from_ipv4_frame(0, &frame), Err(ParseError::WrongType));

        let mut frame = to_ipv4_frame(&sample(Transport::Udp));
        frame[9] = 1; // ICMP
                      // Re-fix the header checksum after mutating the protocol field.
        frame[10] = 0;
        frame[11] = 0;
        let csum = ipv4_checksum(&frame[..20]);
        frame[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(from_ipv4_frame(0, &frame), Err(ParseError::WrongType));
    }

    #[test]
    fn fragments_are_refused() {
        let mut frame = to_ipv4_frame(&sample(Transport::Tcp));
        frame[6] = 0x20; // MF flag
        frame[10] = 0;
        frame[11] = 0;
        let csum = ipv4_checksum(&frame[..20]);
        frame[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(from_ipv4_frame(0, &frame), Err(ParseError::WrongType));
    }

    #[test]
    fn truncation_never_panics() {
        let frame = to_ipv4_frame(&sample(Transport::Tcp));
        for cut in 0..frame.len().min(80) {
            let _ = from_ipv4_frame(0, &frame[..cut]);
        }
    }

    #[test]
    fn frame_payload_feeds_the_sni_extractor() {
        let pkt = sample(Transport::Tcp);
        let frame = to_ipv4_frame(&pkt);
        let back = from_ipv4_frame(0, &frame).unwrap();
        assert_eq!(
            crate::tls::extract_sni(&back.payload).unwrap(),
            Some("frames.example")
        );
    }
}
