//! # hostprof-core
//!
//! The paper's primary contribution (Section 4.1): profiling a user's
//! browsing session from nothing but the hostnames a network observer can
//! see, using hostname embeddings to propagate ontology labels to the ~90 %
//! of hostnames the ontology does not cover.
//!
//! The algorithm, end to end:
//!
//! 1. **Session extraction** ([`session`]) — the hosts a user requested in
//!    the last `T` minutes (paper: `T = 20`), keeping only the *first*
//!    visit to each host (interactive services open many connections) and
//!    dropping tracker/ad hostnames via blocklists (Section 5.4).
//! 2. **Aggregation** — the session vector `s_u^T = g({h})` is the mean of
//!    the member hostname embeddings.
//! 3. **Label propagation** ([`profiler`]) — retrieve the `N = 1000`
//!    hostnames most cosine-similar to the session vector; hosts with known
//!    ontology labels contribute their category vectors with weight
//!    `α_h = 1` when the host is *in* the session and
//!    `α_h = [cos(s, h)]₊` otherwise (Eq. 3); category importances are the
//!    α-weighted average (Eq. 4).
//! 4. **Daily retraining** ([`pipeline`]) — a fresh SKIPGRAM model is
//!    trained every simulated day on the previous day's sequences
//!    (Section 5.4, "We update our model every day").
//!
//! [`batch`] scales step 3 to deployment shape: one batched, multi-threaded
//! call profiles every session of a report tick, bit-identical to the
//! one-at-a-time path. [`cores`] implements the Figure 2/3 user-diversity
//! analysis (popularity
//! cores and per-user counts outside them), [`accumulator`] folds session
//! profiles into long-lived per-user profiles (the §7.3 "profiles could be
//! sold" artifact), and
//! [`profiler::profile_accuracy`] scores an inferred profile against the
//! synthetic ground truth no real deployment could observe.

pub mod accumulator;
pub mod batch;
pub mod columnar;
pub mod cores;
pub mod pipeline;
pub mod profiler;
pub mod serve;
pub mod session;
pub mod versioned;

pub use accumulator::ProfileAccumulator;
pub use batch::BatchProfiler;
pub use columnar::SessionSource;
pub use cores::{core_items, counts_outside_core};
pub use pipeline::{Pipeline, PipelineConfig};
pub use profiler::{
    profile_accuracy, Aggregation, PreparedProfiler, ProfileScratch, Profiler, ProfilerConfig,
    SessionProfile,
};
pub use serve::{IncrementalWindower, ServeConfig, ServeEngine, ServeStats, TickReport};
pub use session::Session;
pub use versioned::{ModelVersion, VersionedModel};
