//! Sparse `[0,1]`-weighted category vectors.
//!
//! The paper's per-hostname categorization `c^h` (Section 4.1) assigns each
//! category `i` an importance `c^h_i ∈ [0,1]`; the vector is *not* a
//! probability distribution (footnote 2). Hostnames typically carry only a
//! handful of categories out of 328, so a sorted sparse representation is
//! both compact and fast for the dot/cosine/Euclidean operations used by the
//! profiler (Eq. 3–4) and the ad selector (Section 5.4, Euclidean 20-NN).

use crate::category::CategoryId;
use serde::{Deserialize, Serialize};

/// A sparse category-importance vector: sorted `(CategoryId, weight)` pairs
/// with weights in `[0, 1]` and no duplicate ids.
///
/// ```
/// use hostprof_ontology::{CategoryId, CategoryVector};
/// let travel = CategoryVector::from_pairs(vec![
///     (CategoryId(13), 1.0),  // Travel
///     (CategoryId(40), 0.4),  // a second-level category
/// ]);
/// let sports = CategoryVector::singleton(CategoryId(12));
/// assert_eq!(travel.cosine(&sports), 0.0);
/// assert!(travel.cosine(&travel) > 0.999);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CategoryVector {
    entries: Vec<(CategoryId, f32)>,
}

impl CategoryVector {
    /// The empty vector (a hostname with no known categories).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from arbitrary pairs: duplicate ids are merged by `max`,
    /// weights are clamped to `[0, 1]`, zero weights are dropped, entries
    /// are sorted by id.
    pub fn from_pairs(pairs: Vec<(CategoryId, f32)>) -> Self {
        let mut entries = pairs;
        entries.sort_by_key(|(c, _)| *c);
        let mut merged: Vec<(CategoryId, f32)> = Vec::with_capacity(entries.len());
        for (c, w) in entries {
            let w = w.clamp(0.0, 1.0);
            if w <= 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some((lc, lw)) if *lc == c => *lw = lw.max(w),
                _ => merged.push((c, w)),
            }
        }
        Self { entries: merged }
    }

    /// Build a single-category vector with weight 1.
    pub fn singleton(c: CategoryId) -> Self {
        Self {
            entries: vec![(c, 1.0)],
        }
    }

    /// Number of non-zero categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no categories at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(id, weight)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CategoryId, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// Weight of one category (0 if absent).
    pub fn get(&self, c: CategoryId) -> f32 {
        match self.entries.binary_search_by_key(&c, |(id, _)| *id) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Ids of the non-zero categories.
    pub fn ids(&self) -> impl Iterator<Item = CategoryId> + '_ {
        self.entries.iter().map(|(c, _)| *c)
    }

    /// Densify to a `num_categories`-length array.
    ///
    /// # Panics
    /// Panics if an entry's id is out of range — category vectors must be
    /// built against the hierarchy that sized `num_categories`.
    pub fn to_dense(&self, num_categories: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; num_categories];
        for (c, w) in self.iter() {
            out[c.index()] = w;
        }
        out
    }

    /// Sparse dot product.
    pub fn dot(&self, other: &Self) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.entries.len() && j < other.entries.len() {
            let (ci, wi) = self.entries[i];
            let (cj, wj) = other.entries[j];
            match ci.cmp(&cj) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wi * wj;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// Cosine similarity; 0 when either vector is all-zero.
    pub fn cosine(&self, other: &Self) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= f32::EPSILON {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Euclidean distance treating missing ids as zeros — the metric the
    /// paper uses to pick the 20 nearest labeled hosts for ad selection.
    pub fn euclidean(&self, other: &Self) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.entries.len() || j < other.entries.len() {
            let ci = self.entries.get(i).map(|(c, _)| *c);
            let cj = other.entries.get(j).map(|(c, _)| *c);
            match (ci, cj) {
                (Some(a), Some(b)) if a == b => {
                    let d = self.entries[i].1 - other.entries[j].1;
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    acc += self.entries[i].1 * self.entries[i].1;
                    i += 1;
                }
                (Some(_), Some(_)) => {
                    acc += other.entries[j].1 * other.entries[j].1;
                    j += 1;
                }
                (Some(_), None) => {
                    acc += self.entries[i].1 * self.entries[i].1;
                    i += 1;
                }
                (None, Some(_)) => {
                    acc += other.entries[j].1 * other.entries[j].1;
                    j += 1;
                }
                (None, None) => unreachable!("loop condition guarantees progress"),
            }
        }
        acc.sqrt()
    }

    /// `self += scale * other`, clamping results into `[0, 1]`.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) {
        let mut merged = std::collections::BTreeMap::new();
        for (c, w) in self.iter() {
            *merged.entry(c).or_insert(0.0f32) += w;
        }
        for (c, w) in other.iter() {
            *merged.entry(c).or_insert(0.0f32) += scale * w;
        }
        self.entries = merged
            .into_iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|(c, w)| (c, w.min(1.0)))
            .collect();
    }

    /// Keep only the `k` highest-weight categories (ties broken by id).
    pub fn top_k(&self, k: usize) -> Self {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        entries.truncate(k);
        entries.sort_by_key(|(c, _)| *c);
        Self { entries }
    }

    /// The single highest-weight category, if any.
    pub fn argmax(&self) -> Option<CategoryId> {
        self.entries
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| *c)
    }
}

impl FromIterator<(CategoryId, f32)> for CategoryVector {
    fn from_iter<T: IntoIterator<Item = (CategoryId, f32)>>(iter: T) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u16, f32)]) -> CategoryVector {
        CategoryVector::from_pairs(pairs.iter().map(|&(c, w)| (CategoryId(c), w)).collect())
    }

    #[test]
    fn from_pairs_sorts_dedups_and_clamps() {
        let x = v(&[(5, 0.4), (1, 2.0), (5, 0.9), (3, -0.1), (2, 0.0)]);
        let got: Vec<_> = x.iter().collect();
        assert_eq!(
            got,
            vec![(CategoryId(1), 1.0), (CategoryId(5), 0.9)],
            "clamped to 1.0, dup merged by max, zero/negative dropped"
        );
    }

    #[test]
    fn dot_matches_dense() {
        let a = v(&[(0, 0.5), (3, 1.0), (7, 0.25)]);
        let b = v(&[(3, 0.5), (7, 0.5), (9, 1.0)]);
        let dense_dot: f32 = a
            .to_dense(10)
            .iter()
            .zip(b.to_dense(10))
            .map(|(x, y)| x * y)
            .sum();
        assert!((a.dot(&b) - dense_dot).abs() < 1e-6);
    }

    #[test]
    fn euclidean_matches_dense() {
        let a = v(&[(0, 0.5), (3, 1.0)]);
        let b = v(&[(3, 0.5), (9, 1.0)]);
        let dense: f32 = a
            .to_dense(10)
            .iter()
            .zip(b.to_dense(10))
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        assert!((a.euclidean(&b) - dense).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_identical_is_one_and_orthogonal_is_zero() {
        let a = v(&[(1, 0.3), (2, 0.7)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        let b = v(&[(5, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&CategoryVector::empty()), 0.0);
    }

    #[test]
    fn get_and_argmax() {
        let a = v(&[(1, 0.3), (2, 0.7)]);
        assert_eq!(a.get(CategoryId(2)), 0.7);
        assert_eq!(a.get(CategoryId(9)), 0.0);
        assert_eq!(a.argmax(), Some(CategoryId(2)));
        assert_eq!(CategoryVector::empty().argmax(), None);
    }

    #[test]
    fn add_scaled_accumulates_and_clamps() {
        let mut a = v(&[(1, 0.8)]);
        a.add_scaled(&v(&[(1, 0.8), (2, 0.5)]), 0.5);
        assert!(
            (a.get(CategoryId(1)) - 1.0).abs() < 1e-6,
            "0.8 + 0.4 clamps to 1"
        );
        assert!((a.get(CategoryId(2)) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn top_k_keeps_heaviest() {
        let a = v(&[(1, 0.2), (2, 0.9), (3, 0.5)]);
        let t = a.top_k(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(CategoryId(2)), 0.9);
        assert_eq!(t.get(CategoryId(3)), 0.5);
        assert_eq!(t.get(CategoryId(1)), 0.0);
    }
}
