//! The passive SNI observer.
//!
//! [`SniObserver`] is the paper's eavesdropper: it consumes a packet stream,
//! inspects exactly one payload per flow (via [`FlowTable`]), extracts
//! hostnames from TLS ClientHellos, QUIC Initials and DNS queries, and
//! assembles per-client hostname sequences — the input format of the
//! profiling algorithm (Section 4.1: "hostname request sequences across
//! users in the network").
//!
//! ## Adversarial ingest
//!
//! A production tap sees truncated records, re-segmented and duplicated TCP,
//! coalesced QUIC datagrams and outright garbage (DESIGN.md §8). The
//! observer is hardened so that *every* input degrades to a counted skip,
//! never a panic and never unbounded memory:
//!
//! * each failure mode lands in a dedicated [`ObserverStats`] taxonomy
//!   counter (`truncated_records`, `bad_lengths`, `reassembly_overflow`,
//!   `evicted_mid_handshake`, `garbage`, `reassembly_invariant`), with
//!   `parse_errors` kept as their running total;
//! * reassembly buffers are bounded per flow (bytes and segments), in
//!   count (concurrent flows) and in aggregate (total buffered bytes) by a
//!   tunable [`ObserverConfig`], with FIFO eviction at every cap;
//! * flows the [`FlowTable`] evicts mid-handshake surface through
//!   [`FlowTable::take_evicted_pending`] so their buffers are reclaimed
//!   immediately instead of leaking until 5-tuple reuse.
//!
//! The `net::chaos` fault-injection harness (`tests/chaos_observer.rs`,
//! `chaosprobe`) property-tests these guarantees against seeded mutation
//! streams.

use crate::dns;
use crate::error::ParseError;
use crate::flow::{FlowDecision, FlowKey, FlowTable};
use crate::packet::{Packet, Transport};
use crate::quic;
use crate::tls;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a hostname was recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostnameSource {
    /// TLS ClientHello `server_name` over TCP.
    TlsSni,
    /// ClientHello inside a QUIC Initial.
    QuicSni,
    /// Plaintext DNS query name.
    DnsQuery,
}

/// One recovered `(time, client, hostname)` fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Connection start time, milliseconds: the timestamp of the flow's
    /// *first* payload segment, not of the segment that completed parsing.
    /// A ClientHello reassembled from several TCP segments is stamped with
    /// the time the handshake began — the instant the ground-truth request
    /// happened — so downstream session windows see the same timeline an
    /// oracle with the original trace would.
    pub t_ms: u64,
    /// Client IPv4 address — the observer's only notion of "user".
    pub client_ip: u32,
    /// Recovered hostname (lowercase).
    pub hostname: String,
    /// Extraction path.
    pub source: HostnameSource,
}

/// Observer counters, reported by the E6-style experiments.
///
/// `parse_errors` is the aggregate failure count; the taxonomy fields below
/// it partition the same failures by cause, so
/// `parse_errors == truncated_records + bad_lengths + reassembly_overflow +
/// evicted_mid_handshake + garbage` always holds (asserted by the chaos
/// conformance suite). `reassembly_invariant` sits outside the sum: it
/// counts "impossible" internal states and stays zero in any healthy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverStats {
    /// Packets consumed.
    pub packets: u64,
    /// Hostnames recovered from TCP TLS.
    pub tls_sni: u64,
    /// Hostnames recovered from QUIC Initials.
    pub quic_sni: u64,
    /// Hostnames recovered from DNS queries.
    pub dns_names: u64,
    /// Well-formed handshakes with no readable name (ECH).
    pub hidden: u64,
    /// Payloads that failed to parse as anything the observer knows —
    /// the sum of the taxonomy counters below.
    pub parse_errors: u64,
    /// ClientHellos recovered only after reassembling 2+ TCP segments.
    pub reassembled: u64,
    /// QUIC long/short-header packets that are legitimately not Initials
    /// (Handshake, 0-RTT, Retry, Version Negotiation, 1-RTT).
    pub skipped_non_initial: u64,
    /// Datagram payloads that ended before a declared length was satisfied
    /// (a truncated capture of a QUIC Initial or DNS query).
    pub truncated_records: u64,
    /// Payloads whose length fields contradict the enclosing structure.
    pub bad_lengths: u64,
    /// TCP reassemblies abandoned at the per-flow byte or segment budget.
    pub reassembly_overflow: u64,
    /// Reassemblies abandoned because the flow was evicted mid-handshake
    /// (idle timeout, concurrent-flow cap, or total buffered-bytes cap).
    pub evicted_mid_handshake: u64,
    /// Payloads that parse as none of the protocols the observer knows.
    pub garbage: u64,
    /// Internal reassembly bookkeeping contradicted itself ("impossible"
    /// states that previously aborted via `expect`; counted, never fatal).
    pub reassembly_invariant: u64,
}

/// Tunable limits of the ingest path: every reassembly buffer the observer
/// holds is bounded per flow, in flow count and in aggregate, so a hostile
/// or lossy packet stream cannot grow memory without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverConfig {
    /// Per-flow reassembly byte budget: a ClientHello that hasn't completed
    /// within this many buffered bytes is abandoned as unparseable.
    pub max_pending_bytes: usize,
    /// Per-flow segment budget for the same buffer.
    pub max_pending_segments: u32,
    /// Cap on concurrently-reassembling flows; beyond it the oldest
    /// pending flow is abandoned so a flood of never-completing handshakes
    /// cannot grow memory without bound.
    pub max_pending_flows: usize,
    /// Aggregate cap across *all* reassembly buffers; beyond it the oldest
    /// pending flows are abandoned until the total fits again.
    pub max_total_pending_bytes: usize,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        Self {
            max_pending_bytes: 8 * 1024,
            max_pending_segments: 8,
            max_pending_flows: 4096,
            max_total_pending_bytes: 2 * 1024 * 1024,
        }
    }
}

/// A passive network eavesdropper.
#[derive(Debug)]
pub struct SniObserver {
    flows: FlowTable,
    observations: Vec<Observation>,
    stats: ObserverStats,
    config: ObserverConfig,
    /// Partial ClientHello state per TCP flow, while a handshake spans
    /// several segments: accumulated bytes, segment count, and the
    /// timestamp of the first segment (the flow's start time, which stamps
    /// the eventual observation).
    pending: HashMap<FlowKey, (Vec<u8>, u32, u64)>,
    /// Insertion order of `pending` keys, for FIFO eviction at the caps.
    pending_order: std::collections::VecDeque<FlowKey>,
    /// Total bytes across all `pending` buffers (kept incrementally).
    pending_bytes: usize,
    /// Whether DNS queries are harvested too (off when modeling a pure
    /// TLS-only vantage point, on when modeling a DNS provider, §7.2).
    harvest_dns: bool,
}

/// Outcome of feeding one TCP segment to the TLS reassembler.
enum TlsOutcome {
    /// A hostname was recovered, stamped with the flow's first-segment
    /// timestamp.
    Hostname(String, u64),
    /// More segments are needed; the flow stays pending.
    Incomplete,
    /// Well-formed ClientHello with no readable name (ECH).
    Hidden,
    /// Not a parseable ClientHello.
    Garbage,
    /// The reassembly budget (bytes or segments) ran out.
    Overflow,
}

impl SniObserver {
    /// An observer with the default flow table and limits, ignoring DNS.
    pub fn new() -> Self {
        Self::with_config(ObserverConfig::default())
    }

    /// An observer with explicit ingest limits.
    pub fn with_config(config: ObserverConfig) -> Self {
        Self {
            flows: FlowTable::default(),
            observations: Vec::new(),
            stats: ObserverStats::default(),
            config,
            pending: HashMap::new(),
            pending_order: std::collections::VecDeque::new(),
            pending_bytes: 0,
            harvest_dns: false,
        }
    }

    /// Also record hostnames from plaintext DNS queries.
    pub fn with_dns_harvesting(mut self) -> Self {
        self.harvest_dns = true;
        self
    }

    /// The ingest limits in force.
    pub fn config(&self) -> ObserverConfig {
        self.config
    }

    /// Total bytes currently held in reassembly buffers. Bounded by
    /// [`ObserverConfig::max_total_pending_bytes`] plus one segment's
    /// worth of slack (the cap is enforced after each append).
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Number of flows currently mid-reassembly.
    pub fn pending_flows(&self) -> usize {
        self.pending.len()
    }

    /// Remove a pending entry, keeping the byte total consistent.
    fn pending_remove(&mut self, key: &FlowKey) -> Option<(Vec<u8>, u32, u64)> {
        let removed = self.pending.remove(key);
        if let Some((buf, _, _)) = &removed {
            self.pending_bytes = self.pending_bytes.saturating_sub(buf.len());
        }
        removed
    }

    /// Abandon the oldest pending flow (FIFO); returns whether one existed.
    /// Counted as an eviction mid-handshake.
    fn abandon_oldest_pending(&mut self) -> bool {
        while let Some(old) = self.pending_order.pop_front() {
            if self.pending_remove(&old).is_some() {
                self.stats.parse_errors += 1;
                self.stats.evicted_mid_handshake += 1;
                self.flows.finish(&old);
                return true;
            }
            // Stale order entry for a flow that already completed; skip.
        }
        false
    }

    /// Enforce the flow-count and total-bytes caps after an insert/append.
    fn enforce_pending_caps(&mut self, protect: &FlowKey) {
        while self.pending.len() > self.config.max_pending_flows
            || self.pending_bytes > self.config.max_total_pending_bytes
        {
            // Never evict the flow we are actively appending to: its own
            // growth is bounded by the per-flow budget.
            if self.pending.len() == 1 && self.pending.contains_key(protect) {
                break;
            }
            if let Some(front) = self.pending_order.front().copied() {
                if front == *protect && self.pending.contains_key(&front) {
                    self.pending_order.pop_front();
                    self.pending_order.push_back(front);
                    continue;
                }
            }
            if !self.abandon_oldest_pending() {
                break;
            }
        }
        // `pending_order` accumulates stale entries for flows that finished
        // reassembly; compact it before it dwarfs the live map.
        if self.pending_order.len() > 2 * self.config.max_pending_flows.max(16) {
            let live = &self.pending;
            self.pending_order.retain(|k| live.contains_key(k));
        }
    }

    /// Reclaim reassembly buffers of flows the flow table evicted while
    /// they were still mid-handshake.
    fn reap_evicted_flows(&mut self) {
        for key in self.flows.take_evicted_pending() {
            if self.pending_remove(&key).is_some() {
                self.stats.parse_errors += 1;
                self.stats.evicted_mid_handshake += 1;
            }
        }
    }

    /// Count one parse failure under its taxonomy bucket.
    fn count_parse_failure(&mut self, err: ParseError) {
        self.stats.parse_errors += 1;
        match err {
            ParseError::Truncated => self.stats.truncated_records += 1,
            ParseError::BadLength => self.stats.bad_lengths += 1,
            _ => self.stats.garbage += 1,
        }
    }

    /// Consume one packet; records an observation when a hostname leaks.
    pub fn process(&mut self, pkt: &Packet) {
        self.stats.packets += 1;
        let decision = self.flows.observe(pkt);
        if self.flows.has_evicted_pending() {
            self.reap_evicted_flows();
        }
        if decision == FlowDecision::Skip {
            return;
        }
        let key = FlowKey::of(pkt);
        if decision == FlowDecision::InspectNew {
            // A fresh flow on this 5-tuple: discard any reassembly state a
            // previous (evicted) occupant left behind, or its stale bytes
            // would corrupt this connection's ClientHello. Eviction reaping
            // should already have reclaimed it — reaching here with live
            // bytes means the bookkeeping disagreed with itself.
            if self.pending_remove(&key).is_some() {
                self.stats.reassembly_invariant += 1;
            }
        }
        let recovered: Option<(String, HostnameSource, u64)> = match pkt.transport {
            // TCP: the ClientHello may span several segments — reassemble
            // per flow until it parses, it is provably hidden/garbage, or
            // the buffer budget runs out.
            Transport::Tcp => match self.try_tls(&key, pkt) {
                TlsOutcome::Hostname(name, start_t) => {
                    Some((name, HostnameSource::TlsSni, start_t))
                }
                TlsOutcome::Incomplete => return, // flow stays pending
                TlsOutcome::Hidden => {
                    self.stats.hidden += 1;
                    self.flows.finish(&key);
                    None
                }
                TlsOutcome::Garbage => {
                    self.stats.parse_errors += 1;
                    self.stats.garbage += 1;
                    self.flows.finish(&key);
                    None
                }
                TlsOutcome::Overflow => {
                    self.stats.parse_errors += 1;
                    self.stats.reassembly_overflow += 1;
                    self.flows.finish(&key);
                    None
                }
            },
            // UDP is datagram-oriented: one shot, no reassembly.
            Transport::Udp if pkt.dst.port == 53 => {
                self.flows.finish(&key);
                if !self.harvest_dns {
                    return;
                }
                match dns::extract_qname(&pkt.payload) {
                    Ok(name) => Some((
                        name.to_ascii_lowercase(),
                        HostnameSource::DnsQuery,
                        pkt.t_ms,
                    )),
                    Err(e) => {
                        self.count_parse_failure(e);
                        None
                    }
                }
            }
            Transport::Udp => {
                self.flows.finish(&key);
                match quic::classify(&pkt.payload) {
                    Ok(quic::QuicPacketKind::Initial) => {
                        match quic::extract_sni_from_quic(&pkt.payload) {
                            Ok(Some(name)) => {
                                Some((name.to_ascii_lowercase(), HostnameSource::QuicSni, pkt.t_ms))
                            }
                            Ok(None) => {
                                self.stats.hidden += 1;
                                None
                            }
                            Err(e) => {
                                self.count_parse_failure(e);
                                None
                            }
                        }
                    }
                    // Mid-connection capture: Handshake/0-RTT/1-RTT/Retry
                    // packets carry no SNI by design — not an error.
                    Ok(_) => {
                        self.stats.skipped_non_initial += 1;
                        None
                    }
                    Err(e) => {
                        self.count_parse_failure(e);
                        None
                    }
                }
            }
        };
        if let Some((hostname, source, t_ms)) = recovered {
            match source {
                HostnameSource::TlsSni => self.stats.tls_sni += 1,
                HostnameSource::QuicSni => self.stats.quic_sni += 1,
                HostnameSource::DnsQuery => self.stats.dns_names += 1,
            }
            self.observations.push(Observation {
                t_ms,
                client_ip: pkt.src.ip,
                hostname,
                source,
            });
        }
    }

    /// Feed one TCP segment into the per-flow reassembly state.
    fn try_tls(&mut self, key: &FlowKey, pkt: &Packet) -> TlsOutcome {
        enum Parsed {
            Name(String),
            Hidden,
            Truncated,
            Garbage,
        }
        let mut buffered = self.pending.contains_key(key);
        // Parse against either the lone segment (fast path) or the
        // accumulated flow buffer; the borrow ends before we mutate state.
        let mut appended = 0usize;
        // The observation timestamp: the flow's first segment, not the
        // segment that completes the parse.
        let mut start_t = pkt.t_ms;
        let parsed = {
            let attempt: &[u8] = if buffered {
                match self.pending.get_mut(key) {
                    Some((buf, segments, first_t)) => {
                        buf.extend_from_slice(&pkt.payload);
                        *segments += 1;
                        appended = pkt.payload.len();
                        start_t = *first_t;
                        buf
                    }
                    None => {
                        // `contains_key` just said yes: unreachable in any
                        // execution we know of, but a counted fallback to
                        // the lone-segment path beats aborting the tap.
                        self.stats.reassembly_invariant += 1;
                        buffered = false;
                        &pkt.payload
                    }
                }
            } else {
                &pkt.payload
            };
            match tls::extract_sni(attempt) {
                Ok(Some(name)) => Parsed::Name(name.to_ascii_lowercase()),
                Ok(None) => Parsed::Hidden,
                Err(ParseError::Truncated) => Parsed::Truncated,
                Err(_) => Parsed::Garbage,
            }
        };
        self.pending_bytes += appended;
        match parsed {
            Parsed::Name(name) => {
                if buffered {
                    self.stats.reassembled += 1;
                    self.pending_remove(key);
                }
                self.flows.finish(key);
                TlsOutcome::Hostname(name, start_t)
            }
            Parsed::Hidden => {
                self.pending_remove(key);
                TlsOutcome::Hidden
            }
            Parsed::Truncated => {
                if buffered {
                    match self.pending.get(key) {
                        Some((buf, segments, _)) => {
                            if buf.len() > self.config.max_pending_bytes
                                || *segments >= self.config.max_pending_segments
                            {
                                self.pending_remove(key);
                                return TlsOutcome::Overflow;
                            }
                        }
                        None => {
                            // As above: the entry vanished between the
                            // append and the budget check. Count it and
                            // treat the flow as freshly abandoned.
                            self.stats.reassembly_invariant += 1;
                            return TlsOutcome::Overflow;
                        }
                    }
                    self.enforce_pending_caps(key);
                } else {
                    if pkt.payload.len() > self.config.max_pending_bytes {
                        return TlsOutcome::Overflow;
                    }
                    self.pending
                        .insert(*key, (pkt.payload.to_vec(), 1, pkt.t_ms));
                    self.pending_bytes += pkt.payload.len();
                    self.pending_order.push_back(*key);
                    self.enforce_pending_caps(key);
                }
                TlsOutcome::Incomplete
            }
            Parsed::Garbage => {
                self.pending_remove(key);
                TlsOutcome::Garbage
            }
        }
    }

    /// Consume a whole stream.
    pub fn process_stream<'a, I: IntoIterator<Item = &'a Packet>>(&mut self, packets: I) {
        for p in packets {
            self.process(p);
        }
    }

    /// Everything observed so far, in processing order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Drain the observations, leaving the observer running.
    pub fn take_observations(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.observations)
    }

    /// Group observations into per-client `(time, hostname)` sequences —
    /// the profiling algorithm's input. Clients are keyed by IP: behind a
    /// NAT, several users collapse into one sequence, exactly the §7.2
    /// confusion this substrate lets us quantify.
    pub fn per_client_sequences(&self) -> HashMap<u32, Vec<(u64, String)>> {
        let mut map: HashMap<u32, Vec<(u64, String)>> = HashMap::new();
        for o in &self.observations {
            map.entry(o.client_ip)
                .or_default()
                .push((o.t_ms, o.hostname.clone()));
        }
        for seq in map.values_mut() {
            seq.sort_by_key(|(t, _)| *t);
        }
        map
    }

    /// Counters.
    pub fn stats(&self) -> ObserverStats {
        self.stats
    }

    /// Flow-table counters.
    pub fn flow_stats(&self) -> crate::flow::FlowStats {
        self.flows.stats()
    }
}

impl Default for SniObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl ObserverStats {
    /// Sum of the failure-taxonomy counters; equals `parse_errors` by
    /// construction (checked by the chaos conformance suite).
    pub fn taxonomy_total(&self) -> u64 {
        self.truncated_records
            + self.bad_lengths
            + self.reassembly_overflow
            + self.evicted_mid_handshake
            + self.garbage
    }

    /// Fold another observer's counters into this one. Every field is a
    /// plain sum, so merging preserves the taxonomy invariant: if
    /// `parse_errors == taxonomy_total()` holds for both inputs it holds
    /// for the merge. The serving loop uses this to report one aggregate
    /// taxonomy across N per-lane observers.
    pub fn merge(&mut self, other: &ObserverStats) {
        self.packets += other.packets;
        self.tls_sni += other.tls_sni;
        self.quic_sni += other.quic_sni;
        self.dns_names += other.dns_names;
        self.hidden += other.hidden;
        self.parse_errors += other.parse_errors;
        self.reassembled += other.reassembled;
        self.skipped_non_initial += other.skipped_non_initial;
        self.truncated_records += other.truncated_records;
        self.bad_lengths += other.bad_lengths;
        self.reassembly_overflow += other.reassembly_overflow;
        self.evicted_mid_handshake += other.evicted_mid_handshake;
        self.garbage += other.garbage;
        self.reassembly_invariant += other.reassembly_invariant;
    }

    /// [`merge`](Self::merge) over any number of per-lane stats.
    pub fn merged<'a, I: IntoIterator<Item = &'a ObserverStats>>(lanes: I) -> ObserverStats {
        let mut total = ObserverStats::default();
        for s in lanes {
            total.merge(s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Endpoint;
    use crate::tls::ClientHello;
    use bytes::Bytes;

    fn tls_packet(t: u64, client_ip: u32, sport: u16, host: &str) -> Packet {
        Packet {
            t_ms: t,
            src: Endpoint::new(client_ip, sport),
            dst: Endpoint::new(0x0808_0808, 443),
            transport: Transport::Tcp,
            payload: Bytes::from(ClientHello::for_hostname(host).encode()),
        }
    }

    #[test]
    fn tls_sni_is_observed_once_per_flow() {
        let mut obs = SniObserver::new();
        obs.process(&tls_packet(0, 1, 5000, "espn.com"));
        // Subsequent data on the same flow must not re-count.
        let mut follow = tls_packet(5, 1, 5000, "espn.com");
        follow.payload = Bytes::from_static(&[23, 3, 3, 0, 1, 0]);
        obs.process(&follow);
        assert_eq!(obs.observations().len(), 1);
        assert_eq!(obs.observations()[0].hostname, "espn.com");
        assert_eq!(obs.stats().tls_sni, 1);
    }

    #[test]
    fn quic_and_dns_paths_work() {
        let mut obs = SniObserver::new().with_dns_harvesting();
        let quic_pkt = Packet {
            t_ms: 1,
            src: Endpoint::new(7, 40000),
            dst: Endpoint::new(9, 443),
            transport: Transport::Udp,
            payload: Bytes::from(crate::quic::InitialPacket::for_hostname("quic.example").encode()),
        };
        obs.process(&quic_pkt);
        let dns_pkt = Packet {
            t_ms: 2,
            src: Endpoint::new(7, 40001),
            dst: Endpoint::new(9, 53),
            transport: Transport::Udp,
            payload: Bytes::from(crate::dns::DnsQuery::for_hostname("dns.example").encode()),
        };
        obs.process(&dns_pkt);
        assert_eq!(obs.stats().quic_sni, 1);
        assert_eq!(obs.stats().dns_names, 1);
        let seqs = obs.per_client_sequences();
        assert_eq!(seqs[&7].len(), 2);
        assert_eq!(seqs[&7][0].1, "quic.example");
    }

    #[test]
    fn dns_is_ignored_without_harvesting() {
        let mut obs = SniObserver::new();
        let dns_pkt = Packet {
            t_ms: 2,
            src: Endpoint::new(7, 40001),
            dst: Endpoint::new(9, 53),
            transport: Transport::Udp,
            payload: Bytes::from(crate::dns::DnsQuery::for_hostname("dns.example").encode()),
        };
        obs.process(&dns_pkt);
        assert!(obs.observations().is_empty());
    }

    #[test]
    fn ech_counts_as_hidden_not_error() {
        let mut obs = SniObserver::new();
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 5000),
            dst: Endpoint::new(2, 443),
            transport: Transport::Tcp,
            payload: Bytes::from(ClientHello::with_ech(64).encode()),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().hidden, 1);
        assert_eq!(obs.stats().parse_errors, 0);
        assert!(obs.observations().is_empty());
    }

    #[test]
    fn garbage_counts_as_parse_error() {
        let mut obs = SniObserver::new();
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 5001),
            dst: Endpoint::new(2, 443),
            transport: Transport::Tcp,
            payload: Bytes::from_static(b"GET / HTTP/1.1\r\n"),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().parse_errors, 1);
        assert_eq!(obs.stats().garbage, 1);
        assert_eq!(obs.stats().taxonomy_total(), obs.stats().parse_errors);
    }

    #[test]
    fn sequences_are_time_sorted_per_client() {
        let mut obs = SniObserver::new();
        obs.process(&tls_packet(100, 1, 5000, "b.com"));
        obs.process(&tls_packet(50, 1, 5001, "a.com"));
        obs.process(&tls_packet(70, 2, 5002, "c.com"));
        let seqs = obs.per_client_sequences();
        let names: Vec<&str> = seqs[&1].iter().map(|(_, h)| h.as_str()).collect();
        assert_eq!(names, vec!["a.com", "b.com"]);
        assert_eq!(seqs[&2].len(), 1);
    }

    #[test]
    fn segmented_client_hello_is_reassembled() {
        let mut obs = SniObserver::new();
        let record = ClientHello::for_hostname("segmented.example").encode();
        let cuts = [record.len() / 3, 2 * record.len() / 3, record.len()];
        let mut prev = 0usize;
        for (i, &cut) in cuts.iter().enumerate() {
            let mut pkt = tls_packet(i as u64, 9, 7000, "ignored");
            pkt.payload = Bytes::from(record[prev..cut].to_vec());
            obs.process(&pkt);
            prev = cut;
        }
        assert_eq!(obs.observations().len(), 1);
        assert_eq!(obs.observations()[0].hostname, "segmented.example");
        assert_eq!(obs.stats().reassembled, 1);
        assert_eq!(obs.stats().parse_errors, 0);
        assert_eq!(obs.pending_bytes(), 0, "buffer reclaimed on completion");
        // A later data segment on the same flow is skipped.
        let mut follow = tls_packet(10, 9, 7000, "ignored");
        follow.payload = Bytes::from_static(&[23, 3, 3, 0, 1, 0]);
        obs.process(&follow);
        assert_eq!(obs.observations().len(), 1);
    }

    #[test]
    fn reassembly_budget_is_bounded() {
        let mut obs = SniObserver::new();
        // An endless stream of truncated-looking bytes on one flow: a
        // record header promising far more data than ever arrives.
        let mut header = vec![22u8, 3, 1, 0xff, 0xff];
        header.extend_from_slice(&[1, 0xff, 0xff, 0xff]);
        for i in 0..40u64 {
            let mut pkt = tls_packet(i, 3, 7100, "ignored");
            pkt.payload = if i == 0 {
                Bytes::from(header.clone())
            } else {
                Bytes::from(vec![0u8; 1024])
            };
            obs.process(&pkt);
        }
        assert_eq!(obs.stats().parse_errors, 1, "abandoned exactly once");
        assert_eq!(obs.stats().reassembly_overflow, 1);
        assert_eq!(obs.pending_bytes(), 0, "abandoned buffer reclaimed");
        assert!(obs.observations().is_empty());
    }

    #[test]
    fn pending_flow_cap_evicts_oldest_first() {
        let mut obs = SniObserver::with_config(ObserverConfig {
            max_pending_flows: 4,
            ..ObserverConfig::default()
        });
        // Five flows, each stuck mid-reassembly (record promises more).
        let header: &[u8] = &[22, 3, 1, 0x0f, 0xff, 1, 0x00, 0x0f, 0xf0];
        for sport in 0..5u16 {
            let mut pkt = tls_packet(sport as u64, 8, 9000 + sport, "ignored");
            pkt.payload = Bytes::from(header.to_vec());
            obs.process(&pkt);
        }
        assert_eq!(obs.pending_flows(), 4);
        assert_eq!(obs.stats().evicted_mid_handshake, 1);
        assert_eq!(obs.stats().parse_errors, 1);
        assert_eq!(obs.stats().taxonomy_total(), obs.stats().parse_errors);
    }

    #[test]
    fn total_pending_bytes_cap_is_enforced() {
        let mut obs = SniObserver::with_config(ObserverConfig {
            max_pending_bytes: 4096,
            max_total_pending_bytes: 8192,
            ..ObserverConfig::default()
        });
        let mut header = vec![22u8, 3, 1, 0x0f, 0xff, 1, 0x00, 0x0f, 0xf0];
        header.extend_from_slice(&vec![0u8; 2000]);
        for sport in 0..10u16 {
            let mut pkt = tls_packet(sport as u64, 8, 9100 + sport, "ignored");
            pkt.payload = Bytes::from(header.clone());
            obs.process(&pkt);
            assert!(
                obs.pending_bytes() <= 8192,
                "cap respected: {}",
                obs.pending_bytes()
            );
        }
        assert!(obs.stats().evicted_mid_handshake > 0);
    }

    #[test]
    fn interleaved_flows_reassemble_independently() {
        let mut obs = SniObserver::new();
        let rec_a = ClientHello::for_hostname("alpha.example").encode();
        let rec_b = ClientHello::for_hostname("beta.example").encode();
        let mid_a = rec_a.len() / 2;
        let mid_b = rec_b.len() / 2;
        let mut send = |t: u64, sport: u16, bytes: Vec<u8>| {
            let mut pkt = tls_packet(t, 4, sport, "ignored");
            pkt.payload = Bytes::from(bytes);
            obs.process(&pkt);
        };
        send(0, 8000, rec_a[..mid_a].to_vec());
        send(1, 8001, rec_b[..mid_b].to_vec());
        send(2, 8000, rec_a[mid_a..].to_vec());
        send(3, 8001, rec_b[mid_b..].to_vec());
        let names: Vec<&str> = obs
            .observations()
            .iter()
            .map(|o| o.hostname.as_str())
            .collect();
        assert_eq!(names, vec!["alpha.example", "beta.example"]);
        assert_eq!(obs.stats().reassembled, 2);
    }

    #[test]
    fn non_initial_quic_packets_are_skipped_not_errors() {
        let mut obs = SniObserver::new();
        // A 1-RTT short-header datagram as the first packet of a flow
        // (mid-connection capture).
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 6000),
            dst: Endpoint::new(2, 443),
            transport: Transport::Udp,
            payload: Bytes::from_static(&[0x41, 9, 9, 9, 9, 9]),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().skipped_non_initial, 1);
        assert_eq!(obs.stats().parse_errors, 0);
        // A Handshake long-header packet on another flow.
        let pkt2 = Packet {
            t_ms: 1,
            src: Endpoint::new(1, 6001),
            dst: Endpoint::new(2, 443),
            transport: Transport::Udp,
            payload: Bytes::from_static(&[0b1110_0000, 0, 0, 0, 1, 0, 0]),
        };
        obs.process(&pkt2);
        assert_eq!(obs.stats().skipped_non_initial, 2);
    }

    #[test]
    fn truncated_quic_initial_lands_in_truncated_bucket() {
        let mut obs = SniObserver::new();
        let full = crate::quic::InitialPacket::for_hostname("cutoff.example").encode();
        let pkt = Packet {
            t_ms: 0,
            src: Endpoint::new(1, 6100),
            dst: Endpoint::new(2, 443),
            transport: Transport::Udp,
            payload: Bytes::from(full[..full.len() / 2].to_vec()),
        };
        obs.process(&pkt);
        assert_eq!(obs.stats().parse_errors, 1);
        assert_eq!(obs.stats().truncated_records, 1);
        assert_eq!(obs.stats().taxonomy_total(), obs.stats().parse_errors);
    }

    #[test]
    fn idle_eviction_mid_handshake_reclaims_pending_bytes() {
        let mut obs = SniObserver::new();
        // One truncated segment, then the flow goes silent forever.
        let record = ClientHello::for_hostname("silent.example").encode();
        let mut stale = tls_packet(0, 5, 7300, "ignored");
        stale.payload = Bytes::from(record[..10].to_vec());
        obs.process(&stale);
        assert_eq!(obs.pending_bytes(), 10);
        // Push enough unrelated late traffic for amortized idle eviction
        // (every 1024 packets) to fire well past the 5-minute timeout.
        for i in 0..1100u64 {
            let mut tick = tls_packet(10_000_000 + i, 99, (1025 + (i % 20_000)) as u16, "x.com");
            tick.payload = Bytes::from_static(b"");
            obs.process(&tick);
        }
        assert_eq!(obs.pending_bytes(), 0, "evicted buffer reclaimed");
        assert_eq!(obs.stats().evicted_mid_handshake, 1);
        assert_eq!(obs.stats().taxonomy_total(), obs.stats().parse_errors);
    }

    #[test]
    fn port_reuse_does_not_inherit_stale_reassembly_bytes() {
        let mut obs = SniObserver::new();
        // First occupant of the 5-tuple: one truncated segment, then gone.
        let record = ClientHello::for_hostname("old-flow.example").encode();
        let mut stale = tls_packet(0, 5, 7200, "ignored");
        stale.payload = Bytes::from(record[..10].to_vec());
        obs.process(&stale);
        // The flow idles out of the table: amortized eviction runs every
        // 1024 packets, so push 1100 late, unrelated empty segments.
        for i in 0..1100u64 {
            let mut tick = tls_packet(10_000_000 + i, 99, (1025 + (i % 20_000)) as u16, "x.com");
            tick.payload = Bytes::from_static(b"");
            obs.process(&tick);
        }
        // …and a NEW connection reuses the same 5-tuple with a complete,
        // valid ClientHello. It must parse cleanly, not be appended to the
        // stale 10 bytes.
        let mut fresh = tls_packet(100_000_000, 5, 7200, "new-flow.example");
        fresh.payload = Bytes::from(ClientHello::for_hostname("new-flow.example").encode());
        obs.process(&fresh);
        assert!(
            obs.observations()
                .iter()
                .any(|o| o.hostname == "new-flow.example"),
            "fresh flow recovered: {:?}",
            obs.observations()
        );
        assert_eq!(obs.stats().reassembly_invariant, 0);
    }

    #[test]
    fn reassembled_observation_keeps_flow_start_time() {
        let mut obs = SniObserver::new();
        let record = ClientHello::for_hostname("slowstart.example").encode();
        let cuts = [record.len() / 3, 2 * record.len() / 3, record.len()];
        let mut prev = 0usize;
        // Segments at t = 100, 101, 102: the observation must be stamped
        // with the handshake's start (100), not its completion (102).
        for (i, &cut) in cuts.iter().enumerate() {
            let mut pkt = tls_packet(100 + i as u64, 9, 7400, "ignored");
            pkt.payload = Bytes::from(record[prev..cut].to_vec());
            obs.process(&pkt);
            prev = cut;
        }
        assert_eq!(obs.observations().len(), 1);
        assert_eq!(obs.observations()[0].t_ms, 100);
        assert_eq!(obs.observations()[0].hostname, "slowstart.example");
    }

    #[test]
    fn lane_stats_merge_preserves_taxonomy_invariant() {
        // Two observers accumulating *different* failure mixes, as two
        // ingest lanes of the serving loop would.
        let mut lane_a = SniObserver::new();
        let mut garbage = tls_packet(0, 1, 5100, "ignored");
        garbage.payload = Bytes::from_static(b"GET / HTTP/1.1\r\n");
        lane_a.process(&garbage);
        lane_a.process(&tls_packet(1, 1, 5101, "a.example"));

        let mut lane_b = SniObserver::new();
        let full = crate::quic::InitialPacket::for_hostname("cutoff.example").encode();
        let truncated = Packet {
            t_ms: 0,
            src: Endpoint::new(2, 6100),
            dst: Endpoint::new(9, 443),
            transport: Transport::Udp,
            payload: Bytes::from(full[..full.len() / 2].to_vec()),
        };
        lane_b.process(&truncated);

        for lane in [&lane_a, &lane_b] {
            assert_eq!(lane.stats().taxonomy_total(), lane.stats().parse_errors);
        }
        let merged = ObserverStats::merged([&lane_a.stats(), &lane_b.stats()]);
        assert_eq!(merged.parse_errors, 2);
        assert_eq!(merged.garbage, 1);
        assert_eq!(merged.truncated_records, 1);
        assert_eq!(
            merged.taxonomy_total(),
            merged.parse_errors,
            "invariant survives the lane merge"
        );
        assert_eq!(merged.packets, 3);
        assert_eq!(merged.tls_sni, 1);
    }

    #[test]
    fn take_observations_drains() {
        let mut obs = SniObserver::new();
        obs.process(&tls_packet(0, 1, 5000, "x.com"));
        assert_eq!(obs.take_observations().len(), 1);
        assert!(obs.observations().is_empty());
        assert_eq!(obs.stats().tls_sni, 1, "stats survive draining");
    }
}
