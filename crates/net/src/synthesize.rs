//! Traffic synthesis: request events → wire packets.
//!
//! The synthetic trace generator (`hostprof-synth`) produces abstract
//! `(time, client, hostname)` events; this module lowers them to actual
//! packets so the [`crate::observer::SniObserver`] exercises the same code
//! path a real eavesdropper would. Protocol choice (TLS-over-TCP vs QUIC),
//! optional leading DNS queries, ECH adoption and NAT aggregation are all
//! deterministic functions of the event, keeping experiments reproducible
//! without threading RNG state through the packet layer.

use crate::dns::DnsQuery;
use crate::packet::{Endpoint, Packet, Transport};
use crate::quic::InitialPacket;
use crate::tls::ClientHello;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// An abstract browsing event to lower onto the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// Event time, milliseconds.
    pub t_ms: u64,
    /// Abstract client id (e.g. a `UserId` index).
    pub client: u32,
    /// Requested hostname.
    pub hostname: String,
}

/// How abstract clients map to source IP addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Addressing {
    /// One IP per client — the WiFi/mobile-provider vantage point where
    /// MAC/IMSI separates users (§7.2).
    PerClient {
        /// First address of the client range.
        base_ip: u32,
    },
    /// `clients_per_ip` clients share each IP — the landline-ISP-behind-NAT
    /// vantage point that degrades profiling (§7.2).
    Nat {
        /// First address of the NAT pool.
        base_ip: u32,
        /// How many clients collapse into one address.
        clients_per_ip: u32,
    },
}

impl Addressing {
    /// Source IP of a client.
    pub fn client_ip(&self, client: u32) -> u32 {
        match *self {
            Addressing::PerClient { base_ip } => base_ip.wrapping_add(client),
            Addressing::Nat {
                base_ip,
                clients_per_ip,
            } => base_ip.wrapping_add(client / clients_per_ip.max(1)),
        }
    }
}

/// Lowers request events to packets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficSynthesizer {
    /// Client → IP mapping.
    pub addressing: Addressing,
    /// Fraction of connections using QUIC instead of TLS-over-TCP.
    pub quic_fraction: f64,
    /// Fraction of connections preceded by a plaintext DNS query.
    pub dns_fraction: f64,
    /// Fraction of TLS-over-TCP connections hiding the name with ECH.
    /// Applies to the TCP path only — to model full ECH adoption set
    /// `quic_fraction` to 0 as well (QUIC Initials here always carry a
    /// readable ClientHello), as `ObserverScenario::with_ech` does.
    pub ech_fraction: f64,
    /// Fraction of TLS connections whose ClientHello record is split
    /// across 2–3 TCP segments (exercises the observer's reassembly).
    pub tcp_fragment_fraction: f64,
    /// When set, DNS lookups use DoH: instead of a plaintext UDP/53 query
    /// the client opens a TLS connection to this resolver hostname — the
    /// observer sees only the resolver's SNI (§7.2's DoH/DoT point).
    pub doh_resolver: Option<String>,
}

impl Default for TrafficSynthesizer {
    fn default() -> Self {
        Self {
            addressing: Addressing::PerClient {
                base_ip: 0x0a00_0000,
            },
            quic_fraction: 0.25,
            dns_fraction: 0.0,
            ech_fraction: 0.0,
            tcp_fragment_fraction: 0.15,
            doh_resolver: None,
        }
    }
}

/// Per-event wire-behaviour override — the hook the defense layer uses
/// to force protocol choices for individual (client, hostname) events
/// without mutating synthesizer-wide fractions. The default override is
/// a no-op: [`TrafficSynthesizer::packets_for_host_with`] under
/// `WireOverride::default()` is bit-identical to
/// [`TrafficSynthesizer::packets_for_host`] (every salted threshold draw
/// is an independent pure function of the event, so skipping or forcing
/// one branch never perturbs another).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireOverride<'a> {
    /// Force this connection to hide its hostname with ECH (TCP path;
    /// also suppresses the QUIC branch, whose Initials here always carry
    /// a readable ClientHello).
    pub force_ech: bool,
    /// Force a leading DNS lookup regardless of `dns_fraction`.
    pub force_dns: bool,
    /// Resolver hostname for the forced/feature DNS lookup; when set the
    /// lookup travels over DoH (TLS to this resolver) even if the
    /// synthesizer itself has no `doh_resolver`.
    pub doh_resolver: Option<&'a str>,
}

/// SplitMix64: cheap deterministic per-event hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_hostname(hostname: &str) -> u64 {
    crate::wire::fnv1a(hostname.as_bytes())
}

impl TrafficSynthesizer {
    /// Lower one event to its packet(s): optionally a DNS query, then the
    /// connection's first payload (TLS record or QUIC Initial).
    pub fn packets_for(&self, ev: &RequestEvent) -> Vec<Packet> {
        self.packets_for_host(ev.t_ms, ev.client, &ev.hostname)
    }

    /// [`Self::packets_for`] with the event fields borrowed — the hot-path
    /// form: callers resolving hostnames out of an interned table lower a
    /// request without allocating a `RequestEvent` (and its owned
    /// `String`) per packet burst.
    pub fn packets_for_host(&self, t_ms: u64, client: u32, hostname: &str) -> Vec<Packet> {
        self.packets_for_host_with(t_ms, client, hostname, WireOverride::default())
    }

    /// [`Self::packets_for_host`] with a per-event [`WireOverride`]. The
    /// defense layer uses this to force ECH, DNS presence, or a DoH
    /// resolver for individual events; under the default override the
    /// output is bit-identical to the un-overridden path.
    pub fn packets_for_host_with(
        &self,
        t_ms: u64,
        client: u32,
        hostname: &str,
        ov: WireOverride<'_>,
    ) -> Vec<Packet> {
        let mut out = Vec::with_capacity(2);
        let hhash = hash_hostname(hostname);
        let ehash = splitmix64(
            hhash ^ splitmix64(t_ms) ^ (client as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
        );
        let src_ip = self.addressing.client_ip(client);
        // Ephemeral port: unique-ish per event so each request is its own
        // flow even from behind a NAT.
        let sport = 32_768 + (ehash % 28_000) as u16;
        let server_ip = 0x5000_0000 | (hhash as u32 & 0x00ff_ffff);

        let frac =
            |salt: u64| -> f64 { (splitmix64(ehash ^ salt) >> 11) as f64 / (1u64 << 53) as f64 };

        if ov.force_dns || frac(0xD45) < self.dns_fraction {
            let resolver: Option<&str> = ov.doh_resolver.or(self.doh_resolver.as_deref());
            match resolver {
                // DoH: the query travels inside TLS to the resolver; only
                // the resolver's own SNI is visible on the wire.
                Some(resolver) => out.push(Packet {
                    t_ms: t_ms.saturating_sub(15),
                    src: Endpoint::new(src_ip, sport.wrapping_sub(1).max(1024)),
                    dst: Endpoint::new(0x0808_0808, 443),
                    transport: Transport::Tcp,
                    payload: Bytes::from(ClientHello::for_hostname(resolver).encode()),
                }),
                None => out.push(Packet {
                    t_ms: t_ms.saturating_sub(15),
                    src: Endpoint::new(src_ip, sport.wrapping_sub(1).max(1024)),
                    dst: Endpoint::new(0x0808_0808, 53),
                    transport: Transport::Udp,
                    payload: Bytes::from(DnsQuery::for_hostname(hostname).encode()),
                }),
            }
        }

        if !ov.force_ech && frac(0x901C) < self.quic_fraction {
            out.push(Packet {
                t_ms,
                src: Endpoint::new(src_ip, sport),
                dst: Endpoint::new(server_ip, 443),
                transport: Transport::Udp,
                payload: Bytes::from(InitialPacket::for_hostname(hostname).encode()),
            });
        } else {
            let hello = if ov.force_ech || frac(0xEC4) < self.ech_fraction {
                ClientHello::with_ech(96)
            } else {
                ClientHello::for_hostname(hostname)
            };
            let record = hello.encode();
            let src_ep = Endpoint::new(src_ip, sport);
            let dst_ep = Endpoint::new(server_ip, 443);
            if frac(0xF7A6) < self.tcp_fragment_fraction && record.len() > 8 {
                // Split into 2 or 3 segments at deterministic cut points.
                let parts = 2 + (splitmix64(ehash ^ 0x5e6) % 2) as usize;
                let mut cuts: Vec<usize> = (1..parts)
                    .map(|k| {
                        let base = record.len() * k / parts;
                        // Jitter the cut a little so it rarely lands on a
                        // structure boundary.
                        (base + (splitmix64(ehash ^ k as u64) % 5) as usize)
                            .min(record.len() - 1)
                            .max(1)
                    })
                    .collect();
                cuts.push(record.len());
                cuts.sort_unstable();
                cuts.dedup();
                let mut prev = 0usize;
                for (i, &cut) in cuts.iter().enumerate() {
                    out.push(Packet {
                        t_ms: t_ms + i as u64,
                        src: src_ep,
                        dst: dst_ep,
                        transport: Transport::Tcp,
                        payload: Bytes::from(record[prev..cut].to_vec()),
                    });
                    prev = cut;
                }
            } else {
                out.push(Packet {
                    t_ms,
                    src: src_ep,
                    dst: dst_ep,
                    transport: Transport::Tcp,
                    payload: Bytes::from(record),
                });
            }
        }
        out
    }

    /// Lower a whole event stream, preserving time order.
    pub fn synthesize<'a, I>(&self, events: I) -> Vec<Packet>
    where
        I: IntoIterator<Item = &'a RequestEvent>,
    {
        let mut out: Vec<Packet> = events
            .into_iter()
            .flat_map(|ev| self.packets_for(ev))
            .collect();
        out.sort_by_key(|p| p.t_ms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::SniObserver;

    fn ev(t: u64, client: u32, host: &str) -> RequestEvent {
        RequestEvent {
            t_ms: t,
            client,
            hostname: host.to_string(),
        }
    }

    #[test]
    fn per_client_addressing_is_unique() {
        let a = Addressing::PerClient { base_ip: 100 };
        assert_eq!(a.client_ip(0), 100);
        assert_eq!(a.client_ip(5), 105);
    }

    #[test]
    fn nat_addressing_collapses_clients() {
        let a = Addressing::Nat {
            base_ip: 100,
            clients_per_ip: 4,
        };
        assert_eq!(a.client_ip(0), a.client_ip(3));
        assert_ne!(a.client_ip(3), a.client_ip(4));
    }

    #[test]
    fn synthesized_traffic_roundtrips_through_the_observer() {
        let synth = TrafficSynthesizer::default();
        let events: Vec<RequestEvent> = (0..200)
            .map(|i| {
                ev(
                    i * 10,
                    (i % 7) as u32,
                    &format!("site{}.example.com", i % 23),
                )
            })
            .collect();
        let packets = synth.synthesize(&events);
        let mut obs = SniObserver::new();
        obs.process_stream(&packets);
        // Every event leaks its hostname (no ECH, no DNS-only losses).
        assert_eq!(obs.observations().len(), events.len());
        let stats = obs.stats();
        assert!(stats.quic_sni > 0, "some connections use QUIC");
        assert!(stats.tls_sni > 0, "some connections use TCP TLS");
        assert_eq!(stats.parse_errors, 0);
    }

    #[test]
    fn ech_fraction_hides_hostnames() {
        let synth = TrafficSynthesizer {
            quic_fraction: 0.0,
            ech_fraction: 1.0,
            ..Default::default()
        };
        let packets = synth.synthesize(&[ev(0, 1, "secret.example")]);
        let mut obs = SniObserver::new();
        obs.process_stream(&packets);
        assert!(obs.observations().is_empty());
        assert_eq!(obs.stats().hidden, 1);
    }

    #[test]
    fn dns_fraction_emits_leading_queries() {
        let synth = TrafficSynthesizer {
            dns_fraction: 1.0,
            quic_fraction: 0.0,
            ..Default::default()
        };
        let packets = synth.synthesize(&[ev(100, 1, "lookup.example")]);
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].dst.port, 53);
        assert!(packets[0].t_ms <= packets[1].t_ms);
        let mut obs = SniObserver::new().with_dns_harvesting();
        obs.process_stream(&packets);
        assert_eq!(obs.stats().dns_names, 1);
        assert_eq!(obs.stats().tls_sni, 1);
    }

    #[test]
    fn fragmented_tls_still_roundtrips() {
        let synth = TrafficSynthesizer {
            quic_fraction: 0.0,
            tcp_fragment_fraction: 1.0,
            ..Default::default()
        };
        let events: Vec<RequestEvent> = (0..100)
            .map(|i| ev(i * 10, 1, &format!("frag{i}.example.com")))
            .collect();
        let packets = synth.synthesize(&events);
        assert!(packets.len() > events.len(), "records were split");
        let mut obs = SniObserver::new();
        obs.process_stream(&packets);
        assert_eq!(obs.observations().len(), events.len());
        assert_eq!(obs.stats().parse_errors, 0);
        assert_eq!(obs.stats().reassembled as usize, events.len());
    }

    #[test]
    fn doh_hides_query_names_behind_the_resolver() {
        let synth = TrafficSynthesizer {
            dns_fraction: 1.0,
            quic_fraction: 0.0,
            ech_fraction: 1.0, // the page connections hide their names too
            doh_resolver: Some("dns.resolver.example".to_string()),
            ..Default::default()
        };
        let packets = synth.synthesize(&[ev(100, 1, "secret.example")]);
        let mut obs = SniObserver::new().with_dns_harvesting();
        obs.process_stream(&packets);
        // The only hostname visible is the resolver's.
        let names: Vec<&str> = obs
            .observations()
            .iter()
            .map(|o| o.hostname.as_str())
            .collect();
        assert_eq!(names, vec!["dns.resolver.example"]);
        assert_eq!(obs.stats().dns_names, 0, "no plaintext DNS on the wire");
    }

    #[test]
    fn default_override_is_bit_identical() {
        let synth = TrafficSynthesizer::default();
        for i in 0..500u64 {
            let host = format!("site{}.example.com", i % 31);
            assert_eq!(
                synth.packets_for_host(i * 7, (i % 9) as u32, &host),
                synth.packets_for_host_with(i * 7, (i % 9) as u32, &host, WireOverride::default()),
            );
        }
    }

    #[test]
    fn force_ech_hides_the_hostname_even_on_quic_events() {
        let synth = TrafficSynthesizer {
            quic_fraction: 1.0,
            ..Default::default()
        };
        let ov = WireOverride {
            force_ech: true,
            ..Default::default()
        };
        let packets = synth.packets_for_host_with(0, 1, "secret.example", ov);
        let mut obs = SniObserver::new();
        obs.process_stream(&packets);
        assert!(obs.observations().is_empty());
        assert_eq!(obs.stats().hidden, 1, "forced ECH overrides QUIC");
    }

    #[test]
    fn force_dns_with_doh_resolver_leaks_only_the_resolver() {
        let synth = TrafficSynthesizer {
            quic_fraction: 0.0,
            ..Default::default()
        };
        let ov = WireOverride {
            force_ech: true,
            force_dns: true,
            doh_resolver: Some("doh.defense.example"),
        };
        let packets = synth.packets_for_host_with(100, 1, "secret.example", ov);
        let mut obs = SniObserver::new().with_dns_harvesting();
        obs.process_stream(&packets);
        let names: Vec<&str> = obs
            .observations()
            .iter()
            .map(|o| o.hostname.as_str())
            .collect();
        assert_eq!(names, vec!["doh.defense.example"]);
        assert_eq!(obs.stats().dns_names, 0, "no plaintext DNS on the wire");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let synth = TrafficSynthesizer::default();
        let events = vec![ev(0, 1, "a.com"), ev(10, 2, "b.com")];
        assert_eq!(synth.synthesize(&events), synth.synthesize(&events));
    }

    #[test]
    fn nat_merges_sequences_at_the_observer() {
        let synth = TrafficSynthesizer {
            addressing: Addressing::Nat {
                base_ip: 50,
                clients_per_ip: 2,
            },
            quic_fraction: 0.0,
            ..Default::default()
        };
        let events = vec![ev(0, 0, "a.com"), ev(10, 1, "b.com"), ev(20, 2, "c.com")];
        let packets = synth.synthesize(&events);
        let mut obs = SniObserver::new();
        obs.process_stream(&packets);
        let seqs = obs.per_client_sequences();
        assert_eq!(seqs.len(), 2, "clients 0 and 1 share an IP");
        assert_eq!(seqs[&50].len(), 2);
        assert_eq!(seqs[&51].len(), 1);
    }
}
