//! End-to-end tests of the `hostprof` CLI binary.
//!
//! Uses `CARGO_BIN_EXE_hostprof` (provided by Cargo for integration tests)
//! to drive the real executable through the train → query → profile →
//! observe → replay workflow.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hostprof(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hostprof"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hostprof-cli-{}-{name}", std::process::id()))
}

#[test]
fn help_and_unknown_commands() {
    let out = hostprof(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));

    let out = hostprof(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = hostprof(&[]);
    assert!(!out.status.success());
}

#[test]
fn train_similar_profile_workflow() {
    let model = temp("model.json");
    let out = hostprof(&["train", "--scale", "tiny", "--out", model.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("trained"));
    assert!(model.exists());

    // Query similarity for a core host every trace contains.
    let out = hostprof(&[
        "similar",
        "--model",
        model.to_str().unwrap(),
        "--host",
        "socialbook.com",
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.lines().count() >= 3, "{text}");

    // An unknown hostname is a clean error.
    let out = hostprof(&[
        "similar",
        "--model",
        model.to_str().unwrap(),
        "--host",
        "never-seen.example",
    ]);
    assert!(!out.status.success());

    // Profile a user from the same deterministic scenario.
    let out = hostprof(&[
        "profile",
        "--scale",
        "tiny",
        "--model",
        model.to_str().unwrap(),
        "--user",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("ground-truth cosine"));

    // Out-of-range user is a clean error.
    let out = hostprof(&[
        "profile",
        "--scale",
        "tiny",
        "--model",
        model.to_str().unwrap(),
        "--user",
        "99999",
    ]);
    assert!(!out.status.success());

    // The same profile through the IVF index: must run and say so.
    let out = hostprof(&[
        "profile",
        "--scale",
        "tiny",
        "--model",
        model.to_str().unwrap(),
        "--user",
        "0",
        "--index",
        "ivf",
        "--nprobe",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("(ivf knn)"), "{text}");
    assert!(text.contains("ground-truth cosine"), "{text}");

    // --nprobe without --index ivf, and a bogus index name, fail cleanly.
    let out = hostprof(&[
        "profile",
        "--scale",
        "tiny",
        "--model",
        model.to_str().unwrap(),
        "--user",
        "0",
        "--nprobe",
        "4",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--index ivf"));
    let out = hostprof(&[
        "profile",
        "--scale",
        "tiny",
        "--model",
        model.to_str().unwrap(),
        "--user",
        "0",
        "--index",
        "annoy",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown index"));

    let _ = std::fs::remove_file(model);
}

#[test]
fn observe_save_replay_roundtrip() {
    let cap = temp("capture.hpcap");
    let out = hostprof(&[
        "observe",
        "--scale",
        "tiny",
        "--days",
        "1",
        "--users",
        "5",
        "--save",
        cap.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let live = stdout(&out);
    assert!(live.contains("hostnames recovered   : 100.0%"), "{live}");
    assert!(cap.exists());

    let out = hostprof(&["replay", "--capture", cap.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let replayed = stdout(&out);
    assert!(replayed.contains("clients seen"), "{replayed}");
    // Same packet count live and offline.
    let live_packets: u64 = live
        .lines()
        .find(|l| l.contains("packets"))
        .and_then(|l| l.split(',').next_back())
        .and_then(|l| l.split_whitespace().next_back())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let _ = live_packets; // formats differ; presence checks above suffice
    let _ = std::fs::remove_file(cap);
}

#[test]
fn unknown_options_fail_loudly() {
    let out = hostprof(&["train", "--scael", "tiny", "--out", "/tmp/never.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option --scael"));
}

#[test]
fn serve_live_smoke() {
    let out = hostprof(&[
        "serve",
        "--scale",
        "tiny",
        "--users",
        "8",
        "--pps",
        "300",
        "--duration",
        "1200",
        "--lanes",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("packets ingested"), "{text}");
    assert!(text.contains("report latency"), "{text}");
    assert!(text.contains("sustained ingest"), "{text}");

    // Flag errors are loud, not silent defaults.
    let out = hostprof(&["serve", "--scale", "tiny", "--bogus", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option --bogus"));
    let out = hostprof(&["serve", "--scale", "tiny", "--pps", "not-a-number"]);
    assert!(!out.status.success());
}

#[test]
fn serve_golden_streaming_conformance() {
    // The streaming path must reproduce the batch-blessed goldens; 4
    // lanes exercises the sharded ingest merge.
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let out = hostprof(&["serve", "--golden", golden, "--seed", "1", "--lanes", "4"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("bit-identical"), "{}", stdout(&out));

    // A missing golden is a clean error pointing at the blessing flow.
    let out = hostprof(&["serve", "--golden", golden, "--seed", "424242"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bless"));
}

#[test]
fn observe_with_countermeasures() {
    let out = hostprof(&[
        "observe", "--scale", "tiny", "--days", "1", "--users", "5", "--ech", "1.0",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("hostnames recovered   : 0.0%"));

    let out = hostprof(&[
        "observe", "--scale", "tiny", "--days", "1", "--users", "6", "--nat", "3",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("client addresses seen : 2"));
}
