//! Bootstrap confidence intervals.
//!
//! The paper reports point CTRs (0.217 % vs 0.168 %) and a t-test; a
//! percentile bootstrap over the per-user paired differences gives the
//! experiment binaries a confidence interval for the CTR *difference* —
//! a more informative summary of the same data.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower percentile bound.
    pub lo: f64,
    /// Point estimate (mean of the observed sample).
    pub point: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval excludes zero (a significance-flavored read).
    pub fn excludes_zero(&self) -> bool {
        (self.lo > 0.0 && self.hi > 0.0) || (self.lo < 0.0 && self.hi < 0.0)
    }
}

/// Percentile bootstrap CI for the mean of `sample`.
///
/// Returns `None` on an empty sample.
///
/// # Panics
/// Panics unless `0 < level < 1` and `resamples > 0`.
pub fn bootstrap_mean_ci(
    sample: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    assert!(resamples > 0, "need at least one resample");
    if sample.is_empty() {
        return None;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = sample.len();
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += sample[rng.gen_range(0..n)];
            }
            acc / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let tail = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * tail).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - tail)).ceil() as usize).min(resamples - 1);
    Some(ConfidenceInterval {
        lo: means[lo_idx],
        point: sample.iter().sum::<f64>() / n as f64,
        hi: means[hi_idx],
        level,
    })
}

/// Bootstrap CI for the mean *paired difference* `a[i] − b[i]`.
///
/// # Panics
/// Panics when the samples have different lengths.
pub fn bootstrap_paired_diff_ci(
    a: &[f64],
    b: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    assert_eq!(a.len(), b.len(), "paired bootstrap needs equal lengths");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    bootstrap_mean_ci(&diffs, level, resamples, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_point_estimate() {
        let sample: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&sample, 0.95, 2000, 1).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!((ci.point - 4.5).abs() < 1e-9);
        // With 200 fairly-uniform points the CI is tight around 4.5.
        assert!(ci.hi - ci.lo < 1.0, "width {}", ci.hi - ci.lo);
    }

    #[test]
    fn clear_shift_excludes_zero_and_noise_does_not() {
        let a: Vec<f64> = (0..100).map(|i| 5.0 + (i % 7) as f64 * 0.1).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 1.0).collect();
        let shifted = bootstrap_paired_diff_ci(&a, &b, 0.95, 1000, 2).unwrap();
        assert!(shifted.excludes_zero());
        assert!(shifted.lo > 0.9 && shifted.hi < 1.1);

        // Alternating ±1 differences center on zero.
        let c: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let zeros = vec![0.0; 100];
        let noisy = bootstrap_paired_diff_ci(&c, &zeros, 0.95, 1000, 3).unwrap();
        assert!(!noisy.excludes_zero(), "{noisy:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let sample = [1.0, 2.0, 3.0, 4.0];
        let a = bootstrap_mean_ci(&sample, 0.9, 500, 7).unwrap();
        let b = bootstrap_mean_ci(&sample, 0.9, 500, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(bootstrap_mean_ci(&[], 0.95, 100, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "level")]
    fn invalid_level_panics() {
        let _ = bootstrap_mean_ci(&[1.0], 1.5, 100, 1);
    }
}
