//! The synthetic user population.
//!
//! Each user carries a ground-truth interest vector over the 328 harmonized
//! categories — the quantity the paper can never observe but that our
//! synthetic setting exposes for validation — plus behavioral parameters
//! (activity level) used by the trace generator.

use crate::config::PopulationConfig;
use crate::ids::UserId;
use crate::sampling::{dirichlet, log_normal, WeightedIndex};
use crate::world::World;
use hostprof_ontology::{CategoryId, CategoryVector, TopCategoryId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One synthetic participant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserProfile {
    /// Stable identifier (== index into `Population::users`).
    pub id: UserId,
    /// Ground-truth interests over the harmonized categories; weights in
    /// `[0, 1]` with the strongest interest at 1.0.
    pub interests: CategoryVector,
    /// The user's top-level interest topics with sampling weights
    /// (sums to 1); the trace generator walks these.
    pub topics: Vec<(TopCategoryId, f64)>,
    /// Expected browsing sessions per day.
    pub sessions_per_day: f64,
}

impl UserProfile {
    /// Sample one of the user's interest topics.
    pub fn sample_topic<R: Rng + ?Sized>(&self, rng: &mut R) -> TopCategoryId {
        let weights: Vec<f64> = self.topics.iter().map(|(_, w)| *w).collect();
        match WeightedIndex::new(&weights) {
            Some(s) => self.topics[s.sample(rng)].0,
            None => self.topics[0].0,
        }
    }

    /// Ground-truth affinity of this user for a category vector: cosine
    /// between interests and the vector. Used by the click model and by
    /// profile-accuracy validation.
    pub fn affinity(&self, categories: &CategoryVector) -> f32 {
        self.interests.cosine(categories)
    }
}

/// The whole population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    users: Vec<UserProfile>,
}

impl Population {
    /// Generate a population against a world. Deterministic per config.
    pub fn generate(world: &World, config: &PopulationConfig) -> Self {
        assert!(config.interests_min >= 1);
        assert!(config.interests_max >= config.interests_min);
        let hierarchy = world.hierarchy();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Topic prevalence mirrors the world's site distribution so users
        // want things the synthetic web actually offers.
        let topic_weights: Vec<f64> = hierarchy
            .top_ids()
            .map(|t| 1.0 + world.sites_of_topic(t).len() as f64)
            .collect();

        let mut users = Vec::with_capacity(config.num_users);
        for i in 0..config.num_users {
            let k = rng.gen_range(config.interests_min..=config.interests_max);
            // Sample k distinct topics, prevalence-weighted.
            let mut chosen: Vec<TopCategoryId> = Vec::with_capacity(k);
            let mut weights = topic_weights.clone();
            for _ in 0..k.min(hierarchy.num_top()) {
                let Some(s) = WeightedIndex::new(&weights) else {
                    break;
                };
                let t = s.sample(&mut rng);
                chosen.push(TopCategoryId(t as u8));
                weights[t] = 0.0;
            }
            let alphas = vec![config.interest_alpha; chosen.len()];
            let shares = dirichlet(&mut rng, &alphas);
            let topics: Vec<(TopCategoryId, f64)> =
                chosen.iter().copied().zip(shares.iter().copied()).collect();

            // Spread each topic's share over a few of its subcategories to
            // form the ground-truth interest vector.
            let mut pairs: Vec<(CategoryId, f32)> = Vec::new();
            for &(t, share) in &topics {
                let kids = hierarchy.children_of_top(t);
                let n_sub = if kids.is_empty() {
                    0
                } else {
                    rng.gen_range(1..=kids.len().min(4))
                };
                pairs.push((hierarchy.top_level_category(t), (share * 0.8) as f32));
                for _ in 0..n_sub {
                    let c = kids[rng.gen_range(0..kids.len())];
                    pairs.push((c, (share * (0.4 + rng.gen::<f64>() * 0.6)) as f32));
                }
            }
            // Normalize so the strongest interest is 1.0.
            let max_w = pairs.iter().map(|(_, w)| *w).fold(0.0f32, f32::max);
            let interests = if max_w > 0.0 {
                CategoryVector::from_pairs(pairs.into_iter().map(|(c, w)| (c, w / max_w)).collect())
            } else {
                CategoryVector::from_pairs(pairs)
            };

            let sessions_per_day = log_normal(
                &mut rng,
                config.sessions_per_day_median.ln(),
                config.sessions_per_day_sigma,
            )
            .clamp(0.2, 30.0);

            users.push(UserProfile {
                id: UserId(i as u32),
                interests,
                topics,
                sessions_per_day,
            });
        }
        Self { users }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// User by id.
    ///
    /// # Panics
    /// Panics when the id is not from this population.
    pub fn user(&self, id: UserId) -> &UserProfile {
        &self.users[id.index()]
    }

    /// All users in id order.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn setup() -> (World, Population) {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        (world, pop)
    }

    #[test]
    fn population_has_requested_size_and_valid_profiles() {
        let (_, pop) = setup();
        assert_eq!(pop.len(), PopulationConfig::tiny().num_users);
        let cfg = PopulationConfig::tiny();
        for u in pop.users() {
            assert!(!u.interests.is_empty());
            assert!(u.topics.len() >= cfg.interests_min.min(34));
            assert!(u.topics.len() <= cfg.interests_max);
            let share_sum: f64 = u.topics.iter().map(|(_, w)| w).sum();
            assert!((share_sum - 1.0).abs() < 1e-9, "topic shares sum to 1");
            assert!(u.sessions_per_day > 0.0);
            // Strongest interest normalized to 1.
            let max_w = u.interests.iter().map(|(_, w)| w).fold(0.0f32, f32::max);
            assert!((max_w - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn topics_are_distinct_per_user() {
        let (_, pop) = setup();
        for u in pop.users() {
            let mut ts: Vec<_> = u.topics.iter().map(|(t, _)| *t).collect();
            ts.sort();
            ts.dedup();
            assert_eq!(ts.len(), u.topics.len());
        }
    }

    #[test]
    fn users_differ_from_each_other() {
        let (_, pop) = setup();
        let a = &pop.users()[0];
        let distinct = pop
            .users()
            .iter()
            .skip(1)
            .filter(|u| u.interests != a.interests)
            .count();
        assert!(distinct >= pop.len() - 2, "interest vectors are diverse");
    }

    #[test]
    fn affinity_is_high_for_own_interests_and_low_for_disjoint() {
        let (_, pop) = setup();
        let u = &pop.users()[0];
        assert!((u.affinity(&u.interests) - 1.0).abs() < 1e-6);
        // A category the user has no weight on.
        let missing = (0..328u16)
            .map(CategoryId)
            .find(|c| u.interests.get(*c) == 0.0)
            .expect("no user covers all 328 categories");
        assert_eq!(u.affinity(&CategoryVector::singleton(missing)), 0.0);
    }

    #[test]
    fn sample_topic_returns_own_topics() {
        let (_, pop) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let u = &pop.users()[3];
        let own: std::collections::HashSet<_> = u.topics.iter().map(|(t, _)| *t).collect();
        for _ in 0..50 {
            assert!(own.contains(&u.sample_topic(&mut rng)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let world = World::generate(&WorldConfig::tiny());
        let a = Population::generate(&world, &PopulationConfig::tiny());
        let b = Population::generate(&world, &PopulationConfig::tiny());
        for (x, y) in a.users().iter().zip(b.users()) {
            assert_eq!(x.interests, y.interests);
            assert_eq!(x.sessions_per_day, y.sessions_per_day);
        }
    }
}
