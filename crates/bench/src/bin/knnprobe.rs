//! Micro-probe separating the profiling hot path into its stages: a raw
//! naive dot scan (the seed's floor), the tiled kernel single-query and
//! batched, and a full end-to-end `profile` call. Useful when tuning the
//! kernel — the throughput bench (`bench_profiling`) only shows totals.

use hostprof::scenario::Scenario;
use hostprof_bench::Scale;
use hostprof_core::{Profiler, ProfilerConfig};
use std::time::Instant;

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..s.trace.days().saturating_sub(1) {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("corpus");
    println!("vocab={} dim={}", embeddings.len(), embeddings.dim());
    let dim = embeddings.dim();
    let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();

    let reps = 2000;
    // Seed naive scan (dot only, no heap).
    let norms: Vec<f32> = (0..embeddings.len())
        .map(|i| {
            let v = embeddings.vector_by_index(i as u32);
            dot(v, v).sqrt()
        })
        .collect();
    let t = Instant::now();
    let mut acc = 0f32;
    for _ in 0..reps {
        for (i, norm) in norms.iter().enumerate() {
            let v = embeddings.vector_by_index(i as u32);
            acc += dot(&q, v) / norm;
        }
    }
    println!(
        "seed dot scan: {:.1} us/scan (acc {acc})",
        t.elapsed().as_secs_f64() * 1e6 / reps as f64
    );

    // Full seed scan incl heap = from earlier bench. Now new kernel single:
    let mut scratch = hostprof_embed::KnnScratch::new();
    let t = Instant::now();
    let mut n_out = 0usize;
    for _ in 0..reps {
        n_out += embeddings
            .nearest_to_vector_with(&q, 1000, &mut scratch)
            .len();
    }
    println!(
        "tiled single: {:.1} us/scan ({n_out})",
        t.elapsed().as_secs_f64() * 1e6 / reps as f64
    );

    // Batched 32 queries.
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|k| (0..dim).map(|i| ((i + k) as f32 * 0.37).sin()).collect())
        .collect();
    let t = Instant::now();
    let mut n_out = 0usize;
    for _ in 0..reps / 32 {
        n_out += embeddings
            .nearest_to_vectors_with(&queries, 1000, &mut scratch)
            .iter()
            .map(Vec::len)
            .sum::<usize>();
    }
    println!(
        "tiled batch32: {:.1} us/query ({n_out})",
        t.elapsed().as_secs_f64() * 1e6 / ((reps / 32) * 32) as f64
    );

    // Full profile for comparison.
    let profiler = Profiler::new(&embeddings, s.world.ontology(), ProfilerConfig::default());
    let user = s.population.users()[0].id;
    let w = s.session_hostnames(user, 1);
    let session = hostprof_core::Session::from_window(
        w.iter().map(String::as_str),
        Some(pipeline.blocklist()),
    );
    let t = Instant::now();
    let mut cnt = 0;
    for _ in 0..reps {
        cnt += profiler.profile(&session).is_some() as u32;
    }
    println!(
        "full profile: {:.1} us ({cnt})",
        t.elapsed().as_secs_f64() * 1e6 / reps as f64
    );
}
