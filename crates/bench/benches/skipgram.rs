//! SKIPGRAM training throughput (tokens/second) and the Hogwild speedup —
//! backing the paper's "fully parallelizable, scales to line rate" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hostprof_embed::{KernelChoice, SkipGram, SkipGramConfig, Vocab};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A topical corpus: 40 topics × 50 hostnames, sessions stay on topic.
fn corpus(sequences: usize) -> Vec<Vec<String>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    (0..sequences)
        .map(|_| {
            let topic = rng.gen_range(0..40);
            let len = rng.gen_range(5..20);
            (0..len)
                .map(|_| format!("t{topic}-host{}.com", rng.gen_range(0..50)))
                .collect()
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let data = corpus(2000);
    let tokens: u64 = data.iter().map(|s| s.len() as u64).sum();
    let mut g = c.benchmark_group("skipgram_train");
    g.sample_size(10);
    g.throughput(Throughput::Elements(tokens));
    for threads in [1usize, 4, 8] {
        for (kname, kernel) in [
            ("scalar", KernelChoice::Scalar),
            ("simd", KernelChoice::Simd),
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("{kname}_threads"), threads),
                &threads,
                |b, &threads| {
                    let cfg = SkipGramConfig {
                        dim: 100,
                        epochs: 1,
                        threads,
                        subsample: 0.0,
                        kernel,
                        ..SkipGramConfig::default()
                    };
                    b.iter(|| SkipGram::train(&data, &cfg).unwrap().dim())
                },
            );
        }
    }
    g.finish();
}

fn bench_vocab_build(c: &mut Criterion) {
    let data = corpus(2000);
    let tokens: u64 = data.iter().map(|s| s.len() as u64).sum();
    let mut g = c.benchmark_group("vocab");
    g.throughput(Throughput::Elements(tokens));
    g.bench_function("build", |b| {
        b.iter(|| Vocab::build(data.iter().map(|s| s.iter().map(String::as_str)), 1, 1e-3).len())
    });
    g.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let data = corpus(2000);
    let cfg = SkipGramConfig {
        dim: 100,
        epochs: 2,
        subsample: 0.0,
        ..SkipGramConfig::default()
    };
    let emb = SkipGram::train(&data, &cfg).unwrap().into_embeddings();
    let query = emb.vector_by_index(0).to_vec();
    let mut g = c.benchmark_group("similarity");
    g.throughput(Throughput::Elements(emb.len() as u64));
    g.bench_function(format!("nearest_1000_of_{}", emb.len()), |b| {
        b.iter(|| emb.nearest_to_vector(&query, 1000).len())
    });
    g.finish();
}

criterion_group!(benches, bench_training, bench_vocab_build, bench_similarity);
criterion_main!(benches);
