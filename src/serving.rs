//! Live serving-loop driver: calibrated synthetic load through the
//! [`ServeEngine`].
//!
//! `hostprof serve` (live mode) and the `loadgen` bench binary share this
//! driver so they measure the identical path: draw requests from the lazy
//! [`TraceStream`], lower them to wire packets, push every packet through
//! the sharded ingest → window → profile loop, and record per-tick compute
//! latency. The request rate is *calibrated*, not assumed — a warmup
//! segment of the stream measures requests per simulated second and
//! packets per request, and the per-user think time is scaled to hit the
//! target packet rate. The warmup doubles as the SKIPGRAM training corpus
//! so the engine profiles against a model of the same traffic it serves.

use hostprof_core::{
    ModelVersion, Pipeline, PipelineConfig, ServeConfig, ServeEngine, VersionedModel,
};
use hostprof_embed::{CorpusBuffer, EmbeddingSet, SkipGram};
use hostprof_net::{ObserverStats, TrafficSynthesizer};
use hostprof_synth::{Population, StreamConfig, TraceStream, World};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Knobs of one live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveRunConfig {
    /// Stream seed (per-user generators derive from it).
    pub seed: u64,
    /// Target packets per *simulated* second.
    pub target_pps: f64,
    /// Simulated horizon, seconds.
    pub duration_s: u64,
    /// Ingest lanes.
    pub lanes: usize,
    /// Profiler worker threads.
    pub threads: usize,
    /// `Some(n)`: retrain incrementally every `n` report ticks on the
    /// windows served since the last update, and hot-swap the new model
    /// in as a fresh version (the version bundle — unit-norm kNN copy
    /// included — builds on a dedicated thread; ingest never stalls).
    /// `None`: serve one fixed model for the whole run.
    pub update_every: Option<u64>,
}

/// What a live run measured.
#[derive(Debug, Clone)]
pub struct LiveRunReport {
    /// Calibrated per-user think time that hits the target rate.
    pub mean_gap_ms: u64,
    /// Measured wire packets per request during warmup.
    pub packets_per_request: f64,
    /// Engine counters.
    pub stats: hostprof_core::ServeStats,
    /// Observer counters merged across lanes.
    pub observer: ObserverStats,
    /// Events dropped beyond the lateness bound.
    pub late_dropped: u64,
    /// High-water mark of buffered windower events.
    pub peak_resident_events: usize,
    /// Distinct hostnames interned by the windower.
    pub interned_hosts: usize,
    /// Heap bytes held by the windower's interned hostname table.
    pub interned_table_bytes: usize,
    /// Per-report compute latency, milliseconds, ascending.
    pub latencies_ms: Vec<f64>,
    /// Wall-seconds inside `ingest_packet` + flush (tick compute runs
    /// inline on the ingest thread, so it is included).
    pub ingest_seconds: f64,
    /// Wall-seconds for the whole measured loop, generation included.
    pub wall_seconds: f64,
    /// Incremental updates applied (0 when `update_every` is `None`).
    pub updates_applied: u64,
    /// Vocabulary size of the initially trained model.
    pub base_vocab: usize,
    /// Vocabulary size after the last incremental update.
    pub final_vocab: usize,
    /// Per-swap build+publish latency (builder thread, build start to
    /// atomic store), milliseconds, ascending.
    pub publish_latencies_ms: Vec<f64>,
}

impl LiveRunReport {
    /// Sustained packets per wall-second through the engine.
    pub fn sustained_pps(&self) -> f64 {
        self.stats.packets as f64 / self.ingest_seconds.max(1e-9)
    }

    /// Latency percentile (nearest rank) in milliseconds; 0 when no
    /// report fired.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ms.len() - 1) as f64 * q).round() as usize;
        self.latencies_ms[idx.min(self.latencies_ms.len() - 1)]
    }

    /// Whether the merged lane error taxonomy stayed exhaustive.
    pub fn taxonomy_invariant_ok(&self) -> bool {
        self.observer.parse_errors == self.observer.taxonomy_total()
    }
}

/// Run a calibrated live load through the full serving loop.
///
/// Deterministic in its simulated behavior per `(world, population,
/// config)`; only the wall-clock measurements vary run to run.
pub fn run_live(
    world: &World,
    population: &Population,
    pipeline_config: &PipelineConfig,
    run: &LiveRunConfig,
) -> Result<LiveRunReport, String> {
    if run.target_pps <= 0.0 || run.duration_s == 0 || run.lanes == 0 {
        return Err("target_pps, duration_s and lanes must be positive".into());
    }
    let synth = TrafficSynthesizer::default();

    // Warmup segment at a coarse gap: measures the request rate and the
    // packet multiplier, and collects per-user hostname sequences as the
    // training corpus.
    let gap0: u64 = 60_000;
    let warmup_requests = (population.len() * 60).max(4_000);
    let stream_cfg = StreamConfig {
        seed: run.seed,
        mean_gap_ms: gap0,
        ..StreamConfig::default()
    };
    let mut corpus_by_user: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut warmup_span_ms = 0u64;
    let mut warmup_packets = 0usize;
    for r in TraceStream::new(world, population, stream_cfg).take(warmup_requests) {
        warmup_span_ms = warmup_span_ms.max(r.t_ms);
        let hostname = world.hostname(r.host);
        warmup_packets += synth.packets_for_host(r.t_ms, r.user.0, hostname).len();
        corpus_by_user
            .entry(r.user.0)
            .or_default()
            .push(hostname.to_string());
    }
    let corpus: Vec<Vec<String>> = corpus_by_user.into_values().collect();
    let packets_per_request = warmup_packets as f64 / warmup_requests.max(1) as f64;
    let req_per_simsec = warmup_requests as f64 / (warmup_span_ms.max(1) as f64 / 1000.0);
    // Rate scales as 1/gap; clamp so pathological targets stay sane.
    let mean_gap_ms = ((gap0 as f64 * req_per_simsec * packets_per_request / run.target_pps)
        as u64)
        .clamp(2, 3_600_000);

    let pipeline = Pipeline::new(pipeline_config.clone(), world.blocklist().clone());
    let duration_ms = run.duration_s * 1000;
    let run_cfg = StreamConfig {
        mean_gap_ms,
        ..stream_cfg
    };
    let serve_config = ServeConfig {
        lanes: run.lanes,
        session_window_ms: pipeline.config().session_window_ms(),
        report_interval_ms: pipeline.config().report_interval_ms(),
        collect_windows: run.update_every.is_some(),
        ..ServeConfig::default()
    };

    if let Some(every) = run.update_every {
        return run_live_updating(
            world,
            population,
            pipeline_config,
            run,
            &pipeline,
            &corpus,
            serve_config,
            run_cfg,
            duration_ms,
            mean_gap_ms,
            packets_per_request,
            every.max(1),
        );
    }

    let embeddings = pipeline.train_model(&corpus)?;
    let ontology = world.ontology();
    let profiler = pipeline.batch_profiler(&embeddings, ontology, run.threads.max(1));
    let mut engine = ServeEngine::new(serve_config, profiler, Some(pipeline.blocklist()));

    // The measured loop: a fresh stream at the calibrated gap until the
    // simulated horizon.
    let wall_started = Instant::now();
    let mut ingest_time = Duration::ZERO;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for r in TraceStream::new(world, population, run_cfg) {
        if r.t_ms > duration_ms {
            break;
        }
        // Borrowed hostname straight from the world table — the measured
        // loop allocates nothing per request beyond the packets themselves.
        let packets = synth.packets_for_host(r.t_ms, r.user.0, world.hostname(r.host));
        for pkt in &packets {
            let t = Instant::now();
            let ticks = engine.ingest_packet(pkt);
            ingest_time += t.elapsed();
            for tick in ticks {
                latencies_ms.push(tick.compute_micros as f64 / 1000.0);
            }
        }
    }
    let t = Instant::now();
    for tick in engine.flush() {
        latencies_ms.push(tick.compute_micros as f64 / 1000.0);
    }
    ingest_time += t.elapsed();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));

    let vocab = embeddings.len();
    Ok(LiveRunReport {
        mean_gap_ms,
        packets_per_request,
        stats: engine.stats(),
        observer: engine.observer_stats(),
        late_dropped: engine.windower().late_dropped(),
        peak_resident_events: engine.windower().peak_resident_events(),
        interned_hosts: engine.windower().interned_hosts(),
        interned_table_bytes: engine.windower().interned_table_bytes(),
        latencies_ms,
        ingest_seconds: ingest_time.as_secs_f64(),
        wall_seconds: wall_started.elapsed().as_secs_f64(),
        updates_applied: 0,
        base_vocab: vocab,
        final_vocab: vocab,
        publish_latencies_ms: Vec::new(),
    })
}

/// Retained sessions in the online trainer's reservoir.
const UPDATE_BUFFER_CAPACITY: usize = 4096;
/// Recency bias of the reservoir: < 1 tilts retention toward the recent
/// past, which is the point of updating at all.
const UPDATE_BUFFER_BIAS: f64 = 0.5;

/// The `--update-every N` serving loop (DESIGN.md §14): the engine serves
/// through a [`VersionedModel`]; every `N` fired ticks the closed windows
/// are harvested into a decayed reservoir, the live [`SkipGram`] resumes
/// SGD over the reservoir (growing its vocabulary in place), and the new
/// weights are shipped to a dedicated builder thread that assembles the
/// version bundle — labeled tables, unit-norm kNN copy, any IVF — and
/// publishes it with one atomic store. Ingest never waits on a build;
/// a tick fired mid-build simply serves the previous version.
#[allow(clippy::too_many_arguments)]
fn run_live_updating(
    world: &World,
    population: &Population,
    pipeline_config: &PipelineConfig,
    run: &LiveRunConfig,
    pipeline: &Pipeline,
    corpus: &[Vec<String>],
    serve_config: ServeConfig,
    run_cfg: StreamConfig,
    duration_ms: u64,
    mean_gap_ms: u64,
    packets_per_request: f64,
    every: u64,
) -> Result<LiveRunReport, String> {
    let synth = TrafficSynthesizer::default();
    let mut model = SkipGram::train(corpus, &pipeline_config.skipgram)?;
    let base_vocab = model.vocab().len();
    let ontology = Arc::new(world.ontology().clone());
    let versioned = VersionedModel::new(ModelVersion::build(
        1,
        model.embeddings(),
        Arc::clone(&ontology),
        pipeline_config.profiler.clone(),
    ));
    let mut buffer = CorpusBuffer::new(
        UPDATE_BUFFER_CAPACITY,
        UPDATE_BUFFER_BIAS,
        run.seed ^ 0x00c0_4b05,
    );
    let publish_ms: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let mut updates_applied = 0u64;

    let report = std::thread::scope(|scope| -> Result<LiveRunReport, String> {
        // One builder thread serializes version builds, so publishes land
        // in seq order even when updates outpace builds.
        let (tx, rx) = mpsc::channel::<(u64, EmbeddingSet)>();
        {
            let versioned = &versioned;
            let publish_ms = &publish_ms;
            let ontology = Arc::clone(&ontology);
            let profiler_config = pipeline_config.profiler.clone();
            scope.spawn(move || {
                for (seq, embeddings) in rx {
                    let t = Instant::now();
                    versioned.publish(ModelVersion::build(
                        seq,
                        embeddings,
                        Arc::clone(&ontology),
                        profiler_config.clone(),
                    ));
                    publish_ms
                        .lock()
                        .expect("publish latency lock")
                        .push(t.elapsed().as_secs_f64() * 1000.0);
                }
            });
        }

        let mut engine = ServeEngine::with_versioned(
            serve_config,
            &versioned,
            run.threads.max(1),
            Some(pipeline.blocklist()),
        );
        let wall_started = Instant::now();
        let mut ingest_time = Duration::ZERO;
        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut ticks_since_update = 0u64;
        let mut next_seq = 2u64;
        for r in TraceStream::new(world, population, run_cfg) {
            if r.t_ms > duration_ms {
                break;
            }
            let packets = synth.packets_for_host(r.t_ms, r.user.0, world.hostname(r.host));
            for pkt in &packets {
                let t = Instant::now();
                let ticks = engine.ingest_packet(pkt);
                ingest_time += t.elapsed();
                let mut due = false;
                for tick in ticks {
                    latencies_ms.push(tick.compute_micros as f64 / 1000.0);
                    ticks_since_update += 1;
                    if ticks_since_update >= every {
                        ticks_since_update = 0;
                        due = true;
                    }
                }
                if due {
                    for close in engine.take_closed_windows() {
                        buffer.push(close.window);
                    }
                    if !buffer.is_empty() {
                        // Resume SGD on the ingest thread (bounded by the
                        // reservoir), then hand the weights to the builder;
                        // serving continues on the old version meanwhile.
                        model.update(buffer.sessions());
                        updates_applied += 1;
                        let seq = next_seq;
                        next_seq += 1;
                        tx.send((seq, model.embeddings()))
                            .expect("builder thread alive");
                    }
                }
            }
        }
        let t = Instant::now();
        for tick in engine.flush() {
            latencies_ms.push(tick.compute_micros as f64 / 1000.0);
        }
        ingest_time += t.elapsed();
        drop(tx); // builder drains its queue and exits; scope joins it
        latencies_ms.sort_by(|a, b| a.total_cmp(b));

        Ok(LiveRunReport {
            mean_gap_ms,
            packets_per_request,
            stats: engine.stats(),
            observer: engine.observer_stats(),
            late_dropped: engine.windower().late_dropped(),
            peak_resident_events: engine.windower().peak_resident_events(),
            interned_hosts: engine.windower().interned_hosts(),
            interned_table_bytes: engine.windower().interned_table_bytes(),
            latencies_ms,
            ingest_seconds: ingest_time.as_secs_f64(),
            wall_seconds: wall_started.elapsed().as_secs_f64(),
            updates_applied,
            base_vocab,
            final_vocab: 0, // filled in below, after the builder joins
            publish_latencies_ms: Vec::new(), // likewise
        })
    });
    let mut report = report?;
    report.final_vocab = model.vocab().len();
    let mut publish = publish_ms.into_inner().expect("publish latency lock");
    publish.sort_by(|a, b| a.total_cmp(b));
    report.publish_latencies_ms = publish;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_synth::{PopulationConfig, WorldConfig};

    #[test]
    fn live_run_profiles_users_and_keeps_the_taxonomy_invariant() {
        let world = World::generate(&WorldConfig::tiny());
        let population = Population::generate(
            &world,
            &PopulationConfig {
                num_users: 12,
                ..PopulationConfig::tiny()
            },
        );
        let cfg = crate::scenario::ScenarioConfig::tiny().pipeline;
        let report = run_live(
            &world,
            &population,
            &cfg,
            &LiveRunConfig {
                seed: 7,
                target_pps: 200.0,
                duration_s: 1_800,
                lanes: 2,
                threads: 1,
                update_every: None,
            },
        )
        .expect("live run");
        assert!(report.stats.packets > 0);
        assert!(report.stats.observations > 0);
        assert!(report.stats.ticks > 0, "no report tick fired");
        assert!(report.stats.profiles_emitted > 0, "nobody got profiled");
        assert!(report.taxonomy_invariant_ok());
        assert!(report.interned_hosts > 0, "windower interned no hostnames");
        assert!(report.interned_table_bytes > 0);
        assert!(!report.latencies_ms.is_empty());
        assert!(report.latency_percentile_ms(0.5) <= report.latency_percentile_ms(0.95));
        // The calibrated rate should land within 3x of the target — the
        // stream is stochastic, the calibration linear.
        let achieved = report.stats.packets as f64 / report.stats.ticks.max(1) as f64;
        assert!(achieved > 0.0);
    }

    #[test]
    fn updating_run_applies_updates_and_grows_the_vocab() {
        let world = World::generate(&WorldConfig::tiny());
        let population = Population::generate(
            &world,
            &PopulationConfig {
                num_users: 12,
                ..PopulationConfig::tiny()
            },
        );
        let cfg = crate::scenario::ScenarioConfig::tiny().pipeline;
        let report = run_live(
            &world,
            &population,
            &cfg,
            &LiveRunConfig {
                seed: 7,
                target_pps: 200.0,
                duration_s: 1_800,
                lanes: 2,
                threads: 1,
                update_every: Some(2),
            },
        )
        .expect("updating live run");
        assert!(report.stats.ticks > 0, "no report tick fired");
        assert!(report.stats.profiles_emitted > 0, "nobody got profiled");
        assert!(
            report.updates_applied > 0,
            "expected at least one incremental update over {} ticks",
            report.stats.ticks
        );
        assert_eq!(
            report.updates_applied as usize,
            report.publish_latencies_ms.len(),
            "every update must publish exactly one version"
        );
        assert!(report.base_vocab > 0);
        assert!(
            report.final_vocab >= report.base_vocab,
            "vocab growth is append-only: {} -> {}",
            report.base_vocab,
            report.final_vocab
        );
        assert!(report
            .publish_latencies_ms
            .iter()
            .all(|ms| ms.is_finite() && *ms >= 0.0));
    }

    #[test]
    fn rejects_degenerate_configs() {
        let world = World::generate(&WorldConfig::tiny());
        let population = Population::generate(&world, &PopulationConfig::tiny());
        let cfg = crate::scenario::ScenarioConfig::tiny().pipeline;
        for bad in [
            LiveRunConfig {
                seed: 1,
                target_pps: 0.0,
                duration_s: 10,
                lanes: 1,
                threads: 1,
                update_every: None,
            },
            LiveRunConfig {
                seed: 1,
                target_pps: 100.0,
                duration_s: 0,
                lanes: 1,
                threads: 1,
                update_every: None,
            },
            LiveRunConfig {
                seed: 1,
                target_pps: 100.0,
                duration_s: 10,
                lanes: 0,
                threads: 1,
                update_every: None,
            },
        ] {
            assert!(run_live(&world, &population, &cfg, &bad).is_err());
        }
    }
}
