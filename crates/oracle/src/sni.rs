//! Naive SNI recovery from TLS ClientHello records and QUIC Initial
//! packets (§4.1: the observer's only hostname source).
//!
//! Deliberately simple byte walking with explicit offsets — no zero-copy
//! reader abstraction. Returns `Option<String>`: `None` means "no name
//! recoverable", collapsing absent (ECH, no extension), hidden, and
//! malformed/truncated inputs. The driver compares this against the
//! production parsers with `Result::ok().flatten()` applied, i.e. the
//! property under test is *which hostname an observer writes down*, never
//! fabricating one from bytes the strict parser rejects.

/// Read a big-endian u16 at `at`, if in bounds.
fn be16(bytes: &[u8], at: usize) -> Option<usize> {
    let hi = *bytes.get(at)? as usize;
    let lo = *bytes.get(at + 1)? as usize;
    Some(hi << 8 | lo)
}

/// Extract the server name from one TLS record holding a ClientHello.
pub fn tls_sni(record: &[u8]) -> Option<String> {
    // Record header: type 22 (handshake), version major 0x03, length.
    if *record.first()? != 22 || *record.get(1)? != 0x03 {
        return None;
    }
    record.get(2)?; // version minor, any value
    let rec_len = be16(record, 3)?;
    let record = record.get(5..5 + rec_len)?;

    // Handshake header: type 1 (ClientHello), 24-bit body length.
    if *record.first()? != 1 {
        return None;
    }
    let body_len = (*record.get(1)? as usize) << 16
        | (*record.get(2)? as usize) << 8
        | *record.get(3)? as usize;
    let body = record.get(4..4 + body_len)?;

    // Fixed fields: version(2) random(32) session_id(1+n) suites(2+n)
    // compression(1+n).
    let mut at = 2 + 32;
    at += 1 + *body.get(at)? as usize;
    at += 2 + be16(body, at)?;
    at += 1 + *body.get(at)? as usize;

    // Extensions are optional: a body ending here simply has none.
    if at == body.len() {
        return None;
    }
    let ext_total = be16(body, at)?;
    let exts = body.get(at + 2..at + 2 + ext_total)?;
    sni_from_extensions(exts)
}

/// Walk a TLS extensions block for extension type 0 (server_name).
fn sni_from_extensions(exts: &[u8]) -> Option<String> {
    let mut at = 0;
    while at < exts.len() {
        let ext_type = be16(exts, at)?;
        let ext_len = be16(exts, at + 2)?;
        let data = exts.get(at + 4..at + 4 + ext_len)?;
        if ext_type == 0 {
            return sni_extension_name(data);
        }
        at += 4 + ext_len;
    }
    None
}

/// Decode the first DNS hostname entry of a server_name extension.
fn sni_extension_name(data: &[u8]) -> Option<String> {
    let list_len = be16(data, 0)?;
    let list = data.get(2..2 + list_len)?;
    let mut at = 0;
    while at < list.len() {
        let name_type = *list.get(at)?;
        let name_len = be16(list, at + 1)?;
        let name = list.get(at + 3..at + 3 + name_len)?;
        if name_type == 0 {
            let s = std::str::from_utf8(name).ok()?;
            if !s.bytes().all(|b| b.is_ascii_graphic()) {
                return None;
            }
            return Some(s.to_string());
        }
        at += 3 + name_len;
    }
    None
}

/// Decode one QUIC variable-length integer at `at`; returns (value,
/// bytes consumed).
fn varint(bytes: &[u8], at: usize) -> Option<(u64, usize)> {
    let first = *bytes.get(at)?;
    let extra = match first >> 6 {
        0 => 0usize,
        1 => 1,
        2 => 3,
        _ => 7,
    };
    let mut v = (first & 0x3f) as u64;
    for i in 0..extra {
        v = v << 8 | *bytes.get(at + 1 + i)? as u64;
    }
    Some((v, 1 + extra))
}

/// Extract the server name from one QUIC v1 Initial packet: reassemble
/// the CRYPTO stream, then parse the ClientHello inside it.
pub fn quic_sni(datagram: &[u8]) -> Option<String> {
    let first = *datagram.first()?;
    // Long header, packet type Initial (bits 5-4 == 0), version 1.
    if first & 0x80 == 0 || (first >> 4) & 0b11 != 0 {
        return None;
    }
    let version = u32::from_be_bytes(datagram.get(1..5)?.try_into().ok()?);
    if version != 1 {
        return None;
    }
    let mut at = 5;
    for _ in 0..2 {
        // DCID then SCID: 1-byte length (≤ 20) + bytes.
        let cid_len = *datagram.get(at)? as usize;
        if cid_len > 20 {
            return None;
        }
        datagram.get(at + 1..at + 1 + cid_len)?;
        at += 1 + cid_len;
    }
    let (token_len, used) = varint(datagram, at)?;
    at += used + token_len as usize;
    let (payload_len, used) = varint(datagram, at)?;
    at += used;
    let payload = datagram.get(at..at + payload_len as usize)?;

    // Collect CRYPTO frame segments, then require a gapless stream.
    let mut segments: Vec<(u64, &[u8])> = Vec::new();
    let mut at = 0;
    while at < payload.len() {
        let (frame_type, used) = varint(payload, at)?;
        at += used;
        match frame_type {
            0x00 | 0x01 => {} // PADDING / PING
            0x06 => {
                let (offset, used) = varint(payload, at)?;
                at += used;
                let (len, used) = varint(payload, at)?;
                at += used;
                segments.push((offset, payload.get(at..at + len as usize)?));
                at += len as usize;
            }
            _ => return None, // not expected in a cleartext Initial
        }
    }
    segments.sort_by_key(|&(off, _)| off);
    let mut crypto = Vec::new();
    for (off, seg) in segments {
        if off as usize != crypto.len() {
            return None; // gap or overlap
        }
        crypto.extend_from_slice(seg);
    }

    // The crypto stream is a handshake message (no record layer): type 1,
    // u24 length, ClientHello body. Reuse the TLS walker by prepending a
    // synthetic record header.
    if crypto.len() > u16::MAX as usize {
        return None;
    }
    let mut record = vec![22, 0x03, 0x01];
    record.extend_from_slice(&(crypto.len() as u16).to_be_bytes());
    record.extend_from_slice(&crypto);
    tls_sni(&record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_net::quic::InitialPacket;
    use hostprof_net::tls::ClientHello;

    #[test]
    fn recovers_name_from_encoded_hello() {
        let rec = ClientHello::for_hostname("shop.example.org").encode();
        assert_eq!(tls_sni(&rec).as_deref(), Some("shop.example.org"));
    }

    #[test]
    fn ech_hello_yields_no_name() {
        let rec = ClientHello::with_ech(128).encode();
        assert_eq!(tls_sni(&rec), None);
    }

    #[test]
    fn truncation_never_fabricates_a_name() {
        let rec = ClientHello::for_hostname("cdn.video.example").encode();
        for cut in 0..rec.len() {
            assert_eq!(tls_sni(&rec[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn recovers_name_from_quic_initial() {
        let pkt = InitialPacket::for_hostname("api.maps.example").encode();
        assert_eq!(quic_sni(&pkt).as_deref(), Some("api.maps.example"));
    }

    #[test]
    fn quic_truncation_never_fabricates() {
        let pkt = InitialPacket::for_hostname("api.maps.example").encode();
        // The packet is padded to 1200 bytes; any cut that drops CRYPTO
        // bytes (or splits the frame) must not produce a name. Cuts that
        // only strip trailing PADDING legitimately still parse.
        for cut in 0..60 {
            assert_eq!(quic_sni(&pkt[..cut]), None, "cut at {cut}");
        }
    }
}
