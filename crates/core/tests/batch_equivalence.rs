//! Property tests pinning the batched profiling engine to the
//! single-session path: for every generated world and every session,
//! [`BatchProfiler`] must return **bit-for-bit** what
//! [`Profiler::profile`] returns, at every thread count.

use hostprof_core::{
    Aggregation, BatchProfiler, Profiler, ProfilerConfig, Session, SessionProfile,
};
use hostprof_embed::{EmbeddingSet, Vocab};
use hostprof_ontology::{CategoryId, CategoryVector, Ontology};
use proptest::prelude::*;

/// Deterministic f32 stream in `[-1, 1)` (splitmix64-based), so vector
/// contents vary with the sampled seed without a dependent-size strategy.
struct F32Stream(u64);

impl F32Stream {
    fn next(&mut self) -> f32 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        ((z >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
    }
}

fn host_name(i: usize) -> String {
    format!("host{i}.example")
}

/// Build a world from sampled knobs: `n_hosts` in-vocabulary hostnames
/// with seeded random vectors, an ontology labeling some in- and some
/// out-of-vocabulary hosts, and sessions mixing known and unknown names.
#[allow(clippy::type_complexity)]
fn build_world(
    dim: usize,
    n_hosts: usize,
    seed: u64,
    labels: &[(usize, u16, u16)],
    sessions: &[Vec<usize>],
) -> (EmbeddingSet, Ontology, Vec<Session>) {
    let hosts: Vec<String> = (0..n_hosts).map(host_name).collect();
    let vocab = Vocab::build(std::iter::once(hosts.iter().map(String::as_str)), 1, 0.0);
    let mut stream = F32Stream(seed);
    let vectors: Vec<f32> = (0..vocab.len() * dim).map(|_| stream.next()).collect();
    let embeddings = EmbeddingSet::new(dim, vocab, vectors);

    let mut ontology = Ontology::new();
    for &(host, cat_a, cat_b) in labels {
        // Indices past the vocabulary label hosts the model never saw.
        let name = host_name(host);
        ontology.insert(
            &name,
            CategoryVector::from_pairs(vec![(CategoryId(cat_a), 1.0), (CategoryId(cat_b), 0.5)]),
        );
    }

    let sessions: Vec<Session> = sessions
        .iter()
        .map(|hosts| {
            let names: Vec<String> = hosts.iter().map(|&h| host_name(h)).collect();
            Session::from_window(names.iter().map(String::as_str), None)
        })
        .collect();
    (embeddings, ontology, sessions)
}

/// Exact-bits comparison: `PartialEq` on f32 would already fail on any
/// value drift, but bit comparison additionally distinguishes `-0.0` from
/// `0.0` and is the acceptance bar the batched engine promises.
fn assert_bit_identical(
    a: &Option<SessionProfile>,
    b: &Option<SessionProfile>,
) -> Result<(), String> {
    match (a, b) {
        (None, None) => Ok(()),
        (Some(x), Some(y)) => {
            if x.labeled_in_session != y.labeled_in_session
                || x.labeled_neighbors != y.labeled_neighbors
            {
                return Err(format!("count mismatch: {x:?} vs {y:?}"));
            }
            let xv: Vec<u32> = x.session_vector.iter().map(|v| v.to_bits()).collect();
            let yv: Vec<u32> = y.session_vector.iter().map(|v| v.to_bits()).collect();
            if xv != yv {
                return Err(format!("session vector bits differ: {x:?} vs {y:?}"));
            }
            let xc: Vec<(CategoryId, u32)> =
                x.categories.iter().map(|(c, w)| (c, w.to_bits())).collect();
            let yc: Vec<(CategoryId, u32)> =
                y.categories.iter().map(|(c, w)| (c, w.to_bits())).collect();
            if xc != yc {
                return Err(format!("category bits differ: {x:?} vs {y:?}"));
            }
            Ok(())
        }
        _ => Err(format!("presence mismatch: {a:?} vs {b:?}")),
    }
}

proptest! {
    #[test]
    fn batch_profiler_is_bit_identical_to_sequential_profiling(
        dim in 2usize..6,
        n_hosts in 2usize..16,
        seed in any::<u64>(),
        // Host indices past `n_hosts` become out-of-vocabulary (and, for
        // labels, out-of-vocabulary-but-labeled) hosts.
        labels in proptest::collection::vec((0usize..20, 0u16..40, 0u16..40), 0..12),
        sessions in proptest::collection::vec(
            proptest::collection::vec(0usize..24, 0..8),
            0..10,
        ),
        n_neighbors in 1usize..40,
        agg_pick in 0u8..3,
    ) {
        let (embeddings, ontology, sessions) =
            build_world(dim, n_hosts, seed, &labels, &sessions);
        let config = ProfilerConfig {
            n_neighbors,
            aggregation: match agg_pick {
                0 => Aggregation::Mean,
                1 => Aggregation::Recency { half_life: 1 + (seed % 5) as usize },
                _ => Aggregation::InverseFrequency,
            },
            ..Default::default()
        };
        let reference: Vec<Option<SessionProfile>> = {
            let profiler = Profiler::new(&embeddings, &ontology, config.clone());
            sessions.iter().map(|s| profiler.profile(s)).collect()
        };
        for threads in [1usize, 2, 3, 5, 8] {
            let batch = BatchProfiler::new(
                Profiler::new(&embeddings, &ontology, config.clone()),
                threads,
            );
            let got = batch.profile_sessions(&sessions);
            prop_assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                if let Err(e) = assert_bit_identical(g, r) {
                    return Err(format!("threads={threads}: {e}"));
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_profiling(
        dim in 2usize..5,
        n_hosts in 2usize..12,
        seed in any::<u64>(),
        labels in proptest::collection::vec((0usize..14, 0u16..30, 0u16..30), 0..8),
        sessions in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 0..6),
            1..8,
        ),
    ) {
        let (embeddings, ontology, sessions) =
            build_world(dim, n_hosts, seed, &labels, &sessions);
        let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig {
            n_neighbors: 10,
            ..Default::default()
        });
        let mut scratch = hostprof_core::ProfileScratch::new();
        for session in &sessions {
            let fresh = profiler.profile(session);
            let reused = profiler.profile_with_scratch(session, &mut scratch);
            assert_bit_identical(&fresh, &reused)?;
        }
    }
}
