//! The synthetic hostname universe.
//!
//! A [`World`] holds every host a user could contact, each with a kind,
//! a ground-truth category vector, a popularity score, and — for content
//! sites — a dependency list of CDN/API/tracker hosts that fire alongside
//! page visits. It also carries the derived observable artifacts: the
//! partial-coverage [`Ontology`] and the tracker [`Blocklist`].

use crate::config::WorldConfig;
use crate::ids::HostId;
use crate::names::{NameGenerator, CORE_SITE_NAMES};
use crate::sampling::{WeightedIndex, Zipf};
use hostprof_ontology::{
    Blocklist, BlocklistProvider, CategoryId, CategoryVector, Hierarchy, Ontology, TopCategoryId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What role a hostname plays in the synthetic web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostKind {
    /// A topical content site — the profiling signal.
    Site,
    /// A content-delivery host co-requested with the sites it serves.
    Cdn,
    /// An API endpoint, partially topic-affine (`api.bkng.azure.com`).
    Api,
    /// A tracker or ad server; carries no interest signal.
    Tracker,
    /// An ultra-popular host visited by everyone (google/facebook
    /// analogues); topically near-useless.
    Core,
}

/// One hostname in the universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    /// Stable identifier (== index into `World::hosts`).
    pub id: HostId,
    /// The wire-visible hostname.
    pub name: String,
    /// Role in the synthetic web.
    pub kind: HostKind,
    /// Ground-truth interest categories of the content behind this host.
    /// Empty for trackers.
    pub categories: CategoryVector,
    /// Primary top-level topic, when the host has one.
    pub top_topic: Option<TopCategoryId>,
    /// Relative visit popularity (sums to ~1 over sites+core).
    pub popularity: f64,
    /// Hosts that fire a request when this one is visited (sites only).
    pub deps: Vec<HostId>,
    /// Whether a single visit opens many connections (streaming/video),
    /// exercising the profiler's first-visit deduplication.
    pub interactive: bool,
}

/// The generated universe plus derived observable artifacts.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    hierarchy: Hierarchy,
    hosts: Vec<Host>,
    by_name: HashMap<String, HostId>,
    /// Site ids grouped by primary top-level topic.
    sites_by_topic: Vec<Vec<HostId>>,
    /// Popularity-weighted samplers aligned with `sites_by_topic`.
    topic_samplers: Vec<Option<WeightedIndex>>,
    core_ids: Vec<HostId>,
    core_sampler: Option<WeightedIndex>,
    ontology: Ontology,
    blocklist: Blocklist,
}

impl World {
    /// Generate a world from a config. Deterministic per config.
    pub fn generate(config: &WorldConfig) -> Self {
        let hierarchy = Hierarchy::adwords_like();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut names = NameGenerator::new();
        let mut hosts: Vec<Host> = Vec::with_capacity(config.total_hosts());

        // --- Core hosts -------------------------------------------------
        // Every core host gets 2–4 of the "universal" top-level categories;
        // the same small pool is reused so that, like the paper's finding,
        // all users end up sharing a core set of ~14 categories.
        let universal: Vec<CategoryId> = [
            "Online Communities",
            "Arts & Entertainment",
            "People & Society",
            "Internet & Telecom",
            "Computers & Electronics",
            "News",
            "Reference",
            "Shopping",
            "Jobs & Education",
            "Games",
        ]
        .iter()
        .filter_map(|n| {
            hierarchy
                .top_ids()
                .find(|t| hierarchy.top_name(*t) == *n)
                .map(|t| hierarchy.top_level_category(t))
        })
        .collect();
        for (k, core_name) in CORE_SITE_NAMES.iter().enumerate() {
            let id = HostId(hosts.len() as u32);
            let n_cats = 2 + (k % 3);
            let cats: Vec<(CategoryId, f32)> = (0..n_cats)
                .map(|j| (universal[(k + j * 3) % universal.len()], 0.9))
                .collect();
            let primary_top = hierarchy.top_of(cats[0].0);
            hosts.push(Host {
                id,
                name: names.reserve(core_name),
                kind: HostKind::Core,
                categories: CategoryVector::from_pairs(cats),
                top_topic: Some(primary_top),
                popularity: 0.0, // assigned below
                deps: Vec::new(),
                interactive: k % 4 == 0,
            });
        }

        // --- Content sites ----------------------------------------------
        // Topic prevalence: bushier topics host more of the web.
        let topic_weights: Vec<f64> = hierarchy
            .top_ids()
            .map(|t| 1.0 + hierarchy.children_of_top(t).len() as f64)
            .collect();
        let topic_sampler = WeightedIndex::new(&topic_weights).expect("topic weights are positive");
        for _ in 0..config.num_sites {
            let id = HostId(hosts.len() as u32);
            let top = TopCategoryId(topic_sampler.sample(&mut rng) as u8);
            let kids = hierarchy.children_of_top(top);
            let primary = if kids.is_empty() || rng.gen_bool(0.2) {
                hierarchy.top_level_category(top)
            } else {
                kids[rng.gen_range(0..kids.len())]
            };
            let mut cats = vec![(primary, 0.7 + rng.gen::<f32>() * 0.3)];
            // Secondary category: usually a sibling, sometimes cross-topic.
            if rng.gen_bool(0.6) {
                let sec = if rng.gen_bool(0.7) && kids.len() > 1 {
                    kids[rng.gen_range(0..kids.len())]
                } else {
                    CategoryId(rng.gen_range(0..hierarchy.num_categories()) as u16)
                };
                if sec != primary {
                    cats.push((sec, 0.2 + rng.gen::<f32>() * 0.4));
                }
            }
            hosts.push(Host {
                id,
                name: names.site_name(&mut rng, hierarchy.top_name(top)),
                kind: HostKind::Site,
                categories: CategoryVector::from_pairs(cats),
                top_topic: Some(top),
                popularity: 0.0,
                deps: Vec::new(),
                interactive: rng.gen_bool(config.interactive_site_fraction),
            });
        }

        // --- Infrastructure hosts -----------------------------------------
        let cdn_start = hosts.len();
        for _ in 0..config.num_cdns {
            let id = HostId(hosts.len() as u32);
            hosts.push(Host {
                id,
                name: names.cdn_name(&mut rng),
                kind: HostKind::Cdn,
                categories: CategoryVector::empty(),
                top_topic: None,
                popularity: 0.0,
                deps: Vec::new(),
                interactive: false,
            });
        }
        let api_start = hosts.len();
        for _ in 0..config.num_apis {
            let id = HostId(hosts.len() as u32);
            // APIs get a home topic: sites of that topic prefer them.
            let top = TopCategoryId(topic_sampler.sample(&mut rng) as u8);
            hosts.push(Host {
                id,
                name: names.api_name(&mut rng),
                kind: HostKind::Api,
                categories: CategoryVector::empty(),
                top_topic: Some(top),
                popularity: 0.0,
                deps: Vec::new(),
                interactive: false,
            });
        }
        let tracker_start = hosts.len();
        for _ in 0..config.num_trackers {
            let id = HostId(hosts.len() as u32);
            hosts.push(Host {
                id,
                name: names.tracker_name(&mut rng),
                kind: HostKind::Tracker,
                categories: CategoryVector::empty(),
                top_topic: None,
                popularity: 0.0,
                deps: Vec::new(),
                interactive: false,
            });
        }

        // --- Popularity ---------------------------------------------------
        // Zipf over all visitable hosts (core + sites); core hosts occupy
        // the head ranks, which is what makes them "background noise".
        let visitable = CORE_SITE_NAMES.len() + config.num_sites;
        let zipf = Zipf::new(visitable, config.popularity_exponent);
        // Core gets ranks 0..n_core in a fixed order; sites get a random
        // rank permutation of the remainder.
        let n_core = CORE_SITE_NAMES.len();
        let mut site_ranks: Vec<usize> = (n_core..visitable).collect();
        shuffle(&mut site_ranks, &mut rng);
        for (k, host) in hosts.iter_mut().enumerate().take(n_core) {
            host.popularity = zipf.pmf(k);
        }
        for (i, &rank) in site_ranks.iter().enumerate() {
            hosts[n_core + i].popularity = zipf.pmf(rank);
        }

        // --- Site dependencies ---------------------------------------------
        // CDN/tracker choice is popularity-skewed (a few giants serve most
        // of the web); APIs are topic-affine with high probability.
        let cdn_zipf = Zipf::new(config.num_cdns.max(1), 0.9);
        let tracker_zipf = Zipf::new(config.num_trackers.max(1), 0.9);
        // Group APIs by topic for affinity lookups.
        let mut apis_by_topic: Vec<Vec<usize>> = vec![Vec::new(); hierarchy.num_top()];
        for (i, h) in hosts[api_start..tracker_start].iter().enumerate() {
            if let Some(t) = h.top_topic {
                apis_by_topic[t.index()].push(api_start + i);
            }
        }
        #[allow(clippy::needless_range_loop)] // hosts is mutated by index below
        for i in 0..visitable {
            let is_core = i < n_core;
            let topic = hosts[i].top_topic;
            let mut deps: Vec<HostId> = Vec::new();
            if config.num_cdns > 0 {
                let n_cdn = if is_core { 3 } else { rng.gen_range(1..=4) };
                for _ in 0..n_cdn {
                    deps.push(HostId((cdn_start + cdn_zipf.sample(&mut rng)) as u32));
                }
            }
            if config.num_apis > 0 {
                let n_api = rng.gen_range(0..=3);
                for _ in 0..n_api {
                    let same_topic = topic
                        .map(|t| &apis_by_topic[t.index()])
                        .filter(|v| !v.is_empty());
                    let idx = match same_topic {
                        Some(pool) if rng.gen_bool(0.7) => pool[rng.gen_range(0..pool.len())],
                        _ => api_start + rng.gen_range(0..config.num_apis),
                    };
                    deps.push(HostId(idx as u32));
                }
            }
            if config.num_trackers > 0 && !is_core {
                let n_trk = rng.gen_range(0..=4);
                for _ in 0..n_trk {
                    deps.push(HostId(
                        (tracker_start + tracker_zipf.sample(&mut rng)) as u32,
                    ));
                }
            }
            deps.sort();
            deps.dedup();
            hosts[i].deps = deps;
        }

        // --- Infrastructure ground truth ------------------------------------
        // A CDN/API's true categories are the popularity-weighted mix of the
        // sites that embed it — this is what the embedding should recover.
        let mut mixes: HashMap<usize, Vec<(CategoryVector, f32)>> = HashMap::new();
        for i in 0..visitable {
            let pop = hosts[i].popularity as f32;
            let cats = hosts[i].categories.clone();
            for dep in hosts[i].deps.clone() {
                let d = dep.index();
                if matches!(hosts[d].kind, HostKind::Cdn | HostKind::Api) {
                    mixes.entry(d).or_default().push((cats.clone(), pop));
                }
            }
        }
        for (d, contribs) in mixes {
            let total: f32 = contribs.iter().map(|(_, w)| w).sum();
            if total <= 0.0 {
                continue;
            }
            let mut acc = CategoryVector::empty();
            for (cats, w) in &contribs {
                acc.add_scaled(cats, w / total);
            }
            hosts[d].categories = acc.top_k(6);
        }

        // --- Ontology (the observable, partial labeling) ---------------------
        // Only content sites and core hosts are crawlable/classifiable —
        // CDN/API/tracker hostnames return error pages (the paper's 67 %).
        // Popular sites are more likely to be in Adwords.
        let target_labels = ((hosts.len() as f64) * config.ontology_coverage).round() as usize;
        let mut ontology = Ontology::new();
        let mut candidates: Vec<usize> = (0..visitable).collect();
        candidates.sort_by(|&a, &b| {
            hosts[b]
                .popularity
                .partial_cmp(&hosts[a].popularity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in candidates.iter().take(target_labels.min(visitable)) {
            let truth = &hosts[i].categories;
            let noisy: Vec<(CategoryId, f32)> = truth
                .iter()
                .filter_map(|(c, w)| {
                    // Occasionally Adwords misses a secondary category.
                    if w < 0.5 && rng.gen_bool(0.25) {
                        return None;
                    }
                    let jitter = 1.0 + (rng.gen::<f32>() - 0.5) * 2.0 * config.label_noise as f32;
                    Some((c, (w * jitter).clamp(0.05, 1.0)))
                })
                .collect();
            let v = if noisy.is_empty() {
                truth.clone()
            } else {
                CategoryVector::from_pairs(noisy)
            };
            ontology.insert(&hosts[i].name, v);
        }

        // --- Blocklists -----------------------------------------------------
        // Three overlapping providers, each listing a different ~2/3 of the
        // tracker universe; the union covers most but not all of it.
        let mut provider_hosts: [Vec<String>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for h in &hosts[tracker_start..] {
            let mut listed = false;
            for (p, prob) in [(0usize, 0.65), (1, 0.55), (2, 0.45)] {
                if rng.gen_bool(prob) {
                    provider_hosts[p].push(h.name.clone());
                    listed = true;
                }
            }
            // Guarantee the most popular trackers are always caught, like
            // the paper's "50 of the top 100 hostnames are trackers" note.
            if !listed && rng.gen_bool(0.5) {
                provider_hosts[0].push(h.name.clone());
            }
        }
        let blocklist = Blocklist::from_providers(vec![
            BlocklistProvider::new("adaway-like", provider_hosts[0].iter()),
            BlocklistProvider::new("hphosts-like", provider_hosts[1].iter()),
            BlocklistProvider::new("yoyo-like", provider_hosts[2].iter()),
        ]);

        // --- Indexes ----------------------------------------------------------
        let by_name: HashMap<String, HostId> =
            hosts.iter().map(|h| (h.name.clone(), h.id)).collect();
        let mut sites_by_topic: Vec<Vec<HostId>> = vec![Vec::new(); hierarchy.num_top()];
        for h in &hosts {
            if h.kind == HostKind::Site {
                if let Some(t) = h.top_topic {
                    sites_by_topic[t.index()].push(h.id);
                }
            }
        }
        let topic_samplers = sites_by_topic
            .iter()
            .map(|ids| {
                let w: Vec<f64> = ids.iter().map(|id| hosts[id.index()].popularity).collect();
                WeightedIndex::new(&w)
            })
            .collect();
        let core_ids: Vec<HostId> = hosts[..n_core].iter().map(|h| h.id).collect();
        let core_sampler = WeightedIndex::new(
            &core_ids
                .iter()
                .map(|id| hosts[id.index()].popularity)
                .collect::<Vec<_>>(),
        );

        Self {
            config: config.clone(),
            hierarchy,
            hosts,
            by_name,
            sites_by_topic,
            topic_samplers,
            core_ids,
            core_sampler,
            ontology,
            blocklist,
        }
    }

    /// The config this world was generated from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The category hierarchy shared by the whole pipeline.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Number of hostnames in the universe.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Host by id.
    ///
    /// # Panics
    /// Panics when the id is not from this world.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// All hosts in id order.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// The wire-visible hostname of a host.
    pub fn hostname(&self, id: HostId) -> &str {
        &self.hosts[id.index()].name
    }

    /// Reverse lookup from hostname to id (exact, lowercase).
    pub fn host_id_by_name(&self, name: &str) -> Option<HostId> {
        self.by_name.get(name).copied()
    }

    /// Ground-truth categories of a host (empty for trackers).
    pub fn ground_truth(&self, id: HostId) -> &CategoryVector {
        &self.hosts[id.index()].categories
    }

    /// The observable, partial-coverage ontology (`H_L`).
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The tracker/ad blocklist (union of three providers).
    pub fn blocklist(&self) -> &Blocklist {
        &self.blocklist
    }

    /// Ultra-popular core hosts.
    pub fn core_ids(&self) -> &[HostId] {
        &self.core_ids
    }

    /// Sample a core host by popularity.
    pub fn sample_core<R: Rng + ?Sized>(&self, rng: &mut R) -> HostId {
        match &self.core_sampler {
            Some(s) => self.core_ids[s.sample(rng)],
            None => self.core_ids[0],
        }
    }

    /// Sample a site of the given topic by popularity. Falls back to any
    /// topic when the requested one has no sites.
    pub fn sample_site<R: Rng + ?Sized>(&self, rng: &mut R, topic: TopCategoryId) -> HostId {
        if let Some(s) = &self.topic_samplers[topic.index()] {
            return self.sites_by_topic[topic.index()][s.sample(rng)];
        }
        // Degenerate tiny worlds: walk topics until one has sites.
        for (t, s) in self.topic_samplers.iter().enumerate() {
            if let Some(s) = s {
                return self.sites_by_topic[t][s.sample(rng)];
            }
        }
        panic!("world has no content sites at all");
    }

    /// Site ids of one topic.
    pub fn sites_of_topic(&self, topic: TopCategoryId) -> &[HostId] {
        &self.sites_by_topic[topic.index()]
    }

    /// Count of hosts per kind, for the E6/E7 reports.
    pub fn kind_counts(&self) -> HashMap<HostKind, usize> {
        let mut m = HashMap::new();
        for h in &self.hosts {
            *m.entry(h.kind).or_insert(0) += 1;
        }
        m
    }

    /// Fraction of the universe that would fail a content crawl: CDN, API
    /// and tracker hosts (the paper measured 67 %).
    pub fn uncrawlable_fraction(&self) -> f64 {
        let bad = self
            .hosts
            .iter()
            .filter(|h| matches!(h.kind, HostKind::Cdn | HostKind::Api | HostKind::Tracker))
            .count();
        bad as f64 / self.hosts.len() as f64
    }
}

/// Fisher–Yates shuffle (rand's `SliceRandom` would pull in more API than
/// we need here, and an explicit loop keeps the sampling stream obvious).
fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(&WorldConfig::tiny())
    }

    #[test]
    fn world_has_every_kind_and_expected_size() {
        let w = tiny_world();
        let cfg = WorldConfig::tiny();
        assert_eq!(w.num_hosts(), cfg.total_hosts());
        let counts = w.kind_counts();
        assert_eq!(counts[&HostKind::Site], cfg.num_sites);
        assert_eq!(counts[&HostKind::Cdn], cfg.num_cdns);
        assert_eq!(counts[&HostKind::Api], cfg.num_apis);
        assert_eq!(counts[&HostKind::Tracker], cfg.num_trackers);
        assert_eq!(counts[&HostKind::Core], CORE_SITE_NAMES.len());
    }

    #[test]
    fn hostnames_are_unique_and_indexed() {
        let w = tiny_world();
        let mut names: Vec<_> = w.hosts().iter().map(|h| h.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), w.num_hosts());
        for h in w.hosts() {
            assert_eq!(w.host_id_by_name(&h.name), Some(h.id));
        }
    }

    #[test]
    fn ontology_coverage_is_near_target_and_sites_only() {
        let w = tiny_world();
        let stats = w
            .ontology()
            .coverage(w.hosts().iter().map(|h| h.name.as_str()));
        let target = WorldConfig::tiny().ontology_coverage;
        assert!(
            (stats.fraction() - target).abs() < 0.02,
            "coverage {} vs target {target}",
            stats.fraction()
        );
        for (name, _) in w.ontology().iter() {
            let id = w.host_id_by_name(name).expect("labeled host exists");
            assert!(
                matches!(w.host(id).kind, HostKind::Site | HostKind::Core),
                "only crawlable hosts get labels: {name}"
            );
        }
    }

    #[test]
    fn trackers_have_no_ground_truth_and_sites_do() {
        let w = tiny_world();
        for h in w.hosts() {
            match h.kind {
                HostKind::Tracker => assert!(h.categories.is_empty()),
                HostKind::Site | HostKind::Core => assert!(!h.categories.is_empty()),
                _ => {}
            }
        }
    }

    #[test]
    fn most_trackers_are_blocked_and_sites_are_not() {
        let w = tiny_world();
        let mut blocked = 0usize;
        let mut total = 0usize;
        for h in w.hosts() {
            match h.kind {
                HostKind::Tracker => {
                    total += 1;
                    if w.blocklist().is_blocked(&h.name) {
                        blocked += 1;
                    }
                }
                HostKind::Site | HostKind::Core => {
                    assert!(
                        !w.blocklist().is_blocked(&h.name),
                        "site blocked: {}",
                        h.name
                    );
                }
                _ => {}
            }
        }
        assert!(
            blocked as f64 >= total as f64 * 0.7,
            "{blocked}/{total} blocked"
        );
    }

    #[test]
    fn core_hosts_dominate_popularity() {
        let w = tiny_world();
        let core_pop: f64 = w.core_ids().iter().map(|id| w.host(*id).popularity).sum();
        let site_max = w
            .hosts()
            .iter()
            .filter(|h| h.kind == HostKind::Site)
            .map(|h| h.popularity)
            .fold(0.0, f64::max);
        let core_min = w
            .core_ids()
            .iter()
            .map(|id| w.host(*id).popularity)
            .fold(f64::INFINITY, f64::min);
        assert!(core_min > 0.0);
        assert!(core_pop > 0.2, "core hosts hold a large share: {core_pop}");
        assert!(
            core_min >= site_max * 0.9,
            "core ranks sit at the Zipf head"
        );
    }

    #[test]
    fn sites_have_dependencies_with_correct_kinds() {
        let w = tiny_world();
        let mut any_api_affine = 0usize;
        let mut api_total = 0usize;
        for h in w.hosts().iter().filter(|h| h.kind == HostKind::Site) {
            assert!(!h.deps.is_empty(), "every site embeds at least a CDN");
            for d in &h.deps {
                let dep = w.host(*d);
                assert!(
                    matches!(dep.kind, HostKind::Cdn | HostKind::Api | HostKind::Tracker),
                    "site deps are infrastructure"
                );
                if dep.kind == HostKind::Api {
                    api_total += 1;
                    if dep.top_topic == h.top_topic {
                        any_api_affine += 1;
                    }
                }
            }
        }
        assert!(
            any_api_affine as f64 > api_total as f64 * 0.4,
            "APIs are topic-affine: {any_api_affine}/{api_total}"
        );
    }

    #[test]
    fn cdn_ground_truth_reflects_served_sites() {
        let w = tiny_world();
        // Any CDN that serves at least one site must have inherited some
        // categories.
        let mut served = std::collections::HashSet::new();
        for h in w.hosts() {
            for d in &h.deps {
                served.insert(*d);
            }
        }
        for h in w.hosts().iter().filter(|h| h.kind == HostKind::Cdn) {
            if served.contains(&h.id) {
                assert!(!h.categories.is_empty(), "served CDN {} has a mix", h.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        for (x, y) in a.hosts().iter().zip(b.hosts()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.deps, y.deps);
            assert_eq!(x.categories, y.categories);
        }
    }

    #[test]
    fn uncrawlable_fraction_matches_construction() {
        let w = tiny_world();
        let cfg = WorldConfig::tiny();
        let expected =
            (cfg.num_cdns + cfg.num_apis + cfg.num_trackers) as f64 / cfg.total_hosts() as f64;
        assert!((w.uncrawlable_fraction() - expected).abs() < 1e-12);
    }
}
