//! Session-profiling latency: the per-report cost of the back-end
//! (aggregate → N-NN → Eq. 3/4), which bounds how many users one profiling
//! node can serve at the paper's 10-minute report cadence.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof_core::{BatchProfiler, Profiler, ProfilerConfig, Session};

fn bench_profiling(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = 4;
    let s = Scenario::generate(&cfg);
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..3 {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("corpus");

    // A real session from the trace.
    let window = s
        .population
        .users()
        .iter()
        .map(|u| s.session_hostnames(u.id, 3))
        .find(|w| w.len() >= 10)
        .expect("an active user exists");
    let session = Session::from_window(
        window.iter().map(String::as_str),
        Some(pipeline.blocklist()),
    );

    let mut g = c.benchmark_group("profile_session");
    for n in [50usize, 200, 1000] {
        let profiler = hostprof_core::Profiler::new(
            &embeddings,
            s.world.ontology(),
            ProfilerConfig {
                n_neighbors: n,
                ..Default::default()
            },
        );
        g.bench_with_input(BenchmarkId::new("n_neighbors", n), &n, |b, _| {
            b.iter(|| profiler.profile(black_box(&session)).is_some())
        });
    }
    g.finish();

    // Sessions/sec of the batched engine: thread counts 1/4/N over batch
    // sizes 1/32/256, all profiling the same real-trace session set.
    let sessions: Vec<Session> = {
        let mut out = Vec::new();
        'outer: for day in 1..cfg.trace.days {
            for u in s.population.users() {
                let w = s.session_hostnames(u.id, day);
                if w.is_empty() {
                    continue;
                }
                out.push(Session::from_window(
                    w.iter().map(String::as_str),
                    Some(pipeline.blocklist()),
                ));
                if out.len() >= 256 {
                    break 'outer;
                }
            }
        }
        let distinct = out.len().max(1);
        while out.len() < 256 && distinct > 0 {
            out.push(out[out.len() % distinct].clone());
        }
        out
    };
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1usize, 4];
    if !thread_counts.contains(&hardware) {
        thread_counts.push(hardware);
    }
    let mut g = c.benchmark_group("profile_throughput");
    for &threads in &thread_counts {
        for batch_size in [1usize, 32, 256] {
            let batch = BatchProfiler::new(
                Profiler::new(&embeddings, s.world.ontology(), ProfilerConfig::default()),
                threads,
            );
            g.throughput(Throughput::Elements(sessions.len() as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), batch_size),
                &batch_size,
                |b, &batch_size| {
                    b.iter(|| {
                        sessions
                            .chunks(batch_size)
                            .map(|chunk| {
                                batch
                                    .profile_sessions(black_box(chunk))
                                    .iter()
                                    .filter(|p| p.is_some())
                                    .count()
                            })
                            .sum::<usize>()
                    })
                },
            );
        }
    }
    g.finish();

    let mut g = c.benchmark_group("session_extraction");
    g.bench_function("from_window_with_blocklist", |b| {
        b.iter(|| {
            Session::from_window(
                black_box(window.iter().map(String::as_str)),
                Some(pipeline.blocklist()),
            )
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
