//! Student's t-test.
//!
//! Section 6.4: "we used a two-tailed paired t-test with p < .05 to assess
//! the mean difference of CTRs. Resulting p-value was .11333 so we conclude
//! that there is no statistical difference". [`paired_t_test`] reproduces
//! that procedure; the Student CDF is computed from a from-scratch
//! regularized incomplete beta function (Lanczos log-gamma + the standard
//! continued-fraction expansion), since no stats crate is in the allowed
//! dependency set.

use serde::{Deserialize, Serialize};

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Two-tailed p-value.
    pub p: f64,
    /// Mean of the paired differences.
    pub mean_diff: f64,
}

impl TTestResult {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().abs().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta `I_x(a, b)` by continued fraction
/// (Numerical Recipes `betai`/`betacf`).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-tailed p-value of a Student t statistic with `df` degrees of
/// freedom: `P(|T| ≥ |t|) = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn student_t_two_tailed_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Paired two-tailed t-test over equal-length samples.
///
/// ```
/// use hostprof_stats::paired_t_test;
/// let eaves = [0.0021, 0.0023, 0.0019, 0.0025, 0.0020];
/// let orig  = [0.0016, 0.0018, 0.0017, 0.0015, 0.0019];
/// let r = paired_t_test(&eaves, &orig).unwrap();
/// assert!(r.mean_diff > 0.0);
/// assert!((0.0..=1.0).contains(&r.p));
/// ```
///
/// Returns `None` when there are fewer than two pairs or the differences
/// have zero variance (the statistic is undefined; with all-zero
/// differences the samples are identical and `p = 1` would be the
/// conventional reading — callers can special-case that).
///
/// # Panics
/// Panics when the samples have different lengths.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired test needs equal-length samples");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean_diff = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs
        .iter()
        .map(|d| (d - mean_diff) * (d - mean_diff))
        .sum::<f64>()
        / (n - 1) as f64;
    if var.is_nan() || var <= 0.0 || !mean_diff.is_finite() {
        // Zero variance, or NaN/∞ anywhere in the inputs: the statistic is
        // undefined.
        return None;
    }
    let se = (var / n as f64).sqrt();
    let t = mean_diff / se;
    let df = (n - 1) as f64;
    Some(TTestResult {
        t,
        df,
        p: student_t_two_tailed_p(t, df),
        mean_diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_endpoints_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let x = 0.37;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn student_p_matches_reference_values() {
        // Reference values from standard t tables.
        // df=10, t=2.228 → p ≈ 0.05.
        assert!((student_t_two_tailed_p(2.228, 10.0) - 0.05).abs() < 2e-3);
        // df=1, t=1 → p = 0.5 (Cauchy quartile).
        assert!((student_t_two_tailed_p(1.0, 1.0) - 0.5).abs() < 1e-9);
        // t=0 → p = 1.
        assert!((student_t_two_tailed_p(0.0, 7.0) - 1.0).abs() < 1e-12);
        // Large |t| → p → 0, monotone.
        assert!(student_t_two_tailed_p(8.0, 20.0) < 1e-6);
        assert!(student_t_two_tailed_p(1.0, 9.0) > student_t_two_tailed_p(2.0, 9.0));
    }

    #[test]
    fn paired_test_detects_a_real_shift() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 2.0 + 0.1 * (x % 3.0)).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.mean_diff > 1.0);
        assert!(
            r.significant(0.05),
            "clear shift must be significant, p={}",
            r.p
        );
    }

    #[test]
    fn paired_test_accepts_no_difference() {
        // Symmetric noise around zero difference.
        let a: Vec<f64> = (0..40).map(|i| 5.0 + ((i * 7) % 11) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..40)
            .map(|i| 5.0 + ((i * 7 + 4) % 11) as f64 * 0.1)
            .collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(!r.significant(0.05), "p={}", r.p);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(
            paired_t_test(&[1.0, 2.0], &[0.0, 1.0]).is_none(),
            "constant diff"
        );
        assert!(paired_t_test(&[], &[]).is_none());
        assert!(
            paired_t_test(&[f64::NAN, 2.0], &[0.0, 1.0]).is_none(),
            "NaN input must not report p = 0"
        );
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = paired_t_test(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn p_is_in_unit_interval_for_a_grid() {
        for &t in &[-5.0, -1.0, -0.1, 0.0, 0.3, 2.0, 30.0] {
            for &df in &[1.0, 3.0, 29.0, 500.0] {
                let p = student_t_two_tailed_p(t, df);
                assert!((0.0..=1.0).contains(&p), "t={t} df={df} p={p}");
            }
        }
    }
}
