//! A 2-D quadtree for Barnes–Hut force approximation.
//!
//! Each node stores the center of mass and point count of its subtree;
//! traversal can then treat any well-separated cell as a single body. Used
//! by [`crate::bhtsne`] to approximate the O(n²) repulsive term of the
//! t-SNE gradient in O(n log n).

/// Index of a node inside the arena.
type NodeId = usize;

/// Marker for "no child".
const NONE: NodeId = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// Cell bounds.
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    /// Sum of member coordinates (center of mass = sum / count).
    sum_x: f64,
    sum_y: f64,
    /// Members in this subtree.
    count: usize,
    /// A point held directly by this leaf (before it splits).
    point: Option<(f64, f64)>,
    /// Child cells (NW, NE, SW, SE), `NONE` when absent.
    children: [NodeId; 4],
}

impl Node {
    fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
            sum_x: 0.0,
            sum_y: 0.0,
            count: 0,
            point: None,
            children: [NONE; 4],
        }
    }

    fn is_leaf(&self) -> bool {
        self.children == [NONE; 4]
    }

    fn quadrant(&self, x: f64, y: f64) -> usize {
        let mid_x = (self.min_x + self.max_x) / 2.0;
        let mid_y = (self.min_y + self.max_y) / 2.0;
        match (x < mid_x, y < mid_y) {
            (true, true) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (false, false) => 3,
        }
    }

    fn child_bounds(&self, quadrant: usize) -> (f64, f64, f64, f64) {
        let mid_x = (self.min_x + self.max_x) / 2.0;
        let mid_y = (self.min_y + self.max_y) / 2.0;
        match quadrant {
            0 => (self.min_x, self.min_y, mid_x, mid_y),
            1 => (mid_x, self.min_y, self.max_x, mid_y),
            2 => (self.min_x, mid_y, mid_x, self.max_y),
            _ => (mid_x, mid_y, self.max_x, self.max_y),
        }
    }
}

/// An arena-allocated quadtree over a fixed point set.
#[derive(Debug)]
pub struct QuadTree {
    nodes: Vec<Node>,
    /// Maximum tree depth; identical points stack in a leaf beyond it.
    max_depth: usize,
}

impl QuadTree {
    /// Build a tree over `points` (slice of `(x, y)`).
    pub fn build(points: &[(f64, f64)]) -> Self {
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in points {
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        if points.is_empty() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 1.0, 1.0);
        }
        // Grow bounds slightly so max-coordinate points fall inside.
        let pad_x = ((max_x - min_x).abs()).max(1e-9) * 1e-3;
        let pad_y = ((max_y - min_y).abs()).max(1e-9) * 1e-3;
        let mut tree = Self {
            nodes: vec![Node::new(
                min_x - pad_x,
                min_y - pad_y,
                max_x + pad_x,
                max_y + pad_y,
            )],
            max_depth: 64,
        };
        for &(x, y) in points {
            tree.insert(x, y);
        }
        tree
    }

    fn insert(&mut self, x: f64, y: f64) {
        let mut node = 0;
        let mut depth = 0;
        loop {
            self.nodes[node].sum_x += x;
            self.nodes[node].sum_y += y;
            self.nodes[node].count += 1;
            if depth >= self.max_depth {
                // Degenerate stack of (near-)identical points: absorb into
                // the aggregate without splitting further.
                return;
            }
            if self.nodes[node].is_leaf() {
                match self.nodes[node].point {
                    None if self.nodes[node].count == 1 => {
                        self.nodes[node].point = Some((x, y));
                        return;
                    }
                    _ => {
                        // Split: push the resident point down, then continue
                        // inserting the new one.
                        if let Some((px, py)) = self.nodes[node].point.take() {
                            let q = self.nodes[node].quadrant(px, py);
                            let child = self.ensure_child(node, q);
                            self.nodes[child].sum_x += px;
                            self.nodes[child].sum_y += py;
                            self.nodes[child].count += 1;
                            self.nodes[child].point = Some((px, py));
                        }
                    }
                }
            }
            let q = self.nodes[node].quadrant(x, y);
            node = self.ensure_child(node, q);
            depth += 1;
        }
    }

    fn ensure_child(&mut self, node: NodeId, quadrant: usize) -> NodeId {
        if self.nodes[node].children[quadrant] == NONE {
            let (min_x, min_y, max_x, max_y) = self.nodes[node].child_bounds(quadrant);
            self.nodes.push(Node::new(min_x, min_y, max_x, max_y));
            let id = self.nodes.len() - 1;
            self.nodes[node].children[quadrant] = id;
        }
        self.nodes[node].children[quadrant]
    }

    /// Points inserted.
    pub fn len(&self) -> usize {
        self.nodes[0].count
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulate the Barnes–Hut approximation of the t-SNE repulsive
    /// force on `(x, y)`: calls `visit(count, com_x, com_y)` for every
    /// accepted cell (well-separated under `theta`) or individual point.
    /// The visited body may include the query point itself when it is a
    /// member; callers subtract the self-interaction (q=1 at d=0) instead,
    /// which is the standard BH-SNE bookkeeping.
    pub fn for_each_body<F: FnMut(usize, f64, f64)>(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        visit: &mut F,
    ) {
        self.walk(0, x, y, theta, visit);
    }

    fn walk<F: FnMut(usize, f64, f64)>(
        &self,
        node: NodeId,
        x: f64,
        y: f64,
        theta: f64,
        visit: &mut F,
    ) {
        let n = &self.nodes[node];
        if n.count == 0 {
            return;
        }
        let com_x = n.sum_x / n.count as f64;
        let com_y = n.sum_y / n.count as f64;
        let cell = (n.max_x - n.min_x).max(n.max_y - n.min_y);
        let dist2 = (x - com_x) * (x - com_x) + (y - com_y) * (y - com_y);
        let well_separated = cell * cell < theta * theta * dist2;
        if n.is_leaf() || well_separated {
            visit(n.count, com_x, com_y);
            return;
        }
        for &child in &n.children {
            if child != NONE {
                self.walk(child, x, y, theta, visit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i as f64, j as f64)))
            .collect()
    }

    #[test]
    fn tree_counts_every_point() {
        let pts = grid(8);
        let tree = QuadTree::build(&pts);
        assert_eq!(tree.len(), 64);
    }

    #[test]
    fn theta_zero_visits_every_point_individually() {
        let pts = grid(4);
        let tree = QuadTree::build(&pts);
        let mut total = 0usize;
        let mut bodies = 0usize;
        tree.for_each_body(100.0, 100.0, 0.0, &mut |count, _, _| {
            total += count;
            bodies += 1;
        });
        assert_eq!(total, 16, "every point accounted for");
        assert_eq!(bodies, 16, "theta=0 never aggregates");
    }

    #[test]
    fn large_theta_aggregates_distant_cells() {
        let pts = grid(8);
        let tree = QuadTree::build(&pts);
        let mut bodies = 0usize;
        let mut total = 0usize;
        // Query far away: the whole tree should collapse to few bodies.
        tree.for_each_body(1e6, 1e6, 0.8, &mut |count, _, _| {
            bodies += 1;
            total += count;
        });
        assert_eq!(total, 64, "mass conserved");
        assert!(bodies <= 4, "distant mass aggregates: {bodies} bodies");
    }

    #[test]
    fn center_of_mass_is_exact_for_full_aggregation() {
        let pts = vec![(0.0, 0.0), (2.0, 0.0), (0.0, 2.0), (2.0, 2.0)];
        let tree = QuadTree::build(&pts);
        let mut seen = Vec::new();
        tree.for_each_body(1e9, 1e9, 1.0, &mut |count, cx, cy| {
            seen.push((count, cx, cy));
        });
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 4);
        assert!((seen[0].1 - 1.0).abs() < 1e-12);
        assert!((seen[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_points_do_not_recurse_forever() {
        let pts = vec![(1.0, 1.0); 1000];
        let tree = QuadTree::build(&pts);
        assert_eq!(tree.len(), 1000);
        let mut total = 0usize;
        tree.for_each_body(0.0, 0.0, 0.5, &mut |count, _, _| total += count);
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_tree_is_harmless() {
        let tree = QuadTree::build(&[]);
        assert!(tree.is_empty());
        let mut called = false;
        tree.for_each_body(0.0, 0.0, 0.5, &mut |_, _, _| called = true);
        assert!(!called);
    }
}
