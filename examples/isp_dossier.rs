//! The long game: an ISP's per-subscriber dossier.
//!
//! The paper profiles 20-minute sessions because its ad experiment needs
//! instantaneous interests, and §7.3 notes the darker endgame: "Profiles
//! could be sold to third parties". A network observer running for weeks
//! wouldn't keep throwing sessions away — it would fold them into a
//! standing per-user profile. This example does exactly that with
//! [`hostprof::profiling::ProfileAccumulator`]: profile every session of
//! one subscriber across days, fold them into an EWMA dossier, then apply
//! the analyst's trick the paper's Figure 3 motivates — subtract the
//! categories every subscriber shares (the crowd baseline) so the
//! individual's distinctive interests stand out.
//!
//! ```text
//! cargo run --release --example isp_dossier
//! ```

use hostprof::profiling::{profile_accuracy, ProfileAccumulator, Session};
use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof::synth::trace::DAY_MS;

fn main() {
    println!("hostprof isp_dossier — accumulating session profiles into a dossier\n");

    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = 10;
    let s = Scenario::generate(&cfg);
    let pipeline = s.pipeline();

    // Train once on the first 5 days (a deployment would retrain daily;
    // one model keeps the example focused on accumulation).
    let mut corpus = Vec::new();
    for day in 0..5 {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("trace has traffic");
    let profiler = pipeline.profiler(&embeddings, s.world.ontology());

    // Pick the most active user so there are plenty of sessions.
    let user = s
        .population
        .users()
        .iter()
        .max_by(|a, b| a.sessions_per_day.partial_cmp(&b.sessions_per_day).unwrap())
        .expect("population is non-empty");
    println!(
        "subscriber {} — {:.1} sessions/day, {} ground-truth interest topics\n",
        user.id,
        user.sessions_per_day,
        user.topics.len()
    );

    // Walk days 5..10, profiling one session per report window and folding
    // it into the dossier.
    let mut dossier = ProfileAccumulator::new(0.25);
    let mut best_single = 0f32;
    println!(
        "{:<6} {:>10} {:>18} {:>18}",
        "day", "sessions", "session accuracy", "dossier accuracy"
    );
    for day in 5..s.trace.days() {
        let day_start = day as u64 * DAY_MS;
        let day_end = day_start + DAY_MS;
        // Report cadence: every 10 simulated minutes with activity.
        let mut last_report = 0u64;
        let mut day_sessions = 0usize;
        let mut day_acc = 0f64;
        let requests: Vec<_> = s
            .trace
            .user_requests(user.id)
            .filter(|r| r.t_ms >= day_start && r.t_ms < day_end)
            .cloned()
            .collect();
        for r in &requests {
            if r.t_ms < last_report + pipeline.config().report_interval_ms() {
                continue;
            }
            last_report = r.t_ms;
            let window = s
                .trace
                .window(user.id, r.t_ms, pipeline.config().session_window_ms());
            let hostnames: Vec<&str> = window.iter().map(|h| s.world.hostname(*h)).collect();
            let session =
                Session::from_window(hostnames.iter().copied(), Some(pipeline.blocklist()));
            let Some(profile) = profiler.profile(&session) else {
                continue;
            };
            let acc = profile_accuracy(&profile.categories, &user.interests);
            best_single = best_single.max(acc);
            day_acc += acc as f64;
            day_sessions += 1;
            dossier.observe(&profile.categories);
        }
        let dossier_acc = profile_accuracy(dossier.profile(), &user.interests);
        println!(
            "{:<6} {:>10} {:>18.3} {:>18.3}",
            day,
            day_sessions,
            if day_sessions > 0 {
                day_acc / day_sessions as f64
            } else {
                f64::NAN
            },
            dossier_acc
        );
    }

    let final_acc = profile_accuracy(dossier.profile(), &user.interests);
    println!(
        "\nafter {} sessions: dossier accuracy {:.3} vs best single session {:.3}",
        dossier.sessions(),
        final_acc,
        best_single
    );

    // Every profile carries the same background block (the Figure 3
    // categories shared by all users: everyone visits the core hosts).
    // An analyst removes it by subtracting the crowd baseline — profile
    // the same day for a sample of OTHER subscribers and average.
    let mut background = hostprof::ontology::CategoryVector::empty();
    let mut n_bg = 0usize;
    for other in s
        .population
        .users()
        .iter()
        .filter(|u| u.id != user.id)
        .take(15)
    {
        let window = s.session_hostnames(other.id, s.trace.days() - 1);
        if window.is_empty() {
            continue;
        }
        let session = Session::from_window(
            window.iter().map(String::as_str),
            Some(pipeline.blocklist()),
        );
        if let Some(p) = profiler.profile(&session) {
            background.add_scaled(&p.categories, 1.0);
            n_bg += 1;
        }
    }
    if n_bg > 0 {
        let mut crowd = hostprof::ontology::CategoryVector::empty();
        crowd.add_scaled(&background, 1.0 / n_bg as f32);
        let mut distinctive = dossier.profile().clone();
        distinctive.add_scaled(&crowd, -0.9); // subtract; negatives drop to 0
        let distinctive_acc = profile_accuracy(&distinctive, &user.interests);
        println!(
            "after subtracting the crowd baseline ({} subscribers): accuracy {:.3}",
            n_bg, distinctive_acc
        );
        let hierarchy = s.world.hierarchy();
        let mut pairs: Vec<_> = distinctive.iter().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!(
            "distinctive interests: {}",
            pairs
                .into_iter()
                .take(4)
                .map(|(c, w)| format!("{} ({w:.2})", hierarchy.category_name(c)))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let hierarchy = s.world.hierarchy();
    println!("\ndossier top categories vs ground truth:");
    let top = |v: &hostprof::ontology::CategoryVector| {
        let mut pairs: Vec<_> = v.iter().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        pairs
            .into_iter()
            .take(4)
            .map(|(c, w)| format!("{} ({w:.2})", hierarchy.category_name(c)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("  dossier: {}", top(dossier.profile()));
    println!("  truth:   {}", top(&user.interests));
    println!("\nno cookie, no JavaScript, no URL was ever seen — only SNI hostnames.");
}
