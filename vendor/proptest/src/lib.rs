//! Offline in-tree subset of `proptest`.
//!
//! Implements the strategy combinators this workspace's property tests
//! use — integer/float ranges, regex-pattern string strategies, tuples,
//! `collection::vec`, `any`, `prop_map` — driven by a deterministic
//! per-test RNG. The `proptest!` macro runs each body for a fixed number
//! of cases (`PROPTEST_CASES` overrides the default of 64).

use std::marker::PhantomData;
use std::ops::Range;

/// Default number of cases per property (env `PROPTEST_CASES` overrides).
pub const DEFAULT_CASES: u32 = 64;

/// Resolve the case count once per test.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

pub mod test_runner {
    /// Deterministic splitmix64 generator seeded from the test name, so
    /// every run explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi]` (inclusive).
        pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi.wrapping_sub(lo).wrapping_add(1);
            if span == 0 {
                // Full u64 range.
                self.next_u64()
            } else {
                lo + self.next_u64() % span
            }
        }

        /// Uniform in `[lo, hi)`.
        pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Shift to unsigned space to avoid overflow.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let offset = rng.uniform_u64(0, span - 1);
                (self.start as i64).wrapping_add(offset as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.uniform_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
int_range_inclusive_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.uniform_f64(f64::from(self.start), f64::from(self.end)) as f32
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(*self.start(), *self.end())
    }
}

impl Strategy for std::ops::RangeInclusive<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.uniform_f64(f64::from(*self.start()), f64::from(*self.end())) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Vector of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_u64(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-pattern string strategy (the subset property tests use: literals,
// escapes, character classes with ranges, groups, {m,n} / {n} / ? / * / +).
// ---------------------------------------------------------------------------

enum Node {
    Lit(char),
    Class(Vec<(char, char)>),
    Group(Vec<Atom>),
}

struct Atom {
    node: Node,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let atoms = parse_seq(&mut chars, false, pattern);
    assert!(
        chars.next().is_none(),
        "unbalanced `)` in pattern `{pattern}`"
    );
    atoms
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    in_group: bool,
    pattern: &str,
) -> Vec<Atom> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        let node = match c {
            ')' if in_group => break,
            '(' => {
                chars.next();
                let inner = parse_seq(chars, true, pattern);
                assert_eq!(chars.next(), Some(')'), "unclosed `(` in `{pattern}`");
                Node::Group(inner)
            }
            '[' => {
                chars.next();
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') if !ranges.is_empty() => break,
                        Some('\\') => chars.next().expect("dangling escape in class"),
                        Some(ch) => ch,
                        None => panic!("unclosed `[` in `{pattern}`"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next() {
                            Some('\\') => chars.next().expect("dangling escape in class"),
                            Some(ch) if ch != ']' => ch,
                            _ => panic!("bad range in class in `{pattern}`"),
                        };
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Node::Class(ranges)
            }
            '\\' => {
                chars.next();
                Node::Lit(chars.next().expect("dangling escape"))
            }
            '.' => {
                chars.next();
                // `.` as any printable ASCII character.
                Node::Class(vec![(' ', '~')])
            }
            _ => {
                chars.next();
                Node::Lit(c)
            }
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition"),
                        n.trim().parse().expect("bad repetition"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { node, min, max });
    }
    atoms
}

fn sample_atoms(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
    for atom in atoms {
        let reps = rng.uniform_u64(atom.min as u64, atom.max as u64) as usize;
        for _ in 0..reps {
            match &atom.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32 + 1))
                        .sum();
                    let mut k = rng.uniform_u64(0, total - 1);
                    for &(lo, hi) in ranges {
                        let size = u64::from(hi as u32 - lo as u32 + 1);
                        if k < size {
                            out.push(char::from_u32(lo as u32 + k as u32).unwrap());
                            break;
                        }
                        k -= size;
                    }
                }
                Node::Group(inner) => sample_atoms(inner, rng, out),
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        sample_atoms(&atoms, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        self.as_str().sample(rng)
    }
}

/// Run each property for [`case_count`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::case_count() {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("property {} failed on case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
}

pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("proptest-self-test")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u16..17).sample(&mut r);
            assert!((3..17).contains(&v));
            let f = (-0.5f32..1.5).sample(&mut r);
            assert!((-0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn regex_subset_matches_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{2,8}\\.[a-z]{2,4}".sample(&mut r);
            let parts: Vec<&str> = s.split('.').collect();
            assert_eq!(parts.len(), 2, "{s}");
            assert!((2..=8).contains(&parts[0].len()), "{s}");
            assert!((2..=4).contains(&parts[1].len()), "{s}");
            assert!(s.chars().all(|c| c == '.' || c.is_ascii_lowercase()));

            let t = "[a-z]{1,8}(\\.[a-z]{1,8}){0,4}".sample(&mut r);
            assert!(t.split('.').count() <= 5, "{t}");
            assert!(t.split('.').all(|l| (1..=8).contains(&l.len())), "{t}");
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut r = rng();
        let strat = collection::vec((0u16..10, 0.0f64..1.0), 1..5)
            .prop_map(|v| v.into_iter().map(|(a, _)| a).collect::<Vec<_>>());
        for _ in 0..100 {
            let v = strat.sample(&mut r);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(x in 0u32..100, y in any::<u64>()) {
            prop_assert!(x < 100);
            let _ = y;
            if x == 1000 { return Ok(()); }
        }
    }
}
